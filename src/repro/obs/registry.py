"""Metric primitives and the pipeline-wide registry.

The registry follows the Prometheus data model — counters, gauges and
histograms identified by a metric name plus a label set — but is tuned for
an in-process SPE: hot-path code never talks to the registry per tuple.
Operators, queues, sources and sinks keep their own plain counters (one
``+= 1`` each, no locks shared across nodes), and the registry *collects*
them lazily at snapshot time through registered collector callbacks. A
scrape therefore costs a walk over a few hundred python objects, while the
per-tuple cost of being observable stays at a couple of attribute updates.

Direct instruments (``counter()`` / ``gauge()`` / ``histogram()``) exist
for the colder paths — checkpoint commits, QoS violations, CLI health —
where a lock per update is irrelevant.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

#: default processing-time buckets, seconds: 50 us .. 10 s, the range from
#: a single cell label to a whole-layer DBSCAN correlation
DEFAULT_TIME_BUCKETS = (
    0.00005, 0.0002, 0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exported time-series point.

    ``kind`` is the Prometheus metric type of the family this sample
    belongs to; histogram families export ``histogram_bucket`` samples
    (with an ``le`` label) plus ``_sum``/``_count`` as plain samples.
    """

    name: str
    labels: LabelSet
    value: float
    kind: str = "gauge"  # "counter" | "gauge" | "histogram_bucket" | "histogram_sum" | "histogram_count"

    def label(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.labels:
            if k == key:
                return v
        return default

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self.labels, self._value, "counter")]


class Gauge:
    """A value that can go up and down; optionally callback-backed."""

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(
        self, name: str, labels: LabelSet, fn: Callable[[], float] | None = None
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self.labels, self.value, "gauge")]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` is lock-protected — use it on cold paths only. Hot paths
    (per-tuple operator timing) keep their own lock-free bucket arrays in
    :class:`~repro.spe.metrics.OperatorStats` and export through
    :func:`histogram_samples`.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def samples(self) -> list[Sample]:
        return histogram_samples(
            self.name, self.labels, self.bounds, self.counts, self.sum, self.count
        )


def histogram_samples(
    name: str,
    labels: LabelSet,
    bounds: list[float],
    counts: list[int],
    total_sum: float,
    total_count: int,
) -> list[Sample]:
    """Render raw bucket arrays as cumulative Prometheus-style samples."""
    out: list[Sample] = []
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        out.append(
            Sample(
                f"{name}_bucket",
                labels + (("le", format(bound, "g")),),
                float(cumulative),
                "histogram_bucket",
            )
        )
    cumulative += counts[len(bounds)]
    out.append(
        Sample(
            f"{name}_bucket", labels + (("le", "+Inf"),), float(cumulative),
            "histogram_bucket",
        )
    )
    out.append(Sample(f"{name}_sum", labels, float(total_sum), "histogram_sum"))
    out.append(Sample(f"{name}_count", labels, float(total_count), "histogram_count"))
    return out


@dataclass
class MetricsSnapshot:
    """A self-contained point-in-time view of every registered metric."""

    wall_time: float
    samples: list[Sample] = field(default_factory=list)

    def filter(self, name: str | None = None, **labels: str) -> "MetricsSnapshot":
        """Sub-snapshot with samples matching the name prefix and labels."""
        kept = [
            s
            for s in self.samples
            if (name is None or s.name == name or s.name.startswith(name))
            and all(s.label(k) == v for k, v in labels.items())
        ]
        return MetricsSnapshot(wall_time=self.wall_time, samples=kept)

    def value(self, name: str, default: float | None = None, **labels: str) -> float | None:
        """The value of the single sample matching exactly, else default."""
        for s in self.samples:
            if s.name == name and all(s.label(k) == v for k, v in labels.items()):
                return s.value
        return default

    def with_labels(self, **labels: str) -> "MetricsSnapshot":
        """A copy with extra labels merged into every sample.

        Existing labels win on collision (a sample that already says which
        operator it came from should not be re-attributed). This is how
        the fleet namespaces per-job snapshots: merge each job's scrape
        with ``job=<id>, tenant=<name>`` before concatenating them into
        one fleet-wide exposition.
        """
        extra = {str(k): str(v) for k, v in labels.items()}
        relabelled = [
            Sample(
                s.name,
                _label_key({**extra, **s.labels_dict()}),
                s.value,
                s.kind,
            )
            for s in self.samples
        ]
        return MetricsSnapshot(wall_time=self.wall_time, samples=relabelled)

    def names(self) -> list[str]:
        return sorted({s.name for s in self.samples})

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)


#: a collector returns samples computed at scrape time
Collector = Callable[[], Iterable[Sample]]


class MetricsRegistry:
    """Pipeline-wide metric registry: direct instruments + collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelSet], Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}
        self._collectors: dict[str, Collector] = {}

    # -- direct instruments -------------------------------------------------

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._instrument(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._instrument(Gauge, name, help, labels)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(name, key[1], buckets)
                self._metrics[key] = metric
                if help:
                    self._help[name] = help
            elif not isinstance(metric, Histogram):
                raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def _instrument(self, cls, name: str, help: str, labels) -> "Counter | Gauge":
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1])
                self._metrics[key] = metric
                if help:
                    self._help[name] = help
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
        return metric

    # -- collectors ---------------------------------------------------------

    def register_collector(self, key: str, collector: Collector) -> None:
        """Install (or replace) a named scrape-time collector."""
        with self._lock:
            self._collectors[key] = collector

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    def set_help(self, name: str, help: str) -> None:
        """Attach a HELP string to a collector-produced metric family."""
        with self._lock:
            self._help[name] = help

    def help_for(self, name: str) -> str:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        return self._help.get(base, self._help.get(name, ""))

    # -- scraping -----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Collect every direct instrument and collector right now."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.values())
        samples: list[Sample] = []
        for metric in metrics:
            samples.extend(metric.samples())
        for collector in collectors:
            samples.extend(collector())
        return MetricsSnapshot(wall_time=time.time(), samples=samples)
