"""QoS watchdog: the 3-second recoat-gap deadline as a live alarm.

The paper's QoS constraint (§3, §5) is that every layer's verdict must
arrive before the EOS M290 finishes recoating — about 3 seconds — or the
machine prints the next layer on top of an unassessed one. The watchdog
turns that constraint from a post-hoc benchmark assertion into runtime
monitoring: every result delivered to any sink is checked against the
deadline, violations raise structured alerts (callback + ``logging``) and
feed the metrics registry, and per-layer worst-case latency is tracked so
`strata-repro top` and the exporters can show headroom, not just averages.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..spe.tuples import StreamTuple
from .registry import MetricsRegistry

#: the EOS M290 recoat gap the paper evaluates against (§5)
RECOAT_GAP_SECONDS = 3.0

logger = logging.getLogger("repro.obs.qos")


#: alert category of the original hard recoat-deadline path
DEADLINE_CATEGORY = "deadline"
#: alert category of forecast-based events raised ahead of a breach
PREDICTIVE_CATEGORY = "predictive"


@dataclass(frozen=True)
class QoSAlert:
    """One structured QoS event.

    The original shape — a hard deadline violation at a sink — is the
    ``deadline`` category and keeps its exact field meanings.  Predictive
    alerts (category ``predictive``) are raised by forecasting operators
    *before* a threshold is breached: ``predicted_value``/``threshold``
    carry the forecast exceedance and ``lead_time_s`` how far ahead of
    the breach the warning landed (``latency_s`` is 0.0 — nothing is
    late yet).  All new fields default, so pre-existing constructions and
    checkpoints remain valid.
    """

    job: str
    layer: int
    specimen: str | None
    sink: str
    latency_s: float
    deadline_s: float
    wall_time: float
    category: str = DEADLINE_CATEGORY
    lead_time_s: float | None = None
    predicted_value: float | None = None
    threshold: float | None = None

    def format(self) -> str:
        if self.category == PREDICTIVE_CATEGORY:
            lead = f"{self.lead_time_s:.1f}s" if self.lead_time_s is not None else "?"
            return (
                f"QoS predictive alert: job={self.job} layer={self.layer} "
                f"specimen={self.specimen} forecast {self.predicted_value:.2f} "
                f"exceeds threshold {self.threshold:.2f} "
                f"(lead time {lead}) from {self.sink!r}"
            )
        return (
            f"QoS violation: job={self.job} layer={self.layer} "
            f"specimen={self.specimen} took {self.latency_s:.3f}s "
            f"(deadline {self.deadline_s:.1f}s) at sink {self.sink!r}"
        )


@dataclass
class LayerLatency:
    """Worst observed end-to-end latency for one (job, layer)."""

    job: str
    layer: int
    worst_s: float = 0.0
    results: int = 0
    violated: bool = False


AlertCallback = Callable[[QoSAlert], None]


class QoSWatchdog:
    """Evaluates per-layer end-to-end latency against a deadline.

    ``observe`` is invoked from ``Sink.accept`` for every delivered result
    (results are per layer/specimen, i.e. a few per second, so a lock here
    is nowhere near any hot path). Alerts fire once per (job, layer, sink)
    so a layer with many late specimens does not flood the expert.
    """

    def __init__(
        self,
        deadline_s: float = RECOAT_GAP_SECONDS,
        on_alert: AlertCallback | None = None,
        max_alerts: int = 1024,
        max_layers: int = 4096,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self.deadline_s = deadline_s
        self._callbacks: list[AlertCallback] = [on_alert] if on_alert else []
        self._max_alerts = max_alerts
        self._max_layers = max_layers
        self._lock = threading.Lock()
        self._layers: dict[tuple[str, int], LayerLatency] = {}
        # legacy deadline alerts dedup on (job, layer, sink); other
        # categories append themselves to the key, so old entries are
        # never aliased by new alert shapes
        self._alerted: set[tuple] = set()
        self.alerts: list[QoSAlert] = []
        self.results_observed = 0
        self.violations = 0
        self.predictive_events = 0
        self._violations_total = None
        self._predictive_total = None
        self._worst_gauge = None

    def add_callback(self, callback: AlertCallback) -> None:
        self._callbacks.append(callback)

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Export violation count / worst latency / deadline as metrics."""
        registry.gauge(
            "strata_qos_deadline_seconds", "configured recoat-gap QoS deadline"
        ).set(self.deadline_s)
        self._violations_total = registry.counter(
            "strata_qos_violations_total", "results delivered past the QoS deadline"
        )
        self._predictive_total = registry.counter(
            "strata_qos_predictive_alerts_total",
            "forecast-based QoS alerts raised ahead of a threshold breach",
        )
        self._worst_gauge = registry.gauge(
            "strata_qos_worst_latency_seconds",
            "worst per-layer end-to-end latency observed so far",
        )
        registry.gauge(
            "strata_qos_layers_violated",
            "distinct (job, layer) pairs that missed the deadline",
            fn=lambda: float(len(self.violated_layers())),
        )

    # -- observation --------------------------------------------------------

    def observe(self, t: StreamTuple, latency_s: float, sink_name: str) -> None:
        """Record one delivered result's end-to-end latency."""
        key = (t.job, t.layer)
        alert: QoSAlert | None = None
        with self._lock:
            self.results_observed += 1
            layer = self._layers.get(key)
            if layer is None:
                if len(self._layers) >= self._max_layers:
                    # evict the oldest tracked layer; alerts already fired
                    self._layers.pop(next(iter(self._layers)))
                layer = self._layers[key] = LayerLatency(t.job, t.layer)
            layer.results += 1
            if latency_s > layer.worst_s:
                layer.worst_s = latency_s
                if self._worst_gauge is not None and latency_s > self._worst_gauge.value:
                    self._worst_gauge.set(latency_s)
            if latency_s > self.deadline_s:
                self.violations += 1
                layer.violated = True
                if self._violations_total is not None:
                    self._violations_total.inc()
                alert_key = (t.job, t.layer, sink_name)
                if alert_key not in self._alerted:
                    self._alerted.add(alert_key)
                    alert = QoSAlert(
                        job=t.job,
                        layer=t.layer,
                        specimen=t.specimen,
                        sink=sink_name,
                        latency_s=latency_s,
                        deadline_s=self.deadline_s,
                        wall_time=time.time(),
                    )
                    if len(self.alerts) < self._max_alerts:
                        self.alerts.append(alert)
        if alert is not None:
            logger.warning(alert.format())
            for callback in self._callbacks:
                callback(alert)

    def observe_forecast(
        self,
        job: str,
        layer: int,
        specimen: str | None,
        source: str,
        predicted_value: float,
        threshold: float,
        lead_time_s: float,
    ) -> QoSAlert | None:
        """Raise a predictive alert: a forecast exceeds a QoS threshold.

        Called by forecasting operators for the layer *about to be*
        affected, ``lead_time_s`` ahead of the breach.  Deduplicated per
        (job, layer, source) within the predictive category, so a region
        forecast repeatedly over a window alerts once; the legacy
        deadline dedup keys are untouched.
        """
        alert: QoSAlert | None = None
        with self._lock:
            self.predictive_events += 1
            if self._predictive_total is not None:
                self._predictive_total.inc()
            alert_key = (job, layer, source, PREDICTIVE_CATEGORY)
            if alert_key not in self._alerted:
                self._alerted.add(alert_key)
                alert = QoSAlert(
                    job=job,
                    layer=layer,
                    specimen=specimen,
                    sink=source,
                    latency_s=0.0,
                    deadline_s=self.deadline_s,
                    wall_time=time.time(),
                    category=PREDICTIVE_CATEGORY,
                    lead_time_s=lead_time_s,
                    predicted_value=predicted_value,
                    threshold=threshold,
                )
                if len(self.alerts) < self._max_alerts:
                    self.alerts.append(alert)
        if alert is not None:
            logger.warning(alert.format())
            for callback in self._callbacks:
                callback(alert)
        return alert

    # -- queries ------------------------------------------------------------

    def predictive_alerts(self) -> list[QoSAlert]:
        """Alerts raised ahead of a breach (category ``predictive``)."""
        with self._lock:
            return [a for a in self.alerts if a.category == PREDICTIVE_CATEGORY]

    def violated_layers(self) -> list[tuple[str, int]]:
        with self._lock:
            return sorted(k for k, v in self._layers.items() if v.violated)

    def layer_latencies(self) -> dict[tuple[str, int], LayerLatency]:
        with self._lock:
            return dict(self._layers)

    def worst_latency_s(self) -> float:
        with self._lock:
            return max((v.worst_s for v in self._layers.values()), default=0.0)

    @property
    def violation_rate(self) -> float:
        with self._lock:
            if not self.results_observed:
                return 0.0
            return self.violations / self.results_observed
