"""Snapshot exporters: Prometheus text format and JSON lines.

Both exporters render a :class:`~repro.obs.registry.MetricsSnapshot`, so
they can run anywhere a snapshot exists — at the end of a CLI run
(``--metrics-out``), periodically from ``strata-repro top``, or from user
code via ``Strata.metrics()``. The Prometheus renderer follows the text
exposition format (HELP/TYPE headers, escaped label values, cumulative
``_bucket`` series) so the output scrapes cleanly; the JSON-lines form is
one self-contained object per snapshot, append-friendly for long runs and
trivially round-trippable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from .registry import MetricsRegistry, MetricsSnapshot, Sample

_PROM_KIND = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram_bucket": "histogram",
    "histogram_sum": "histogram",
    "histogram_count": "histogram",
}


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _family_of(sample: Sample) -> str:
    name = sample.name
    if sample.kind in ("histogram_bucket", "histogram_sum", "histogram_count"):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(
    snapshot: MetricsSnapshot, registry: MetricsRegistry | None = None
) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_families: set[str] = set()
    for sample in snapshot.samples:
        family = _family_of(sample)
        if family not in seen_families:
            seen_families.add(family)
            help_text = registry.help_for(family) if registry is not None else ""
            if help_text:
                lines.append(f"# HELP {family} {escape_help(help_text)}")
            lines.append(f"# TYPE {family} {_PROM_KIND.get(sample.kind, 'untyped')}")
        if sample.labels:
            rendered = ",".join(
                f'{key}="{escape_label_value(value)}"' for key, value in sample.labels
            )
            lines.append(f"{sample.name}{{{rendered}}} {_format_value(sample.value)}")
        else:
            lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


# -- JSON lines -------------------------------------------------------------


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict:
    """A JSON-serializable form of one snapshot."""
    return {
        "wall_time": snapshot.wall_time,
        "samples": [
            {
                "name": s.name,
                "labels": s.labels_dict(),
                "value": s.value,
                "kind": s.kind,
            }
            for s in snapshot.samples
        ],
    }


def snapshot_from_dict(payload: dict) -> MetricsSnapshot:
    """Inverse of :func:`snapshot_to_dict`."""
    return MetricsSnapshot(
        wall_time=float(payload["wall_time"]),
        samples=[
            Sample(
                name=item["name"],
                labels=tuple(sorted((k, v) for k, v in item["labels"].items())),
                value=float(item["value"]),
                kind=item.get("kind", "gauge"),
            )
            for item in payload["samples"]
        ],
    )


def to_json_line(snapshot: MetricsSnapshot) -> str:
    """One snapshot as a single JSON line (no trailing newline)."""
    return json.dumps(snapshot_to_dict(snapshot), separators=(",", ":"))


def write_jsonl(
    path: str | Path | IO[str], snapshot: MetricsSnapshot, append: bool = True
) -> None:
    """Append one snapshot line to a JSON-lines file (or writable)."""
    line = to_json_line(snapshot) + "\n"
    if hasattr(path, "write"):
        path.write(line)
        return
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as fh:
        fh.write(line)


def read_jsonl(path: str | Path) -> list[MetricsSnapshot]:
    """Parse every snapshot line of a JSON-lines metrics file."""
    snapshots: list[MetricsSnapshot] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                snapshots.append(snapshot_from_dict(json.loads(line)))
    return snapshots
