"""Sampled end-to-end tracing of individual tuple journeys.

Latency summaries say *that* the pipeline is slow; a trace says *where*.
The tracer stamps a trace ID into every Nth tuple at each source (the
decision is a counter comparison, so unsampled tuples cost one ``%``), and
every scheduler node that handles a stamped tuple — or any tuple derived
from it, since ``StreamTuple.derive`` carries the ID along — appends a
span: node name, wall-clock start, processing duration. One OT layer's
journey through collector, fuse, partition, detect and correlate is then
reconstructable as an ordered span list, the in-process equivalent of an
OpenTelemetry trace for one recoat gap.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..spe.tuples import StreamTuple


@dataclass(frozen=True)
class Span:
    """One node's work on one traced tuple."""

    trace_id: str
    node: str
    kind: str  # "source" | "operator" | "sink"
    wall_time: float
    duration_s: float
    layer: int | None = None
    specimen: str | None = None


@dataclass
class Trace:
    """All spans recorded for one trace ID, in arrival order."""

    trace_id: str
    spans: list[Span] = field(default_factory=list)

    @property
    def nodes(self) -> list[str]:
        return [s.node for s in self.spans]

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s for s in self.spans)

    def elapsed_s(self) -> float:
        """Wall time from the first span's start to the last one's end."""
        if not self.spans:
            return 0.0
        first = min(s.wall_time for s in self.spans)
        last = max(s.wall_time + s.duration_s for s in self.spans)
        return last - first

    def format(self) -> str:
        lines = [f"trace {self.trace_id}: {len(self.spans)} spans, "
                 f"{self.elapsed_s() * 1e3:.2f} ms end-to-end"]
        for s in self.spans:
            lines.append(
                f"  {s.kind:<8} {s.node:<36} {s.duration_s * 1e3:9.3f} ms"
            )
        return "\n".join(lines)


class Tracer:
    """Bounded, sampling span recorder.

    ``sample_every=N`` stamps one tuple in N per source; ``max_traces``
    bounds memory by evicting the oldest complete trace (FIFO), so a
    multi-hour monitoring run keeps a constant-size window of recent
    journeys.
    """

    def __init__(self, sample_every: int = 64, max_traces: int = 256) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, Trace] = OrderedDict()
        self._source_seq: dict[str, int] = {}
        self.sampled = 0

    # -- hot-path hooks (called by the schedulers) -------------------------

    def at_source(self, source_name: str, t: StreamTuple) -> None:
        """Sampling decision + stamp, called once per emitted tuple."""
        seq = self._source_seq.get(source_name, 0)
        self._source_seq[source_name] = seq + 1
        if seq % self.sample_every:
            return
        trace_id = f"{source_name}#{seq}"
        t.trace_id = trace_id
        self.sampled += 1
        self.record(trace_id, source_name, "source", 0.0, t)

    def record(
        self,
        trace_id: str,
        node: str,
        kind: str,
        duration_s: float,
        t: StreamTuple | None = None,
    ) -> None:
        """Append one span to a trace (creating/evicting as needed)."""
        span = Span(
            trace_id=trace_id,
            node=node,
            kind=kind,
            wall_time=time.time(),
            duration_s=duration_s,
            layer=t.layer if t is not None else None,
            specimen=t.specimen if t is not None else None,
        )
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                trace = Trace(trace_id)
                self._traces[trace_id] = trace
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            trace.spans.append(span)

    # -- queries ------------------------------------------------------------

    def trace(self, trace_id: str) -> Trace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def traces(self) -> list[Trace]:
        """Recorded traces, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
