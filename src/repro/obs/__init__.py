"""repro.obs — pipeline-wide observability for the STRATA reproduction.

Public surface:

* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — counters, gauges
  and histograms collected lazily at scrape time;
* :class:`Tracer` — sampled per-tuple span recording across the pipeline;
* :class:`QoSWatchdog` — runtime enforcement of the 3 s recoat deadline;
* :class:`ObsConfig` / :class:`ObsContext` — one object wiring all of the
  above into a deployed pipeline (``Strata(obs=True)``);
* exporters — Prometheus text format and JSON-lines snapshots.
"""

from .context import ObsConfig, ObsContext
from .exporters import (
    escape_label_value,
    read_jsonl,
    snapshot_from_dict,
    snapshot_to_dict,
    to_json_line,
    to_prometheus,
    write_jsonl,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    histogram_samples,
)
from .tracer import Span, Trace, Tracer
from .watchdog import (
    DEADLINE_CATEGORY,
    PREDICTIVE_CATEGORY,
    RECOAT_GAP_SECONDS,
    LayerLatency,
    QoSAlert,
    QoSWatchdog,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "RECOAT_GAP_SECONDS",
    "Counter",
    "Gauge",
    "Histogram",
    "LayerLatency",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsConfig",
    "ObsContext",
    "QoSAlert",
    "DEADLINE_CATEGORY",
    "PREDICTIVE_CATEGORY",
    "QoSWatchdog",
    "Sample",
    "Span",
    "Trace",
    "Tracer",
    "escape_label_value",
    "histogram_samples",
    "read_jsonl",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "to_json_line",
    "to_prometheus",
    "write_jsonl",
]
