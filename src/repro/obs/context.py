"""Observability context: configuration and pipeline wiring.

One :class:`ObsContext` per :class:`~repro.core.api.Strata` instance owns
the metrics registry, the (optional) tracer and the (optional) QoS
watchdog, and knows how to attach them to a deployed pipeline:

* ``bind(nodes)`` runs after the plan compiler — it indexes every stream
  (queue depth / high-watermark gauges), enables member-level counters on
  fused operators, and installs the watchdog as every sink's observer;
* ``attach_executor(ex)`` runs from the schedulers as node executors are
  created — it enables the per-operator processing-time histogram and
  hands the executor the tracer.

Everything the registry exports is collected lazily at snapshot time from
the hot-path objects' own plain counters, so instrumentation overhead per
tuple is a few attribute updates (guarded by the obs-overhead benchmark,
``BENCH_obs.json``).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from ..spe.metrics import OperatorStats
from ..spe.query import Node
from ..spe.stream import Stream
from .registry import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    histogram_samples,
)
from .tracer import Tracer
from .watchdog import RECOAT_GAP_SECONDS, QoSWatchdog


@dataclass(frozen=True)
class ObsConfig:
    """Knobs for the observability layer.

    ``qos_deadline_s``      per-layer latency deadline (None = no watchdog).
    ``trace_sample_every``  stamp one tuple in N per source (0 = no tracer).
    ``timing_histograms``   per-operator processing-time bucket counters.
    """

    qos_deadline_s: float | None = RECOAT_GAP_SECONDS
    trace_sample_every: int = 64
    max_traces: int = 256
    timing_histograms: bool = True
    time_buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS

    def __post_init__(self) -> None:
        if self.qos_deadline_s is not None and self.qos_deadline_s <= 0:
            raise ValueError("qos_deadline_s must be positive")
        if self.trace_sample_every < 0:
            raise ValueError("trace_sample_every must be >= 0")


class ObsContext:
    """Registry + tracer + watchdog, bound to at most one pipeline."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.registry = MetricsRegistry()
        self.tracer: Tracer | None = (
            Tracer(self.config.trace_sample_every, self.config.max_traces)
            if self.config.trace_sample_every
            else None
        )
        self.watchdog: QoSWatchdog | None = None
        if self.config.qos_deadline_s is not None:
            self.watchdog = QoSWatchdog(self.config.qos_deadline_s)
            self.watchdog.attach_metrics(self.registry)
        self._lock = threading.Lock()
        self._executors: list = []
        self._streams: list[Stream] = []
        self._sinks: list = []
        self._fused: list = []
        self._paced_sources: list = []
        self.registry.register_collector("spe-nodes", self._collect_nodes)
        self.registry.register_collector("spe-queues", self._collect_queues)
        self.registry.register_collector("spe-sinks", self._collect_sinks)
        self.registry.register_collector("spe-lag", self._collect_lag)
        for name, help_text in _HELP.items():
            self.registry.set_help(name, help_text)

    @classmethod
    def resolve(cls, obs: "ObsContext | ObsConfig | bool | None") -> "ObsContext | None":
        """Normalize the ``obs=`` argument of user-facing APIs."""
        if obs is None or obs is False:
            return None
        if obs is True:
            return cls()
        if isinstance(obs, ObsConfig):
            return cls(obs)
        if isinstance(obs, cls):
            return obs
        raise TypeError(f"obs must be bool, None, ObsConfig or ObsContext, got {obs!r}")

    # -- pipeline wiring ----------------------------------------------------

    def bind(self, nodes: list[Node]) -> None:
        """Index a compiled node graph (called by the engine pre-run)."""
        self._index(nodes, executors=[])

    def rebind(self, nodes: list[Node], retired: tuple | list = ()) -> None:
        """Re-index the graph after an elastic rescale splices nodes.

        Unlike :meth:`bind`, the executor registry survives: executors for
        nodes that kept running must keep exporting their counters, while
        the drained replicas in ``retired`` stop being sampled. The new
        replicas' executors arrive through :meth:`attach_executor` as the
        scheduler launches them.
        """
        dropped = set(map(id, retired))
        with self._lock:
            kept = [ex for ex in self._executors if id(ex) not in dropped]
        self._index(nodes, executors=kept)

    def _index(self, nodes: list[Node], executors: list) -> None:
        streams: dict[int, Stream] = {}
        sinks = []
        fused = []
        paced = []
        for node in nodes:
            for stream in node.inputs:
                streams[id(stream)] = stream
            for stream in node.outputs:
                streams[id(stream)] = stream
            if node.kind == "sink":
                sinks.append(node.sink)
                if self.watchdog is not None:
                    node.sink.observer = self._observe_result
            elif node.kind == "source" and hasattr(node.source, "lag_s"):
                paced.append(node.source)
            elif node.kind == "operator" and hasattr(node.operator, "enable_member_stats"):
                node.operator.enable_member_stats()
                fused.append(node.operator)
        with self._lock:
            self._streams = list(streams.values())
            self._sinks = sinks
            self._fused = fused
            self._paced_sources = paced
            self._executors = executors

    def attach_executor(self, executor) -> None:
        """Register one node executor (called by the schedulers)."""
        if self.config.timing_histograms:
            executor.stats.enable_timing(self.config.time_buckets)
        with self._lock:
            self._executors.append(executor)

    def _observe_result(self, sink, t, latency_s: float) -> None:
        self.watchdog.observe(t, latency_s, sink.name)

    # -- snapshotting -------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()

    def _collect_nodes(self):
        with self._lock:
            executors = list(self._executors)
        samples: list[Sample] = []
        for ex in executors:
            stats: OperatorStats = ex.stats
            kind = ex.node.kind
            labels = (("kind", kind), ("operator", stats.name))
            samples.append(Sample("spe_tuples_in_total", labels, stats.tuples_in, "counter"))
            samples.append(Sample("spe_tuples_out_total", labels, stats.tuples_out, "counter"))
            samples.append(
                Sample("spe_busy_seconds_total", labels, stats.processing_seconds, "counter")
            )
            if stats.batches_out:
                samples.append(
                    Sample("spe_batches_out_total", labels, stats.batches_out, "counter")
                )
                samples.append(
                    Sample(
                        "spe_batch_tuples_out_total", labels,
                        stats.batch_tuples_out, "counter",
                    )
                )
                samples.append(
                    Sample(
                        "spe_batch_fill_ratio", labels,
                        stats.batch_tuples_out / stats.batches_out
                        / max(ex.edge_batch_size, 1),
                    )
                )
            if stats.timing_counts is not None and stats.timing_total:
                samples.extend(
                    histogram_samples(
                        "spe_processing_seconds",
                        labels,
                        list(stats.timing_bounds),
                        stats.timing_counts,
                        stats.processing_seconds,
                        stats.timing_total,
                    )
                )
            if not math.isnan(stats.last_tau):
                samples.append(Sample("spe_last_tau", labels, stats.last_tau))
            if kind == "operator":
                op = ex.node.operator
                mode = getattr(op, "execution_mode", "scalar")
                samples.append(
                    Sample("spe_operator_mode", labels + (("mode", mode),), 1.0)
                )
                blocks_in = getattr(op, "blocks_in", 0)
                if blocks_in:
                    block_rows = getattr(op, "block_rows_in", 0)
                    samples.append(
                        Sample("spe_blocks_in_total", labels, blocks_in, "counter")
                    )
                    samples.append(
                        Sample(
                            "spe_block_rows_in_total", labels, block_rows, "counter"
                        )
                    )
                    samples.append(
                        Sample(
                            "spe_block_fill_ratio", labels,
                            block_rows / blocks_in / max(ex.edge_batch_size, 1),
                        )
                    )
                extra = op.stats_extra()
                for key, value in extra.items():
                    samples.append(
                        Sample(f"spe_operator_{key}", labels, float(value), "counter")
                    )
        with self._lock:
            fused = list(self._fused)
        for op in fused:
            counts = op.member_stats()
            if counts is None:
                continue
            for member, (tuples_in, tuples_out) in counts.items():
                labels = (("fused_into", op.name), ("kind", "operator"), ("operator", member))
                samples.append(Sample("spe_tuples_in_total", labels, tuples_in, "counter"))
                samples.append(Sample("spe_tuples_out_total", labels, tuples_out, "counter"))
        return samples

    def _collect_queues(self):
        with self._lock:
            streams = list(self._streams)
        samples: list[Sample] = []
        for stream in streams:
            labels = (("stream", stream.name),)
            samples.append(Sample("spe_queue_depth", labels, len(stream)))
            samples.append(
                Sample("spe_queue_high_watermark", labels, stream.high_watermark)
            )
            samples.append(Sample("spe_queue_capacity", labels, stream.capacity))
            samples.append(
                Sample("spe_queue_produced_total", labels, stream.produced, "counter")
            )
            samples.append(
                Sample("spe_queue_consumed_total", labels, stream.consumed, "counter")
            )
        return samples

    def _collect_sinks(self):
        with self._lock:
            sinks = list(self._sinks)
        samples: list[Sample] = []
        for sink in sinks:
            labels = (("sink", sink.name),)
            count = len(sink.latency)
            samples.append(Sample("strata_sink_results_total", labels, count, "counter"))
            samples.append(
                Sample(
                    "strata_sink_throughput_per_second", labels,
                    sink.throughput.per_second(),
                )
            )
            if count:
                summary = sink.latency.summary()
                for stat, value in (
                    ("median", summary.median),
                    ("p95", summary.p95),
                    ("p99", summary.p99),
                    ("max", summary.maximum),
                ):
                    samples.append(
                        Sample(
                            "strata_sink_latency_seconds",
                            labels + (("stat", stat),),
                            value,
                        )
                    )
        return samples

    def _collect_lag(self):
        """Watermark lag: newest event time ingested vs newest delivered."""
        with self._lock:
            executors = list(self._executors)
            paced = list(self._paced_sources)
        samples = [
            Sample(
                "strata_source_lag_seconds",
                (("source", source.name),),
                source.lag_s,
            )
            for source in paced
        ]
        source_tau = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "source" and not math.isnan(ex.stats.last_tau)
        ]
        sink_tau = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "sink" and not math.isnan(ex.stats.last_tau)
        ]
        if not source_tau:
            return samples
        samples.append(
            Sample("strata_watermark_tau", (("edge", "sources"),), max(source_tau))
        )
        if sink_tau:
            samples.append(
                Sample("strata_watermark_tau", (("edge", "sinks"),), min(sink_tau))
            )
            samples.append(
                Sample("strata_watermark_lag", (), max(source_tau) - min(sink_tau))
            )
        return samples


_HELP = {
    "spe_tuples_in_total": "tuples consumed per scheduler node",
    "spe_tuples_out_total": "tuples emitted per scheduler node",
    "spe_busy_seconds_total": "time spent processing tuples per node",
    "spe_processing_seconds": "per-tuple processing time distribution",
    "spe_batches_out_total": "tuple batches shipped on outgoing edges",
    "spe_batch_tuples_out_total": "tuples shipped inside batches",
    "spe_batch_fill_ratio": "mean batch occupancy vs configured batch size",
    "spe_operator_mode": "execution mode per operator (scalar or vectorized)",
    "spe_blocks_in_total": "columnar blocks formed by a vectorized operator",
    "spe_block_rows_in_total": "rows processed inside columnar blocks",
    "spe_block_fill_ratio": "mean block occupancy vs configured batch size",
    "spe_last_tau": "newest event time (tau) seen by a node",
    "spe_queue_depth": "tuples currently queued on a stream",
    "spe_queue_high_watermark": "max queue depth observed on a stream",
    "spe_queue_capacity": "configured stream capacity",
    "spe_queue_produced_total": "tuples ever enqueued on a stream",
    "spe_queue_consumed_total": "tuples ever dequeued from a stream",
    "strata_sink_results_total": "results delivered to a sink",
    "strata_sink_throughput_per_second": "sink delivery rate over the run",
    "strata_sink_latency_seconds": "end-to-end latency summary per sink",
    "strata_source_lag_seconds": "how far a paced source trails its schedule",
    "strata_watermark_tau": "event-time frontier at sources vs sinks",
    "strata_watermark_lag": "event-time distance between ingest and delivery",
    "elastic_parallelism": "current replica count per elastic group",
    "elastic_batch_size": "adaptive edge batch size per elastic group",
    "elastic_rescales_total": "rescale operations executed, by direction",
    "elastic_last_rescale_seconds": "duration of the newest rescale drain-splice",
    "elastic_chain_mode": "shape of an adaptable chain (fused, unfused, vectorized)",
    "elastic_last_adaptation": "newest re-planning action applied per chain",
    "elastic_replan_actions_total": "re-planning actions applied, by action kind",
    "elastic_replan_last_action_seconds": "duration of the newest re-planning action",
}
