"""Stage workers: the child-process runtime and its parent-side handle.

:func:`run_stage` is a worker process's main: it reconnects the stage's
pub/sub connectors to the coordinator's broker server, runs the stage
nodes on a private :class:`~repro.spe.scheduler.ThreadedScheduler`, and
heartbeats liveness plus an observability snapshot back to the server
while it runs.

:class:`WorkerProcess` is the coordinator-side handle. Workers are forked:
the coordinator's copies of the stage nodes never execute locally, so they
stay pristine in its memory, and a *restart* simply re-forks them — the
replacement replays its input topics from the earliest retained offset
(workers never auto-commit) and downstream dedup filters absorb the
replayed records, which is what makes one worker restart invisible in the
final output.
"""

from __future__ import annotations

import importlib
import logging
import multiprocessing
import os
import threading
import time
from typing import Any

from ..elastic import ElasticController, discover_chains, discover_groups
from ..net.client import BrokerClient
from ..obs.context import ObsContext
from ..obs.exporters import snapshot_to_dict
from ..spe.plan import PlanConfig
from ..spe.scheduler import ThreadedScheduler
from .stages import StageSpec, cut_stages

logger = logging.getLogger(__name__)


def _scheduler_for(plan: PlanConfig | None, obs: ObsContext | None) -> ThreadedScheduler:
    if plan is None:
        return ThreadedScheduler(obs=obs)
    return ThreadedScheduler(
        edge_batch_size=plan.edge_batch_size, linger_s=plan.linger_s, obs=obs
    )


def run_stage(
    stages: list[StageSpec],
    address: tuple[str, int],
    worker_name: str,
    allow_pickle: bool = True,
    heartbeat_interval: float = 0.25,
    obs: bool = True,
    plan: PlanConfig | None = None,
    incarnation: int = 0,
    elastic: Any | None = None,
    produce_batch: int = 1,
) -> None:
    """Execute one or more stages against a networked broker; blocking.

    This is the target of a worker process, but runs equally in the
    calling thread (the ``strata-repro worker`` CLI verb uses it
    directly). With ``elastic`` (an ``ElasticConfig``), stages containing
    keyed-replicated groups get their own rescale controller — each
    worker scales its replicas against its private scheduler; stages
    without such groups run unmanaged, which is the normal case for most
    stages of a cut pipeline.
    """
    host, port = address
    client = BrokerClient(host, port, allow_pickle=allow_pickle)
    client.wait_ready(timeout=15.0)
    stage_names = [s.name for s in stages]
    for stage in stages:
        for writer in stage.writers():
            writer.rebind(client, batch_size=produce_batch)
        for reader in stage.readers():
            # Never auto-commit and always dedup: a restarted incarnation
            # must replay from earliest, and replayed records upstream of
            # us must not be processed twice.
            reader.rebind(client, auto_commit=False, dedup=True)
    obs_ctx = ObsContext() if obs else None
    nodes = [node for stage in stages for node in stage.nodes]
    if obs_ctx is not None:
        obs_ctx.bind(nodes)

    stop_beat = threading.Event()
    state = {"value": "running"}

    def beat() -> dict:
        return {
            "worker": worker_name,
            "info": {
                "stages": stage_names,
                "pid": os.getpid(),
                "incarnation": incarnation,
                "state": state["value"],
            },
            "metrics": (
                snapshot_to_dict(obs_ctx.snapshot()) if obs_ctx is not None else None
            ),
        }

    def heartbeat_loop() -> None:
        while not stop_beat.is_set():
            try:
                payload = beat()
                client.heartbeat(
                    payload["worker"], payload["info"], payload["metrics"]
                )
            except Exception:  # the server vanished: nothing useful left to do
                return
            stop_beat.wait(heartbeat_interval)

    beater = threading.Thread(
        target=heartbeat_loop, name=f"{worker_name}-heartbeat", daemon=True
    )
    beater.start()
    try:
        scheduler = _scheduler_for(plan, obs_ctx)
        manageable = elastic is not None and (
            discover_groups(nodes)
            or (
                getattr(elastic, "replan", None) is not None
                and discover_chains(nodes)
            )
        )
        if manageable:
            scheduler.start(nodes)
            controller = ElasticController(
                scheduler, nodes, elastic, plan=plan, obs=obs_ctx
            )
            controller.start()
            try:
                scheduler.join()
            finally:
                controller.stop()
        else:
            scheduler.run(nodes)
        state["value"] = "done"
    except BaseException:
        state["value"] = "failed"
        raise
    finally:
        stop_beat.set()
        beater.join(timeout=2.0)
        try:
            payload = beat()
            client.heartbeat(payload["worker"], payload["info"], payload["metrics"])
        except Exception:
            pass
        client.close()


class WorkerProcess:
    """Coordinator-side handle on one (restartable) stage worker."""

    def __init__(
        self,
        name: str,
        stages: list[StageSpec],
        address: tuple[str, int],
        allow_pickle: bool = True,
        heartbeat_interval: float = 0.25,
        obs: bool = True,
        plan: PlanConfig | None = None,
        start_method: str = "fork",
        elastic: Any | None = None,
        produce_batch: int = 1,
    ) -> None:
        if start_method != "fork":
            # Stage nodes carry closures and live generators; only fork can
            # hand them to a child. Other start methods go through the
            # `strata-repro worker` CLI, which rebuilds the pipeline.
            raise ValueError(
                "in-process stage handoff requires the 'fork' start method; "
                "use the 'strata-repro worker' CLI for spawn/multi-machine"
            )
        self.name = name
        self.stages = stages
        self.stage_names = [s.name for s in stages]
        self._address = address
        self._allow_pickle = allow_pickle
        self._heartbeat_interval = heartbeat_interval
        self._obs = obs
        self._plan = plan
        self._elastic = elastic
        self._produce_batch = produce_batch
        self._ctx = multiprocessing.get_context(start_method)
        self._process: multiprocessing.process.BaseProcess | None = None
        self.incarnation = 0
        self.restarts = 0
        self.finished = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._process = self._ctx.Process(
            target=run_stage,
            kwargs={
                "stages": self.stages,
                "address": self._address,
                "worker_name": self.name,
                "allow_pickle": self._allow_pickle,
                "heartbeat_interval": self._heartbeat_interval,
                "obs": self._obs,
                "plan": self._plan,
                "incarnation": self.incarnation,
                "elastic": self._elastic,
                "produce_batch": self._produce_batch,
            },
            name=self.name,
            daemon=True,
        )
        self._process.start()

    def restart(self) -> None:
        """Terminate any live incarnation and fork a fresh one."""
        self.terminate()
        self.incarnation += 1
        self.restarts += 1
        self.start()

    def refork(self) -> None:
        """Re-fork with the current stage list, outside the restart budget.

        Used by planned operations (stage migration): the child picks up
        ``self.stages`` as it stands now, and the supervision loop's
        ``restart_limit`` — a crash budget — is not charged.
        """
        self.terminate()
        self.incarnation += 1
        self.start()

    def set_stages(self, stages: list[StageSpec]) -> None:
        """Replace the stage assignment (takes effect at the next fork)."""
        self.stages = list(stages)
        self.stage_names = [s.name for s in self.stages]

    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return None if self._process is None else self._process.exitcode

    @property
    def pid(self) -> int | None:
        return None if self._process is None else self._process.pid

    def join(self, timeout: float | None = None) -> None:
        if self._process is not None:
            self._process.join(timeout)

    def kill(self) -> None:
        """Hard-kill the current incarnation (chaos/restart testing)."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def terminate(self, timeout: float = 5.0) -> None:
        if self._process is None:
            return
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)
            if self._process.is_alive():  # pragma: no cover - stubborn child
                self._process.kill()
                self._process.join(timeout)

    def status(self) -> dict[str, Any]:
        return {
            "stages": self.stage_names,
            "pid": self.pid,
            "alive": self.alive(),
            "exitcode": self.exitcode,
            "incarnation": self.incarnation,
            "restarts": self.restarts,
            "finished": self.finished,
        }


# -- CLI support -------------------------------------------------------------


def load_pipeline(ref: str):
    """Import ``module:callable`` and build its declared query's nodes.

    The callable must return a :class:`~repro.core.api.Strata` instance
    (or a bare :class:`~repro.spe.query.Query`) with the pipeline declared
    but not deployed. Every worker machine rebuilds the same pipeline from
    source — the network carries only records, never code.
    """
    module_name, sep, attr = ref.partition(":")
    if not sep or not attr:
        raise ValueError(f"pipeline reference must be 'module:callable', got {ref!r}")
    factory = getattr(importlib.import_module(module_name), attr)
    built = factory()
    query = getattr(built, "query", built)
    capacity = getattr(built, "capacity", None)
    return query.build(capacity=capacity)


def run_worker_from_ref(
    pipeline_ref: str,
    stage_indexes: list[int],
    address: tuple[str, int],
    worker_name: str | None = None,
    allow_pickle: bool = True,
    list_stages: bool = False,
) -> int:
    """The ``strata-repro worker`` verb: rebuild, cut, run chosen stages."""
    from .stages import render_stages

    nodes = load_pipeline(pipeline_ref)
    stages = cut_stages(nodes)
    if list_stages:
        print(render_stages(stages))
        return 0
    chosen: list[StageSpec] = []
    for index in stage_indexes:
        if not 0 <= index < len(stages):
            raise ValueError(f"stage {index} out of range (pipeline has {len(stages)})")
        if stages[index].terminal:
            raise ValueError(
                f"stage {index} is terminal (delivers to an expert sink); "
                "it must run in the coordinator process"
            )
        chosen.append(stages[index])
    name = worker_name or f"worker-{'-'.join(str(i) for i in stage_indexes)}"
    started = time.monotonic()
    run_stage(chosen, address, worker_name=name, allow_pickle=allow_pickle)
    logger.info("worker %s finished in %.2fs", name, time.monotonic() - started)
    return 0
