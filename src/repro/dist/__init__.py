"""repro.dist — multi-process distributed runtime.

Cuts a built query DAG at its pub/sub connector edges into stages, runs
each stage in a forked worker process wired through a networked broker
(:mod:`repro.net`), and supervises the fleet: heartbeats, liveness,
bounded restarts, and aggregated per-worker metrics.
"""

from .coordinator import DistConfig, DistCoordinator, DistError, run_distributed
from .stages import StageSpec, assign_stages, cut_stages, render_stages
from .worker import WorkerProcess, load_pipeline, run_stage, run_worker_from_ref

__all__ = [
    "DistConfig",
    "DistCoordinator",
    "DistError",
    "StageSpec",
    "WorkerProcess",
    "assign_stages",
    "cut_stages",
    "load_pipeline",
    "render_stages",
    "run_distributed",
    "run_stage",
    "run_worker_from_ref",
]
