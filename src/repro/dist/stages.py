"""Cutting a built query DAG into distributable stages.

In pub/sub connector mode, a module boundary is materialized as a writer
sink on the producing side and a reader source on the consuming side with
*no stream between them* — the topic is the edge. The built node graph is
therefore already partitioned: the weakly-connected components over the
materialized streams are exactly the paper's deployable modules. A stage
is one such component plus the topics it consumes and produces.

Stages whose sinks are all pub/sub writers are *remote-capable*: every
edge in and out of them is a broker topic, so they can run in another
process wired through the network. A stage delivering to an expert sink
(an object the user holds) is *terminal* and runs in the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.connectors import PubSubReaderSource, PubSubWriterSink
from ..spe.query import Node


def _unwrap_source(source) -> object:
    """Peel checkpoint wrappers (duck-typed ``.inner``) off a source."""
    seen = set()
    while hasattr(source, "inner") and id(source) not in seen:
        seen.add(id(source))
        source = source.inner
    return source


@dataclass
class StageSpec:
    """One weakly-connected component of a built query graph."""

    index: int
    nodes: list[Node]
    input_topics: list[str] = field(default_factory=list)
    output_topics: list[str] = field(default_factory=list)
    terminal: bool = False

    @property
    def name(self) -> str:
        return f"stage-{self.index}"

    @property
    def node_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def readers(self) -> list[PubSubReaderSource]:
        """The pub/sub reader sources feeding this stage."""
        out = []
        for node in self.nodes:
            if node.kind != "source":
                continue
            source = _unwrap_source(node.source)
            if isinstance(source, PubSubReaderSource):
                out.append(source)
        return out

    def writers(self) -> list[PubSubWriterSink]:
        """The pub/sub writer sinks terminating this stage."""
        return [
            node.sink
            for node in self.nodes
            if node.kind == "sink" and isinstance(node.sink, PubSubWriterSink)
        ]

    def describe(self) -> str:
        kind = "terminal" if self.terminal else "remote"
        inputs = ", ".join(self.input_topics) or "-"
        outputs = ", ".join(self.output_topics) or "-"
        return (
            f"{self.name} [{kind}] nodes={len(self.nodes)} "
            f"in=[{inputs}] out=[{outputs}]"
        )


def cut_stages(nodes: list[Node]) -> list[StageSpec]:
    """Partition built nodes into stages (connected components).

    Components are discovered by union-find over shared stream objects and
    returned ordered by each component's first node in build order, so
    stage indexes are deterministic for a given query.
    """
    parent = list(range(len(nodes)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[max(ri, rj)] = min(ri, rj)

    stream_owner: dict[int, int] = {}
    for i, node in enumerate(nodes):
        for stream in list(node.inputs) + list(node.outputs):
            owner = stream_owner.setdefault(id(stream), i)
            union(i, owner)

    components: dict[int, list[Node]] = {}
    order: list[int] = []
    for i, node in enumerate(nodes):
        root = find(i)
        if root not in components:
            components[root] = []
            order.append(root)
        components[root].append(node)

    stages: list[StageSpec] = []
    for index, root in enumerate(order):
        stage = StageSpec(index=index, nodes=components[root])
        stage.input_topics = sorted({r.topic for r in stage.readers()})
        stage.output_topics = sorted({w.topic for w in stage.writers()})
        stage.terminal = any(
            node.kind == "sink" and not isinstance(node.sink, PubSubWriterSink)
            for node in stage.nodes
        )
        stages.append(stage)
    return stages


def render_stages(stages: list[StageSpec]) -> str:
    """Human-readable stage listing (CLI ``--list-stages``, logging)."""
    lines = [f"{len(stages)} stage(s):"]
    for stage in stages:
        lines.append("  " + stage.describe())
        for node in stage.nodes:
            lines.append(f"      {node.kind:<8} {node.name}")
    return "\n".join(lines)


def assign_stages(
    stages: list[StageSpec], workers: int | None
) -> tuple[list[list[StageSpec]], list[StageSpec]]:
    """Split stages into per-worker groups plus the local (terminal) set.

    Remote-capable stages are dealt round-robin across ``workers``
    processes (default: one process per stage); terminal stages stay
    local. Raises if nothing can go remote — a direct-mode graph has no
    pub/sub cuts and there is nothing to distribute.
    """
    remote = [s for s in stages if not s.terminal]
    local = [s for s in stages if s.terminal]
    if not remote:
        raise ValueError(
            "query has no remote-capable stages; distributed deployment "
            "requires connector_mode='pubsub' module cuts"
        )
    count = len(remote) if workers is None else max(1, min(workers, len(remote)))
    groups: list[list[StageSpec]] = [[] for _ in range(count)]
    for i, stage in enumerate(remote):
        groups[i % count].append(stage)
    return groups, local
