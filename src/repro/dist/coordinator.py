"""The distributed coordinator: one deploy, many processes.

The coordinator owns the broker (served over TCP by
:class:`~repro.net.server.BrokerServer`), cuts the built query into stages
at the pub/sub connector edges, forks one worker process per stage group,
and runs the terminal stage — the one delivering to the expert's sinks —
in its own process so results land in the objects the user holds.

Supervision is process-first: a worker that dies with a non-zero exit
code is re-forked from the coordinator's pristine copy of its stage (up
to ``restart_limit`` times); the replacement replays its input topics
from the earliest offset and the content-key dedup filters downstream
keep the final output identical. Heartbeats carry per-worker liveness and
an observability snapshot, aggregated here and exposed through the
Prometheus exporter (``scrape_port``).
"""

from __future__ import annotations

import dataclasses
import logging
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..core.connectors import EOS_SENTINEL
from ..core.errors import DeployConfigError
from ..elastic import ElasticConfig, ElasticController, discover_groups
from ..elastic.replan import discover_chains, plan_migration
from ..net.server import BrokerServer
from ..obs.exporters import snapshot_from_dict, to_prometheus
from ..obs.registry import MetricsSnapshot, Sample
from ..pubsub.broker import Broker
from ..pubsub.producer import Producer
from ..spe.engine import RunReport
from ..spe.plan import PlanConfig, compile_plan
from ..spe.query import Query
from .stages import StageSpec, assign_stages, cut_stages
from .worker import WorkerProcess, _scheduler_for

logger = logging.getLogger(__name__)


class DistError(Exception):
    """A distributed deployment failed (worker death past the restart budget)."""


@dataclass
class DistConfig:
    """Knobs for a distributed deployment.

    ``workers``             worker process count (None = one per remote stage).
    ``allow_pickle``        enable pickle frames on the loopback links; the
                            runtime owns both endpoints, so this is the
                            trusted-path default (standalone servers default
                            to refusing pickle).
    ``restart_limit``       automatic re-forks per worker before giving up.
    ``scrape_port``         serve aggregated metrics over HTTP (None = off,
                            0 = ephemeral port).
    ``transport``           payload transport: ``"tcp"`` (payloads in frames)
                            or ``"shm"`` (ndarray payloads in a shared-memory
                            slab ring; frames carry handles — the fast path
                            when every worker shares the machine).
    ``shm_slots``           slab count of the shm ring.
    ``shm_slab_bytes``      byte size of each slab (must fit the largest
                            payload array; bigger arrays ride inline).
    ``produce_batch``       records buffered per writer sink before one
                            batched ``produce_batch`` frame is written with
                            vectored I/O (1 = unbatched sends).
    """

    workers: int | None = None
    host: str = "127.0.0.1"
    port: int = 0
    allow_pickle: bool = True
    heartbeat_interval: float = 0.25
    liveness_timeout: float = 5.0
    restart_limit: int = 2
    scrape_port: int | None = None
    worker_obs: bool = True
    start_method: str = "fork"
    worker_join_timeout: float = 60.0
    transport: str = "tcp"
    shm_slots: int = 64
    shm_slab_bytes: int = 40 * 1024 * 1024
    produce_batch: int = 1

    @classmethod
    def resolve(cls, value: Any) -> "DistConfig | None":
        """Normalize the ``distributed=`` argument of user-facing APIs."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, bool):  # pragma: no cover - covered above
            return None
        if isinstance(value, int):
            if value < 1:
                raise ValueError("distributed worker count must be >= 1")
            return cls(workers=value)
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"distributed must be bool, int or DistConfig, got {value!r}"
        )


class DistCoordinator:
    """Runs one built query across worker processes; see module docstring."""

    def __init__(
        self,
        query: Query,
        broker: Broker,
        config: DistConfig | None = None,
        obs: Any | None = None,
        capacity: int | None = None,
        plan: Any | None = None,
        elastic: Any | None = None,
    ) -> None:
        self._query = query
        self._broker = broker
        self._config = config if config is not None else DistConfig()
        self._obs = obs
        self._capacity = capacity
        self._plan = PlanConfig.resolve(plan)
        self._elastic = ElasticConfig.resolve(elastic)
        if self._elastic is not None and self._plan is None:
            raise DeployConfigError(
                "elastic rescaling drains and re-splices plan-compiled replica "
                "groups; distribute with plan=True (or a PlanConfig) alongside "
                "elastic="
            )
        self._server = BrokerServer(
            broker,
            self._config.host,
            self._config.port,
            allow_pickle=self._config.allow_pickle,
            transport=self._config.transport,
            transport_options={
                "slots": self._config.shm_slots,
                "slab_bytes": self._config.shm_slab_bytes,
            },
        )
        self._local_client: Any | None = None
        self._stages: list[StageSpec] = []
        self._local_stages: list[StageSpec] = []
        self._workers: list[WorkerProcess] = []
        self._monitor: threading.Thread | None = None
        self._done = threading.Event()
        self._failure: str | None = None
        self._failure_lock = threading.Lock()
        self._final_beats: dict[str, dict] | None = None
        self._scrape_server: Any | None = None
        self._started = False
        self._stopped = False
        self._migrate_lock = threading.Lock()
        self._load_prev: dict[str, tuple[float, float]] = {}
        self._last_migration = time.monotonic()
        self.migrations: list[dict[str, Any]] = []

    # -- introspection ------------------------------------------------------

    @property
    def stages(self) -> list[StageSpec]:
        return list(self._stages)

    @property
    def workers(self) -> list[WorkerProcess]:
        return list(self._workers)

    @property
    def server(self) -> BrokerServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    @property
    def scrape_address(self) -> tuple[str, int] | None:
        if self._scrape_server is None:
            return None
        return self._scrape_server.server_address[:2]

    def status(self) -> dict[str, Any]:
        """Cluster status: stages, per-worker state, restarts, failures."""
        local_dupes = sum(
            reader.duplicates_suppressed
            for stage in self._local_stages
            for reader in stage.readers()
        )
        return {
            "stages": [stage.describe() for stage in self._stages],
            "workers": {worker.name: worker.status() for worker in self._workers},
            "restarts": sum(worker.restarts for worker in self._workers),
            "failure": self._failure,
            "duplicates_suppressed_local": local_dupes,
            "migrations": list(self.migrations),
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Cut stages, start the server and the workers; returns the address."""
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        # With elastic enabled, replication is forced (even at parallelism
        # 1) and starts at the elastic config's starting point, so every
        # replicable keyed stage materializes rescalable in its worker.
        compile_cfg = self._plan
        if self._elastic is not None:
            compile_cfg = dataclasses.replace(
                self._plan, parallelism=self._elastic.start_parallelism
            )
        nodes = compile_plan(
            self._query.build(capacity=self._capacity),
            compile_cfg,
            force_replication=self._elastic is not None,
        )
        self._stages = cut_stages(nodes)
        groups, self._local_stages = assign_stages(
            self._stages, self._config.workers
        )
        address = self._server.start()
        # The terminal stage replays alongside restarted workers: it must
        # never resume from commits and must drop replayed records. Under a
        # non-tcp payload transport it must also read through a loopback
        # client — a direct broker read would surface transport-internal
        # payload refs (shm SlabRefs) instead of arrays.
        reader_broker: Any = self._broker
        if self._config.transport != "tcp":
            from ..net.client import BrokerClient

            self._local_client = BrokerClient(
                *address, allow_pickle=self._config.allow_pickle
            )
            self._local_client.wait_ready(timeout=15.0)
            reader_broker = self._local_client
        for stage in self._local_stages:
            for reader in stage.readers():
                reader.rebind(reader_broker, auto_commit=False, dedup=True)
        self._workers = [
            WorkerProcess(
                f"worker-{i}",
                group,
                address,
                allow_pickle=self._config.allow_pickle,
                heartbeat_interval=self._config.heartbeat_interval,
                obs=self._config.worker_obs,
                plan=self._plan,
                start_method=self._config.start_method,
                elastic=self._elastic,
                produce_batch=self._config.produce_batch,
            )
            for i, group in enumerate(groups)
        ]
        for worker in self._workers:
            worker.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="dist-monitor", daemon=True
        )
        self._monitor.start()
        if self._config.scrape_port is not None:
            self._start_scrape(self._config.scrape_port)
        logger.info(
            "distributed deployment: %d stage(s), %d worker(s) at %s:%d",
            len(self._stages), len(self._workers), *address,
        )
        return address

    def run(self) -> RunReport:
        """Start (if needed), run the terminal stage to completion, report."""
        if not self._started:
            self.start()
        local_nodes = [
            node for stage in self._local_stages for node in stage.nodes
        ]
        if self._obs is not None:
            self._obs.bind(local_nodes)
        started = time.monotonic()
        scheduler = _scheduler_for(self._plan, self._obs)
        controller = None
        manageable = self._elastic is not None and (
            discover_groups(local_nodes)
            or (
                self._elastic.replan is not None
                and discover_chains(local_nodes)
            )
        )
        if manageable:
            scheduler.start(local_nodes)
            controller = ElasticController(
                scheduler, local_nodes, self._elastic,
                plan=self._plan, obs=self._obs,
            )
            replan = self._elastic.replan
            if replan is not None and replan.migrate:
                controller.set_placement_hooks(
                    self.worker_loads, self.migrate_stage
                )
            controller.start()
            try:
                scheduler.join()
            finally:
                controller.stop()
            stats = {ex.node.name: ex.stats for ex in scheduler.executors}
        else:
            stats = scheduler.run(local_nodes)
        wall = time.monotonic() - started
        self.shutdown()
        if self._failure is not None:
            raise DistError(self._failure)
        report = RunReport(
            query_name=self._query.name,
            operator_stats=stats,
            sinks={
                node.name: node.sink
                for node in local_nodes
                if node.kind == "sink"
            },
            wall_seconds=wall,
        )
        report.extra["dist"] = self.status()
        if controller is not None:
            report.extra["elastic"] = controller.summary()
        if self._plan is not None:
            report.extra["plan"] = self._plan.describe()
        if self._obs is not None:
            report.extra["metrics"] = self._obs.snapshot()
        worker_metrics = self.worker_metrics()
        if worker_metrics:
            report.extra["worker_metrics"] = worker_metrics
        return report

    def shutdown(self) -> None:
        """Join/terminate workers, capture final heartbeats, stop serving."""
        if self._stopped:
            return
        self._stopped = True
        self._done.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for worker in self._workers:
            worker.join(self._config.worker_join_timeout)
            if worker.alive():
                logger.warning("terminating straggler %s", worker.name)
                worker.terminate()
            elif worker.exitcode == 0:
                worker.finished = True
        self._final_beats = self._server.workers()
        if self._scrape_server is not None:
            self._scrape_server.shutdown()
            self._scrape_server.server_close()
        if self._local_client is not None:
            self._local_client.close()
        if self._server.stop():
            logger.warning("broker server stop() hit its drain deadline")

    def stop(self) -> None:
        """Abort: terminate workers immediately and stop serving."""
        if self._stopped:
            return
        self._stopped = True
        self._done.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for worker in self._workers:
            worker.terminate(timeout=1.0)
        self._final_beats = self._server.workers()
        if self._scrape_server is not None:
            self._scrape_server.shutdown()
            self._scrape_server.server_close()
        if self._local_client is not None:
            self._local_client.close()
        self._server.stop()

    # -- supervision ----------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._done.wait(0.1):
            for worker in self._workers:
                if worker.finished or worker.alive():
                    continue
                code = worker.exitcode
                if code is None:
                    continue  # between incarnations
                if code == 0:
                    worker.finished = True
                elif worker.restarts < self._config.restart_limit:
                    logger.warning(
                        "worker %s died (exit %s); restarting (attempt %d/%d)",
                        worker.name, code,
                        worker.restarts + 1, self._config.restart_limit,
                    )
                    worker.restart()
                else:
                    self._fail(
                        f"worker {worker.name} exited with code {code} after "
                        f"{worker.restarts} restart(s)"
                    )
            self._check_placement()

    def _check_placement(self) -> None:
        """Autonomous placement pass: move a stage off an overloaded worker.

        Active only when the deployment's elastic config enables replan
        migration. Heartbeat busy deltas feed the same
        :func:`~repro.elastic.replan.plan_migration` rule the cost-model
        policy uses, throttled by the replan cooldown.
        """
        replan = self._elastic.replan if self._elastic is not None else None
        if replan is None or not replan.migrate or self._failure is not None:
            return
        if time.monotonic() - self._last_migration < max(replan.cooldown_s, 1.0):
            return
        loads = self.worker_loads()
        action = plan_migration(loads, replan)
        if action is not None:
            self.migrate_stage(action.stage, action.to_worker)

    def _fail(self, reason: str) -> None:
        """Record the first failure and unwedge every blocked reader."""
        with self._failure_lock:
            if self._failure is not None:
                return
            self._failure = reason
        logger.error("distributed deployment failed: %s", reason)
        # Readers block waiting for records that will never come; push the
        # end-of-stream sentinel into every stage input so the pipeline
        # drains and run() can surface the failure instead of hanging.
        producer = Producer(self._broker)
        topics = {
            topic for stage in self._stages for topic in stage.input_topics
        }
        for topic in sorted(topics):
            for partition in range(producer.partitions_of(topic)):
                producer.send(topic, EOS_SENTINEL, partition=partition)

    # -- stage migration -------------------------------------------------------

    def worker_loads(self) -> dict[str, dict[str, Any]]:
        """Per-worker load summaries for placement decisions.

        ``busy_fraction`` is the delta of the worker's aggregated
        ``spe_busy_seconds_total`` over wall time since the previous call
        (0.0 on the first sight of a worker), ``stages`` its current
        assignment. This is the mapping
        :class:`~repro.elastic.actions.WorkloadView` carries in
        ``workers`` and :func:`~repro.elastic.replan.plan_migration`
        consumes.
        """
        now = time.monotonic()
        metrics = self.worker_metrics()
        out: dict[str, dict[str, Any]] = {}
        for worker in self._workers:
            if worker.finished:
                continue
            busy_total = 0.0
            snapshot = metrics.get(worker.name)
            if snapshot is not None:
                busy_total = sum(
                    s.value
                    for s in snapshot.samples
                    if s.name == "spe_busy_seconds_total"
                )
            prev_total, prev_t = self._load_prev.get(worker.name, (busy_total, now))
            dt = now - prev_t
            fraction = (
                max(0.0, busy_total - prev_total) / dt if dt > 1e-9 else 0.0
            )
            self._load_prev[worker.name] = (busy_total, now)
            out[worker.name] = {
                "busy_fraction": min(1.0, fraction),
                "stages": list(worker.stage_names),
            }
        return out

    def migrate_stage(self, stage_name: str, to_worker: str) -> bool:
        """Move one pipeline stage onto another worker while the query runs.

        The stage spec is re-assigned between the coordinator's pristine
        worker groups, the source is stopped first (so the stage never
        runs twice concurrently), then both workers are re-forked with
        their new assignments. Each replacement replays its input topics
        from the earliest offset and downstream content-key dedup absorbs
        the replay — the same mechanism that makes crash restarts
        invisible — so the final output is unchanged by a migration.
        Returns True when the stage actually moved.
        """
        with self._migrate_lock:
            source = next(
                (
                    w
                    for w in self._workers
                    if stage_name in w.stage_names and not w.finished
                ),
                None,
            )
            dest = next(
                (w for w in self._workers if w.name == to_worker), None
            )
            if (
                source is None
                or dest is None
                or source is dest
                or dest.finished
            ):
                return False
            spec = next(s for s in source.stages if s.name == stage_name)
            started = time.monotonic()
            # stop the source before the destination picks the stage up
            source.terminate()
            source.set_stages([s for s in source.stages if s.name != stage_name])
            dest.set_stages(dest.stages + [spec])
            if source.stages:
                source.refork()
            else:
                source.finished = True
            dest.refork()
            self._last_migration = time.monotonic()
            self._load_prev.pop(source.name, None)
            self._load_prev.pop(dest.name, None)
            event = {
                "stage": stage_name,
                "from_worker": source.name,
                "to_worker": dest.name,
                "duration_s": round(time.monotonic() - started, 6),
                "wall_time": time.time(),
            }
            self.migrations.append(event)
            logger.info(
                "migrated stage %s: %s -> %s in %.3fs",
                stage_name, source.name, dest.name, event["duration_s"],
            )
            return True

    # -- metrics aggregation ---------------------------------------------------

    def worker_beats(self) -> dict[str, dict]:
        """Latest heartbeat per worker (final ones after shutdown)."""
        if self._final_beats is not None:
            return dict(self._final_beats)
        return self._server.workers()

    def worker_metrics(self) -> dict[str, MetricsSnapshot]:
        """Per-worker metrics snapshots parsed from the heartbeats."""
        out: dict[str, MetricsSnapshot] = {}
        for name, beat in self.worker_beats().items():
            payload = beat.get("metrics")
            if payload:
                out[name] = snapshot_from_dict(payload)
        return out

    def cluster_snapshot(self) -> MetricsSnapshot:
        """One snapshot over the whole deployment, samples labeled by worker."""
        samples: list[Sample] = []

        def tagged(snapshot: MetricsSnapshot, worker: str) -> None:
            for s in snapshot.samples:
                labels = tuple(sorted(s.labels + (("worker", worker),)))
                samples.append(Sample(s.name, labels, s.value, s.kind))

        if self._obs is not None:
            tagged(self._obs.snapshot(), "coordinator")
        for name, snapshot in self.worker_metrics().items():
            tagged(snapshot, name)
        return MetricsSnapshot(wall_time=time.time(), samples=samples)

    def _start_scrape(self, port: int) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        coordinator = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?")[0] not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                body = to_prometheus(coordinator.cluster_snapshot()).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:  # silence per-request spam
                pass

        self._scrape_server = ThreadingHTTPServer((self._config.host, port), Handler)
        threading.Thread(
            target=self._scrape_server.serve_forever,
            name="dist-scrape",
            daemon=True,
        ).start()


def run_distributed(
    query: Query,
    broker: Broker,
    config: DistConfig | None = None,
    obs: Any | None = None,
    capacity: int | None = None,
    plan: Any | None = None,
    elastic: Any | None = None,
) -> RunReport:
    """Deploy ``query`` distributed and run it to completion; blocking."""
    return DistCoordinator(
        query, broker, config, obs=obs, capacity=capacity, plan=plan,
        elastic=elastic,
    ).run()
