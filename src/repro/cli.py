"""Command-line interface.

``python -m repro <command>`` runs the library's main flows without
writing any code:

* ``quickstart`` — the thermal use case on a small simulated build;
* ``monitor``    — live build with automatic early termination;
* ``replay``     — as-fast-as-possible reprocessing of a historic build;
* ``streaks``    — the recoater-streak use case;
* ``forecast``   — streaming thermal state estimation with predictive QoS;
* ``reconstruct``— laser power/speed reconstruction from melt-pool frames;
* ``figures``    — compact re-runs of the paper's Figure 5/6/7 sweeps;
* ``recover``    — checkpointed run with crash simulation and recovery;
* ``top``        — live per-operator metrics table while a build runs;
* ``broker``     — serve an in-process broker over TCP for remote clients;
* ``worker``     — run pipeline stages against a remote broker;
* ``serve``      — resident multi-tenant fleet control plane (HTTP API).

Every verb accepts ``--metrics-out FILE`` to enable the observability
layer and append JSON-lines metric snapshots (one line per scrape; the
final scrape is always written). The resident verbs (``broker``,
``worker``, ``serve``) shut down cleanly on SIGINT/SIGTERM: drain, then
exit 0 — no traceback, so supervisors see an orderly stop.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .am import (
    BuildDataset,
    ControlHandle,
    OTImageRenderer,
    PBFLBMachine,
    make_job,
)
from .core import (
    DeployConfig,
    LiveLayerFeed,
    RecoveryConfig,
    Strata,
    UseCaseConfig,
    build_streak_use_case,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from .elastic import ElasticConfig
from .obs import ObsContext, to_json_line
from .spe import CallbackSink, PlanConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--image-px", type=int, default=500,
                        help="OT sensor resolution (paper: 2000)")
    parser.add_argument("--layers", type=int, default=20,
                        help="layers to process")
    parser.add_argument("--cell-edge", type=int, default=5,
                        help="analysis cell edge, px")
    parser.add_argument("--window", type=int, default=10,
                        help="cross-layer window L")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--defect-rate", type=float, default=0.55,
                        help="seeded defects per stack per specimen")
    parser.add_argument("--explain", action="store_true",
                        help="print the compiled query plan before running")
    parser.add_argument("--no-optimize", action="store_true",
                        help="disable the plan compiler entirely")
    parser.add_argument("--no-fusion", action="store_true",
                        help="keep operators unfused (one thread per operator)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="tuples per queue entry on threaded edges (1 = unbatched)")
    parser.add_argument("--no-vectorize", action="store_true",
                        help="run fused chains tuple-at-a-time instead of "
                             "array-at-a-time columnar kernels")
    parser.add_argument("--parallelism", type=int, default=1,
                        help="replicate keyed stages N-ways behind a hash router")
    parser.add_argument("--elastic", action="store_true",
                        help="rescale keyed replica groups at runtime from "
                             "load and QoS signals")
    parser.add_argument("--min-parallelism", type=int, default=1,
                        help="elastic lower bound on replicas per group")
    parser.add_argument("--max-parallelism", type=int, default=4,
                        help="elastic upper bound on replicas per group")
    parser.add_argument("--replan", action="store_true",
                        help="let the elastic controller rewrite the running "
                             "plan (fuse/unfuse, mode flips) from load signals; "
                             "implies --elastic")
    parser.add_argument("--no-replan", action="store_true",
                        help="force re-planning off even when --elastic is set "
                             "or the config file enables it")
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="load the full DeployConfig from a TOML file "
                             "(overrides the individual plan/elastic flags)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="enable observability and append JSONL metric "
                             "snapshots to FILE")


def _obs_of(args: argparse.Namespace, force: bool = False) -> ObsContext | None:
    """An observability context when the verb asked for metrics."""
    if force or getattr(args, "metrics_out", None):
        return ObsContext()
    return None


def _dump_metrics(args: argparse.Namespace, obs: ObsContext | None) -> None:
    """Append one JSONL snapshot to ``--metrics-out`` (final scrape)."""
    if obs is None or not getattr(args, "metrics_out", None):
        return
    with open(args.metrics_out, "a", encoding="utf-8") as fh:
        fh.write(to_json_line(obs.snapshot()) + "\n")


def _plan_of(args: argparse.Namespace) -> PlanConfig | None:
    """Plan compiler configuration from the common CLI knobs."""
    if args.no_optimize:
        return None
    return PlanConfig(
        fusion=not args.no_fusion,
        edge_batch_size=args.batch_size,
        parallelism=args.parallelism,
        vectorize=not args.no_vectorize,
    )


def _elastic_of(args: argparse.Namespace) -> ElasticConfig | None:
    """Elastic rescaling configuration from the common CLI knobs."""
    replan = getattr(args, "replan", False) and not getattr(args, "no_replan", False)
    if not (getattr(args, "elastic", False) or replan):
        return None
    return ElasticConfig(
        min_parallelism=args.min_parallelism,
        max_parallelism=args.max_parallelism,
        replan=replan or None,
    )


def _deploy_of(args: argparse.Namespace) -> DeployConfig:
    """One DeployConfig per verb: ``--config file.toml`` or the flags.

    A config file is the whole deployment description
    (:meth:`DeployConfig.from_dict` — unknown keys are rejected); without
    one, the individual plan/elastic flags are assembled into the
    equivalent config.
    """
    if getattr(args, "config", None):
        import tomllib

        with open(args.config, "rb") as fh:
            data = tomllib.load(fh)
        if getattr(args, "no_replan", False) and isinstance(data.get("elastic"), dict):
            data["elastic"].pop("replan", None)
        return DeployConfig.from_dict(data)
    return DeployConfig(plan=_plan_of(args), elastic=_elastic_of(args))


def _connector_mode_of(deploy_cfg: DeployConfig) -> str:
    """A ``[dist]`` table needs the pipeline built on pub/sub connectors
    so the stage cutter has edges to cut at."""
    return "pubsub" if deploy_cfg.dist is not None else "direct"


def _maybe_explain(args: argparse.Namespace, strata: Strata, config) -> None:
    if args.explain:
        print(strata.explain(optimize=config))


def _prepare(args: argparse.Namespace, streak_rate: float = 0.0):
    job = make_job(
        "cli-job", seed=args.seed, defect_rate_per_stack=args.defect_rate,
        streak_rate_per_100_layers=streak_rate,
    )
    renderer = OTImageRenderer(image_px=args.image_px, seed=args.seed)
    records = list(BuildDataset(job, renderer).records(0, args.layers))
    reference = make_job("cli-ref", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 3)
    ]
    return job, renderer, records, reference_images


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Run the thermal use case over a batch replay and summarize."""
    job, _, records, reference_images = _prepare(args)
    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=args.cell_edge,
        window_layers=args.window,
    )
    obs = _obs_of(args)
    deploy_cfg = _deploy_of(args)
    strata = Strata(
        engine_mode="threaded",
        connector_mode=_connector_mode_of(deploy_cfg),
        obs=obs,
    )
    calibrate_job(
        strata.kv, job.job_id, reference_images, args.cell_edge,
        regions=specimen_regions_px(job.specimens, args.image_px),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    _maybe_explain(args, strata, deploy_cfg)
    report = strata.deploy(deploy_cfg)
    _dump_metrics(args, obs)
    flagged = [t for t in pipeline.sink.results if t.payload["num_clusters"] > 0]
    latency = report.latency_summary()
    print(f"layers={args.layers} reports={len(pipeline.sink.results)} "
          f"flagged={len(flagged)} cells={pipeline.cells_evaluated}")
    print(f"latency: median {latency.median * 1e3:.1f} ms, "
          f"max {latency.maximum * 1e3:.1f} ms")
    for t in flagged[-3:]:
        print(f"  layer {t.layer} specimen {t.specimen}: "
              f"{t.payload['num_clusters']} cluster(s), "
              f"{t.payload['num_events']} events")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Run a live build with an automatic termination policy."""
    job, renderer, _, reference_images = _prepare(args)
    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=args.cell_edge,
        window_layers=args.window,
    )
    obs = _obs_of(args)
    strata = Strata(engine_mode="threaded", obs=obs)
    calibrate_job(
        strata.kv, job.job_id, reference_images, args.cell_edge,
        regions=specimen_regions_px(job.specimens, args.image_px),
    )
    control = ControlHandle()
    feed = LiveLayerFeed()

    def policy(t) -> None:
        for cluster in t.payload["clusters"]:
            if cluster["volume_mm3"] >= args.volume_budget:
                control.request_termination(
                    f"{cluster['volume_mm3']:.1f} mm^3 in {t.specimen} "
                    f"at layer {t.layer}"
                )

    build_use_case(
        feed.records(), feed.records(), config, strata=strata,
        sink=CallbackSink("policy", policy),
    )
    deploy_cfg = _deploy_of(args)
    _maybe_explain(args, strata, deploy_cfg)
    strata.start(deploy_cfg)
    machine = PBFLBMachine(
        renderer=renderer, time_scale=max(args.time_scale, 1e-6)
    )
    outcome = machine.run(
        job, realtime=args.time_scale > 0, control=control,
        on_layer=feed.push, max_layers=args.layers,
    )
    feed.close()
    strata.wait(timeout=600)
    _dump_metrics(args, obs)
    if outcome.terminated_early:
        print(f"TERMINATED after layer {outcome.layers_completed - 1}: {control.reason}")
    else:
        print(f"completed {outcome.layers_completed}/{outcome.total_layers} layers "
              f"within the {args.volume_budget} mm^3 budget")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Reprocess a historic build as fast as possible."""
    import time

    job, _, records, reference_images = _prepare(args)
    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=args.cell_edge,
        window_layers=args.window,
    )
    obs = _obs_of(args)
    deploy_cfg = _deploy_of(args)
    strata = Strata(
        engine_mode="threaded",
        connector_mode=_connector_mode_of(deploy_cfg),
        obs=obs,
    )
    calibrate_job(
        strata.kv, job.job_id, reference_images, args.cell_edge,
        regions=specimen_regions_px(job.specimens, args.image_px),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    _maybe_explain(args, strata, deploy_cfg)
    started = time.monotonic()
    strata.deploy(deploy_cfg)
    wall = time.monotonic() - started
    _dump_metrics(args, obs)
    print(f"replayed {len(records)} layers in {wall:.2f}s "
          f"({len(records) / wall:.1f} img/s, "
          f"{pipeline.cells_evaluated / wall / 1e3:.1f} kcells/s)")
    return 0


def cmd_streaks(args: argparse.Namespace) -> int:
    """Run the recoater-streak use case and list found streaks."""
    job, renderer, records, _ = _prepare(args, streak_rate=args.streak_rate)
    obs = _obs_of(args)
    pipeline = build_streak_use_case(
        iter(records), iter(records), image_px=args.image_px,
        window_layers=args.window, strata=Strata(engine_mode="threaded", obs=obs),
    )
    deploy_cfg = _deploy_of(args)
    _maybe_explain(args, pipeline.strata, deploy_cfg)
    pipeline.strata.deploy(deploy_cfg)
    _dump_metrics(args, obs)
    reported: dict[int, dict] = {}
    for t in pipeline.sink.results:
        for streak in t.payload["streaks"]:
            reported.setdefault(round(streak["y_mm"]), streak)
    seeded = [s for s in job.streaks if s.first_layer < args.layers]
    print(f"seeded {len(seeded)} streak(s); reported {len(reported)}")
    for streak in reported.values():
        print(f"  y={streak['y_mm']:.1f} mm layers "
              f"{streak['first_layer']}-{streak['last_layer']}")
    return 0


def _thermal_build_of(args: argparse.Namespace):
    from .am.scanpath import ThermalBuildConfig, synthesize_thermal_build

    spike = None
    if args.spike_layer is not None:
        spike = (args.spike_layer, min(args.spike_layer + 1, args.layers - 1))
    config = ThermalBuildConfig(
        job_id="cli-thermal-build",
        layers=args.layers,
        spike_layers=spike,
        dropout_rate=args.dropout_rate,
        seed=args.seed,
    )
    return synthesize_thermal_build(config)


def cmd_forecast(args: argparse.Namespace) -> int:
    """Stream thermal frames through the Kalman estimator; print alerts."""
    from .obs.watchdog import QoSWatchdog
    from .thermal import (
        ThermalPipelineConfig,
        build_forecast_pipeline,
        calibrate_thermal_job,
        resolve_overheat_threshold,
    )

    build = _thermal_build_of(args)
    pipe_cfg = ThermalPipelineConfig(window_layers=args.window)
    threshold = resolve_overheat_threshold(build, pipe_cfg)
    pipe_cfg.overheat_threshold = threshold
    obs = _obs_of(args)
    deploy_cfg = _deploy_of(args)
    watchdog = QoSWatchdog()
    strata = Strata(
        engine_mode="threaded",
        connector_mode=_connector_mode_of(deploy_cfg),
        obs=obs,
    )
    pipeline = build_forecast_pipeline(
        iter(build.records), iter(build.records), build.config, pipe_cfg,
        strata=strata, watchdog=watchdog,
    )
    calibrate_thermal_job(strata.kv, build, laser=False)
    _maybe_explain(args, strata, deploy_cfg)
    strata.deploy(deploy_cfg)
    _dump_metrics(args, obs)
    results = pipeline.sink.results
    realized = [t.payload["realized_rmse"] for t in results
                if t.payload["realized_rmse"] >= 0]
    mean_rmse = sum(realized) / len(realized) if realized else float("nan")
    print(f"layers={args.layers} forecasts={len(results)} "
          f"frames={pipeline.frames_processed} "
          f"overheat_threshold={threshold:.1f}")
    print(f"realized forecast RMSE vs measurement: {mean_rmse:.2f}")
    alerts = watchdog.predictive_alerts()
    print(f"predictive alerts: {len(alerts)}")
    for alert in alerts:
        print(f"  layer {alert.layer} {alert.specimen}: forecast "
              f"{alert.predicted_value:.1f} > {alert.threshold:.1f} "
              f"({alert.lead_time_s:.1f}s lead)")
    return 0


def cmd_reconstruct(args: argparse.Namespace) -> int:
    """Recover laser power/speed per layer from melt-pool frames."""
    from .thermal import (
        ThermalPipelineConfig,
        build_reconstruction_pipeline,
        calibrate_thermal_job,
    )

    build = _thermal_build_of(args)
    obs = _obs_of(args)
    deploy_cfg = _deploy_of(args)
    strata = Strata(
        engine_mode="threaded",
        connector_mode=_connector_mode_of(deploy_cfg),
        obs=obs,
    )
    pipeline = build_reconstruction_pipeline(
        iter(build.records), build.config,
        ThermalPipelineConfig(window_layers=args.window), strata=strata,
    )
    calibrate_thermal_job(strata.kv, build)
    _maybe_explain(args, strata, deploy_cfg)
    strata.deploy(deploy_cfg)
    _dump_metrics(args, obs)
    results = sorted(pipeline.sink.results, key=lambda t: t.layer)
    actual = {r.layer: (r.actual_power_w, r.actual_speed_mm_s)
              for r in build.records}
    print(f"layers={args.layers} reconstructions={len(results)}")
    print(f"{'layer':>5} {'P_hat':>8} {'P_true':>8} {'v_hat':>8} {'v_true':>8}")
    errors = []
    for t in results:
        power, speed = actual[t.layer]
        errors.append(abs(t.payload["power_w_hat"] - power) / power)
        if t.layer % max(1, args.layers // 10) == 0:
            print(f"{t.layer:>5} {t.payload['power_w_hat']:>8.1f} {power:>8.1f} "
                  f"{t.payload['speed_mm_s_hat']:>8.1f} {speed:>8.1f}")
    mean_err = sum(errors) / len(errors) if errors else float("nan")
    print(f"mean relative power error: {mean_err * 100:.2f}%")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Compact re-runs of the Figure 5/6/7 sweeps."""
    from .bench import (
        BOXPLOT_HEADERS,
        EvaluationWorkload,
        boxplot_row,
        format_table,
        run_latency_experiment,
        run_throughput_experiment,
    )

    deploy_cfg = _deploy_of(args)
    workload = EvaluationWorkload(image_px=args.image_px, layers=args.layers, seed=args.seed)
    print("Figure 5 (latency vs cell size):")
    rows = []
    for edge in (10, 5, 2):
        config = UseCaseConfig(
            image_px=args.image_px, cell_edge_px=edge, window_layers=args.window
        )
        run = run_latency_experiment(workload, config, optimize=deploy_cfg)
        rows.append(boxplot_row(f"{edge}px", run.summary))
    print(format_table(BOXPLOT_HEADERS, rows))

    print("\nFigure 6 (latency vs window L):")
    rows = []
    for window in (5, 20, 80):
        config = UseCaseConfig(
            image_px=args.image_px, cell_edge_px=5, window_layers=window
        )
        run = run_latency_experiment(workload, config, optimize=deploy_cfg)
        rows.append(boxplot_row(f"L={window}", run.summary))
    print(format_table(BOXPLOT_HEADERS, rows))

    print("\nFigure 7 (throughput vs offered rate):")
    rows = []
    for rate in (8, 32, 128):
        config = UseCaseConfig(image_px=args.image_px, cell_edge_px=5, window_layers=10)
        obs = _obs_of(args)
        run = run_throughput_experiment(
            workload, config, offered_images_s=float(rate),
            total_images=max(24, rate * 2), optimize=deploy_cfg, obs=obs,
        )
        _dump_metrics(args, obs)
        rows.append([rate, round(run.achieved_images_s, 1),
                     round(run.kcells_per_second, 1),
                     round(run.mean_latency_s * 1e3, 1)])
    print(format_table(["offered_img_s", "achieved", "kcells_s", "mean_lat_ms"], rows))
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Checkpointed monitoring run that survives crashes across processes.

    State (checkpoints and thresholds) lives in an on-disk LSM store under
    ``--state-dir``. With ``--crash-after N`` the process hard-stops once N
    results were delivered after at least one committed checkpoint (exit
    code 3). Re-running without the flag recovers from the newest
    checkpoint, replays from the checkpointed source offsets, and
    completes the build; duplicate results are suppressed at the sink.
    """
    import time

    from .kvstore.lsm import LSMStore
    from .recovery import CheckpointCoordinator, RecoveryCoordinator

    job, _, records, reference_images = _prepare(args)
    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=args.cell_edge,
        window_layers=args.window,
    )
    store = LSMStore(args.state_dir)
    obs = _obs_of(args)
    try:
        strata = Strata(engine_mode="threaded", store=store, obs=obs)
        calibrate_job(
            strata.kv, job.job_id, reference_images, args.cell_edge,
            regions=specimen_regions_px(job.specimens, args.image_px),
        )

        def paced(recs):
            for record in recs:
                if args.pace > 0:
                    time.sleep(args.pace)
                yield record

        pipeline = build_use_case(
            paced(records), paced(records), config, strata=strata,
            checkpointable=True,
        )
        coordinator = CheckpointCoordinator(
            store, interval=args.checkpoint_interval, retain=args.retain
        )
        recovery = RecoveryCoordinator(store)
        from dataclasses import replace as _replace

        deploy_cfg = _replace(
            _deploy_of(args),
            recovery=RecoveryConfig(checkpointer=coordinator, recover_from=recovery),
        )
        _maybe_explain(args, strata, deploy_cfg)
        crashed = False
        if args.crash_after is None:
            strata.start(deploy_cfg)
            coordinator.start_periodic()
            strata.wait(timeout=600)
        else:
            strata.start(deploy_cfg)
            deadline = time.monotonic() + 600
            while time.monotonic() < deadline:
                try:
                    coordinator.trigger(timeout=10.0)
                except Exception:
                    break  # sources drained: the build finished first
                if (coordinator.completed_epochs
                        and len(pipeline.sink.results) >= args.crash_after):
                    strata.stop()
                    crashed = True
                    break
                time.sleep(0.01)
            if not crashed:
                strata.wait(timeout=600)
        coordinator.stop()
        _dump_metrics(args, obs)

        if recovery.report is not None:
            print(f"recovered from checkpoint epoch {recovery.report.epoch} "
                  f"({len(recovery.report.nodes_restored)} operators, "
                  f"{len(recovery.report.sources_restored)} sources)")
        else:
            print("cold start (no checkpoint found)")
        results = pipeline.sink.results
        duplicates = getattr(pipeline.sink, "duplicates", 0)
        epochs = list(coordinator.completed_epochs)
        if crashed:
            print(f"CRASHED (simulated) after {len(results)} results, "
                  f"checkpoints committed: {epochs}")
            print(f"re-run without --crash-after to recover from "
                  f"{args.state_dir}")
            return 3
        flagged = [t for t in results if t.payload["num_clusters"] > 0]
        print(f"completed: reports={len(results)} flagged={len(flagged)} "
              f"checkpoints={epochs} replay_duplicates_suppressed={duplicates}")
        return 0
    finally:
        store.close()


def _render_top(snap) -> str:
    """Render one metrics snapshot as a per-operator / per-queue table."""
    ops: dict[str, dict[str, float]] = {}
    for s in snap.samples:
        op = s.label("operator")
        if op is None:
            continue
        row = ops.setdefault(op, {})
        if s.name in ("spe_tuples_in_total", "spe_tuples_out_total",
                      "spe_busy_seconds_total", "spe_block_fill_ratio"):
            row[s.name] = s.value
        if s.name == "spe_operator_mode":
            row["mode"] = s.label("mode") or "scalar"
        if s.name == "elastic_last_adaptation":
            row["adapt"] = s.label("action") or ""
        if s.label("fused_into") is not None:
            row["fused"] = 1.0
    lines = [
        f"{'OPERATOR':<34} {'IN':>9} {'OUT':>9} {'BUSY_S':>8} {'MODE':<12} "
        f"{'ADAPT':<12}"
    ]
    for op in sorted(ops):
        row = ops[op]
        name = ("  " + op) if row.get("fused") else op
        mode = row.get("mode", "") if not row.get("fused") else ""
        fill = row.get("spe_block_fill_ratio")
        if mode == "vectorized" and fill is not None:
            mode = f"{mode} {fill * 100:.0f}%"
        adapt = str(row.get("adapt", "")) if not row.get("fused") else ""
        lines.append(
            f"{name:<34} {int(row.get('spe_tuples_in_total', 0)):>9} "
            f"{int(row.get('spe_tuples_out_total', 0)):>9} "
            f"{row.get('spe_busy_seconds_total', 0.0):>8.2f} {mode:<12} "
            f"{adapt:<12}"
        )
    queues: dict[str, dict[str, float]] = {}
    for s in snap.samples:
        stream = s.label("stream")
        if stream is not None:
            queues.setdefault(stream, {})[s.name] = s.value
    if queues:
        lines.append("")
        lines.append(f"{'QUEUE':<34} {'DEPTH':>7} {'HWM':>7} {'CAP':>7}")
        for stream in sorted(queues):
            row = queues[stream]
            lines.append(
                f"{stream:<34} {int(row.get('spe_queue_depth', 0)):>7} "
                f"{int(row.get('spe_queue_high_watermark', 0)):>7} "
                f"{int(row.get('spe_queue_capacity', 0)):>7}"
            )
    lag = snap.value("strata_watermark_lag")
    violations = snap.value("strata_qos_violations_total")
    tail = []
    if lag is not None:
        tail.append(f"watermark lag {lag:.2f}s")
    if violations is not None:
        tail.append(f"qos violations {int(violations)}")
    for s in snap.samples:
        if s.name == "elastic_parallelism":
            group = s.label("group") or "?"
            tail.append(f"elastic {group} x{int(s.value)}")
    if tail:
        lines.append("")
        lines.append("  ".join(tail))
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Run the thermal use case and print a live per-operator table."""
    import time

    job, _, records, reference_images = _prepare(args)
    config = UseCaseConfig(
        image_px=args.image_px, cell_edge_px=args.cell_edge,
        window_layers=args.window,
    )
    obs = _obs_of(args, force=True)
    strata = Strata(engine_mode="threaded", obs=obs)
    calibrate_job(
        strata.kv, job.job_id, reference_images, args.cell_edge,
        regions=specimen_regions_px(job.specimens, args.image_px),
    )

    def paced(recs):
        for record in recs:
            if args.pace > 0:
                time.sleep(args.pace)
            yield record

    pipeline = build_use_case(
        paced(records), paced(records), config, strata=strata
    )
    deploy_cfg = _deploy_of(args)
    _maybe_explain(args, strata, deploy_cfg)
    strata.start(deploy_cfg)
    scrapes = 0
    while strata.running():
        time.sleep(args.refresh)
        snap = obs.snapshot()
        scrapes += 1
        print(f"-- scrape {scrapes} --")
        print(_render_top(snap))
        if args.metrics_out:
            with open(args.metrics_out, "a", encoding="utf-8") as fh:
                fh.write(to_json_line(snap) + "\n")
    strata.wait(timeout=600)
    snap = obs.snapshot()
    print("-- final --")
    print(_render_top(snap))
    if args.metrics_out:
        with open(args.metrics_out, "a", encoding="utf-8") as fh:
            fh.write(to_json_line(snap) + "\n")
    print(f"reports={len(pipeline.sink.results)}")
    return 0


def _install_signal_handlers(stop) -> None:
    """Route SIGINT/SIGTERM into ``stop`` (a ``threading.Event``).

    Resident verbs wait on the event instead of relying on
    ``KeyboardInterrupt`` — SIGTERM (the supervisor's stop signal) never
    raises one, and both signals should mean the same orderly drain.
    """
    import signal

    def handler(signum: int, frame) -> None:
        stop.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def _parse_address(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"broker address must be HOST:PORT, got {value!r}"
        )
    return (host or "127.0.0.1", int(port))


def cmd_broker(args: argparse.Namespace) -> int:
    """Serve a fresh broker over TCP until interrupted."""
    import threading

    from .net import BrokerServer
    from .pubsub import Broker

    server = BrokerServer(
        Broker(),
        host=args.host,
        port=args.port,
        allow_pickle=args.allow_pickle,
        transport=args.transport,
        transport_options={
            "slots": args.shm_slots,
            "slab_bytes": args.shm_slab_mb * 1024 * 1024,
        },
    )
    stop = threading.Event()
    _install_signal_handlers(stop)
    host, port = server.start()
    print(f"broker listening on {host}:{port} (SIGINT/SIGTERM to stop)")
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
        pass
    finally:
        server.stop()
    print("broker stopped")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Rebuild a pipeline from source and run chosen stages remotely."""
    import signal

    from .dist import run_worker_from_ref
    from .net import NetError
    from .serde import SerdeError

    if not args.list_stages and not args.stage:
        print("error: --stage is required (or use --list-stages)", file=sys.stderr)
        return 2

    # the worker blocks inside run_worker_from_ref; turn SIGTERM into the
    # same stack unwind SIGINT produces, so both drain through its
    # finally-blocks (sockets, engine) and exit 0
    def _graceful(signum: int, frame) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        return run_worker_from_ref(
            args.pipeline,
            args.stage or [],
            args.broker,
            worker_name=args.name,
            allow_pickle=args.allow_pickle,
            list_stages=args.list_stages,
        )
    except KeyboardInterrupt:
        print("worker interrupted; shut down cleanly", file=sys.stderr)
        return 0
    except (NetError, SerdeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant fleet control plane until signalled."""
    import threading
    from dataclasses import replace

    from . import __version__
    from .fleet import FleetConfig, FleetHTTPServer, FleetService

    fleet_cfg = None
    if args.config:
        import tomllib

        with open(args.config, "rb") as fh:
            data = tomllib.load(fh)
        fleet_cfg = DeployConfig.from_dict(data).fleet
    if fleet_cfg is None:
        fleet_cfg = FleetConfig()
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if overrides:
        fleet_cfg = replace(fleet_cfg, **overrides)
    store = None
    if args.state_dir:
        from .kvstore.lsm import LSMStore

        store = LSMStore(args.state_dir)
    try:
        service = FleetService(fleet_cfg, store=store, version=__version__)
        server = FleetHTTPServer(service)
        stop = threading.Event()
        _install_signal_handlers(stop)
        server.start()
        print(f"fleet control plane on {server.url} (SIGINT/SIGTERM to stop)",
              flush=True)
        try:
            stop.wait()
        except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
            pass
        print("draining fleet ...", flush=True)
        server.stop(drain_timeout=args.drain_timeout)
    finally:
        if store is not None:
            store.close()
    print("fleet stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (one subcommand per flow)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="STRATA reproduction: data-driven PBF-LB monitoring",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sp = subparsers.add_parser("quickstart", help="thermal use case, batch replay")
    _add_common(sp)
    sp.set_defaults(fn=cmd_quickstart)

    sp = subparsers.add_parser("monitor", help="live build with early termination")
    _add_common(sp)
    sp.add_argument("--volume-budget", type=float, default=2.0,
                    help="terminate when a cluster exceeds this volume, mm^3")
    sp.add_argument("--time-scale", type=float, default=0.01,
                    help="real-time compression factor (0 disables pacing)")
    sp.set_defaults(fn=cmd_monitor)

    sp = subparsers.add_parser("replay", help="reprocess a historic build")
    _add_common(sp)
    sp.set_defaults(fn=cmd_replay)

    sp = subparsers.add_parser("streaks", help="recoater-streak use case")
    _add_common(sp)
    sp.add_argument("--streak-rate", type=float, default=12.0,
                    help="seeded streaks per 100 layers")
    sp.set_defaults(fn=cmd_streaks)

    sp = subparsers.add_parser(
        "forecast", help="streaming thermal state estimation + predictive QoS"
    )
    _add_common(sp)
    sp.add_argument("--spike-layer", type=int, default=None,
                    help="seed an overheat spike starting at this layer")
    sp.add_argument("--dropout-rate", type=float, default=0.0,
                    help="fraction of thermal cells dropped (NaN) per layer")
    sp.set_defaults(fn=cmd_forecast)

    sp = subparsers.add_parser(
        "reconstruct", help="laser power/speed reconstruction from melt pools"
    )
    _add_common(sp)
    sp.add_argument("--spike-layer", type=int, default=None,
                    help="seed an overheat spike starting at this layer")
    sp.add_argument("--dropout-rate", type=float, default=0.0,
                    help="fraction of thermal cells dropped (NaN) per layer")
    sp.set_defaults(fn=cmd_reconstruct)

    sp = subparsers.add_parser("figures", help="compact Figure 5/6/7 sweeps")
    _add_common(sp)
    sp.set_defaults(fn=cmd_figures)

    sp = subparsers.add_parser(
        "recover", help="checkpointed run with crash simulation and recovery"
    )
    _add_common(sp)
    sp.add_argument("--state-dir", required=True,
                    help="directory for the persistent LSM state store")
    sp.add_argument("--crash-after", type=int, default=None,
                    help="simulate a crash after N results (needs >=1 checkpoint)")
    sp.add_argument("--retain", type=int, default=3,
                    help="checkpoints to keep")
    sp.add_argument("--checkpoint-interval", type=float, default=1.0,
                    help="seconds between automatic checkpoints")
    sp.add_argument("--pace", type=float, default=0.05,
                    help="seconds between layer arrivals (0 = flat out)")
    sp.set_defaults(fn=cmd_recover)

    sp = subparsers.add_parser(
        "top", help="live per-operator metrics table while a build runs"
    )
    _add_common(sp)
    sp.add_argument("--refresh", type=float, default=1.0,
                    help="seconds between table refreshes")
    sp.add_argument("--pace", type=float, default=0.05,
                    help="seconds between layer arrivals (0 = flat out)")
    sp.set_defaults(fn=cmd_top)

    sp = subparsers.add_parser(
        "broker", help="serve an in-process broker over TCP"
    )
    sp.add_argument("--host", default="127.0.0.1", help="bind address")
    sp.add_argument("--port", type=int, default=9400,
                    help="bind port (0 = ephemeral)")
    sp.add_argument("--allow-pickle", action="store_true",
                    help="accept pickle-coded values (trusted networks only)")
    sp.add_argument("--transport", choices=("tcp", "shm"), default="tcp",
                    help="payload transport (shm = shared-memory slab ring "
                         "for same-machine peers)")
    sp.add_argument("--shm-slots", type=int, default=64,
                    help="slab count of the shm ring")
    sp.add_argument("--shm-slab-mb", type=int, default=40,
                    help="size of each slab in MiB")
    sp.set_defaults(fn=cmd_broker)

    sp = subparsers.add_parser(
        "worker", help="run pipeline stages against a remote broker"
    )
    sp.add_argument("--broker", type=_parse_address, required=True,
                    metavar="HOST:PORT", help="broker server address")
    sp.add_argument("--pipeline", required=True, metavar="MODULE:CALLABLE",
                    help="factory returning an undeployed Strata (or Query)")
    sp.add_argument("--stage", type=int, action="append", metavar="N",
                    help="stage index to run (repeatable)")
    sp.add_argument("--name", default=None, help="worker name for heartbeats")
    sp.add_argument("--list-stages", action="store_true",
                    help="print the pipeline's stage cut and exit")
    sp.add_argument("--allow-pickle", action="store_true",
                    help="send/accept pickle-coded values (trusted networks only)")
    sp.set_defaults(fn=cmd_worker)

    sp = subparsers.add_parser(
        "serve", help="multi-tenant fleet control plane over HTTP"
    )
    sp.add_argument("--host", default=None,
                    help="bind address (default: fleet config, 127.0.0.1)")
    sp.add_argument("--port", type=int, default=None,
                    help="bind port (default: fleet config, 9500; 0 = ephemeral)")
    sp.add_argument("--config", default=None, metavar="FILE",
                    help="TOML DeployConfig whose [fleet] table configures "
                         "quotas, budget and bind address")
    sp.add_argument("--state-dir", default=None, metavar="DIR",
                    help="persist job records in an LSM store (jobs survive "
                         "restarts; in-flight ones come back FAILED)")
    sp.add_argument("--drain-timeout", type=float, default=30.0,
                    help="seconds to wait for running jobs on shutdown")
    sp.set_defaults(fn=cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
