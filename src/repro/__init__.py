"""repro — a reproduction of the STRATA streaming middleware."""

from __future__ import annotations


def _detect_version() -> str:
    """The installed package version, or the pyproject one on a checkout.

    The repo is routinely run uninstalled (``PYTHONPATH=src``), where
    ``importlib.metadata`` has no distribution to ask — fall back to
    parsing ``pyproject.toml`` next to the source tree, and finally to a
    sentinel so ``--version`` never tracebacks.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # PackageNotFoundError, or no metadata backend at all
        pass
    try:
        import pathlib
        import tomllib

        pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as fh:
            return str(tomllib.load(fh)["project"]["version"])
    except Exception:
        return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = ["__version__"]
