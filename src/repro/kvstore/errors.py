"""Exception hierarchy for the key-value store subsystem."""

from __future__ import annotations


class KVStoreError(Exception):
    """Base class for all key-value store errors."""


class StoreClosedError(KVStoreError):
    """Raised when an operation is attempted on a closed store."""


class CorruptionError(KVStoreError):
    """Raised when on-disk data fails an integrity check."""


class InvalidKeyError(KVStoreError):
    """Raised when a key is empty or of the wrong type."""
