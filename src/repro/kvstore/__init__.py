"""Key-value store subsystem (RocksDB substitute).

Provides the data-at-rest tier of STRATA: a persistent LSM-tree store
(:class:`LSMStore`) and an in-memory backend (:class:`MemoryStore`), both
behind the common :class:`KVStore` interface used by the STRATA ``store``/
``get`` API methods.
"""

from .api import KVStore, decode_value, encode_key, encode_value
from .batch import WriteBatch
from .bloom import BloomFilter
from .errors import CorruptionError, InvalidKeyError, KVStoreError, StoreClosedError
from .lsm import LSMStore
from .memory import MemoryStore
from .memtable import TOMBSTONE, SkipListMemtable
from .sstable import SSTable, SSTableWriter
from .wal import WriteAheadLog

__all__ = [
    "KVStore",
    "LSMStore",
    "MemoryStore",
    "SkipListMemtable",
    "SSTable",
    "SSTableWriter",
    "WriteBatch",
    "WriteAheadLog",
    "BloomFilter",
    "TOMBSTONE",
    "KVStoreError",
    "StoreClosedError",
    "CorruptionError",
    "InvalidKeyError",
    "encode_key",
    "encode_value",
    "decode_value",
]
