"""Abstract key-value store interface.

STRATA's modules persist and retrieve data-at-rest through this interface
(the paper's ``store(k, v)`` / ``get(k)`` API, Table 1). Two backends are
provided: :class:`repro.kvstore.memory.MemoryStore` (fast, in-process) and
:class:`repro.kvstore.lsm.LSMStore` (persistent, RocksDB-like LSM tree).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

# The value codec is shared with the network wire format: repro.serde owns
# it now; these re-exports keep the historical kvstore import surface (and
# behaviour: pickle is always accepted when decoding stored values).
from ..serde import _json_roundtrips, decode_value, encode_value  # noqa: F401
from .errors import InvalidKeyError


def encode_key(key: str | bytes) -> bytes:
    """Normalize a key to ``bytes``, rejecting empty or mistyped keys."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    if not isinstance(key, bytes):
        raise InvalidKeyError(f"key must be str or bytes, got {type(key).__name__}")
    if not key:
        raise InvalidKeyError("key must be non-empty")
    return key


class KVStore(ABC):
    """Key-value store contract shared by all backends.

    Keys are ``str`` or ``bytes``; values are arbitrary Python objects
    (serialized transparently). Range scans iterate in lexicographic key
    order, which STRATA uses to fetch per-job historical records.
    """

    @abstractmethod
    def put(self, key: str | bytes, value: Any) -> None:
        """Store ``value`` under ``key``, overwriting any previous value."""

    @abstractmethod
    def get(self, key: str | bytes, default: Any = None) -> Any:
        """Return the value stored under ``key``, or ``default``."""

    @abstractmethod
    def delete(self, key: str | bytes) -> None:
        """Remove ``key`` if present (idempotent)."""

    @abstractmethod
    def scan(
        self,
        start: str | bytes | None = None,
        end: str | bytes | None = None,
    ) -> Iterator[tuple[bytes, Any]]:
        """Iterate ``(key, value)`` pairs with ``start <= key < end``."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; further operations raise ``StoreClosedError``."""

    def __contains__(self, key: str | bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
