"""Abstract key-value store interface.

STRATA's modules persist and retrieve data-at-rest through this interface
(the paper's ``store(k, v)`` / ``get(k)`` API, Table 1). Two backends are
provided: :class:`repro.kvstore.memory.MemoryStore` (fast, in-process) and
:class:`repro.kvstore.lsm.LSMStore` (persistent, RocksDB-like LSM tree).
"""

from __future__ import annotations

import json
import pickle
from abc import ABC, abstractmethod
from typing import Any, Iterator

from .errors import InvalidKeyError


def encode_key(key: str | bytes) -> bytes:
    """Normalize a key to ``bytes``, rejecting empty or mistyped keys."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    if not isinstance(key, bytes):
        raise InvalidKeyError(f"key must be str or bytes, got {type(key).__name__}")
    if not key:
        raise InvalidKeyError("key must be non-empty")
    return key


def _json_roundtrips(value: Any) -> bool:
    """True when JSON encoding reproduces ``value`` exactly.

    ``json.dumps`` silently coerces tuples to lists (and non-string dict
    keys to strings), so "it serialized without error" is not enough for a
    store that must return exactly what was put.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return value == value and value not in (float("inf"), float("-inf"))
    if isinstance(value, list):
        return all(_json_roundtrips(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_roundtrips(item)
            for key, item in value.items()
        )
    return False


def encode_value(value: Any) -> bytes:
    """Serialize an arbitrary Python value for storage.

    Values that are already ``bytes`` pass through untouched; values that
    JSON reproduces exactly are stored as JSON (portable, inspectable);
    everything else — tuples, sets, NaN, arbitrary objects — is pickled.
    A one-byte tag records the codec used.
    """
    if isinstance(value, bytes):
        return b"b" + value
    if _json_roundtrips(value):
        return b"j" + json.dumps(value).encode("utf-8")
    return b"p" + pickle.dumps(value)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    tag, body = data[:1], data[1:]
    if tag == b"b":
        return body
    if tag == b"j":
        return json.loads(body.decode("utf-8"))
    if tag == b"p":
        return pickle.loads(body)
    raise ValueError(f"unknown value codec tag {tag!r}")


class KVStore(ABC):
    """Key-value store contract shared by all backends.

    Keys are ``str`` or ``bytes``; values are arbitrary Python objects
    (serialized transparently). Range scans iterate in lexicographic key
    order, which STRATA uses to fetch per-job historical records.
    """

    @abstractmethod
    def put(self, key: str | bytes, value: Any) -> None:
        """Store ``value`` under ``key``, overwriting any previous value."""

    @abstractmethod
    def get(self, key: str | bytes, default: Any = None) -> Any:
        """Return the value stored under ``key``, or ``default``."""

    @abstractmethod
    def delete(self, key: str | bytes) -> None:
        """Remove ``key`` if present (idempotent)."""

    @abstractmethod
    def scan(
        self,
        start: str | bytes | None = None,
        end: str | bytes | None = None,
    ) -> Iterator[tuple[bytes, Any]]:
        """Iterate ``(key, value)`` pairs with ``start <= key < end``."""

    @abstractmethod
    def close(self) -> None:
        """Release resources; further operations raise ``StoreClosedError``."""

    def __contains__(self, key: str | bytes) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
