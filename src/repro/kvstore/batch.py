"""Atomic write batches (the RocksDB ``WriteBatch`` pattern).

STRATA pipelines store several related records per layer (thresholds,
per-specimen summaries, provenance); a batch makes the group land
atomically so a concurrent reader never sees half a layer's state.
"""

from __future__ import annotations

from typing import Any


class WriteBatch:
    """Ordered collection of put/delete operations applied atomically."""

    def __init__(self) -> None:
        self._operations: list[tuple[str, str | bytes, Any]] = []

    @property
    def operations(self) -> list[tuple[str, str | bytes, Any]]:
        return list(self._operations)

    def put(self, key: str | bytes, value: Any) -> "WriteBatch":
        """Queue an upsert; chainable."""
        self._operations.append(("put", key, value))
        return self

    def delete(self, key: str | bytes) -> "WriteBatch":
        """Queue a deletion; chainable."""
        self._operations.append(("delete", key, None))
        return self

    def clear(self) -> None:
        """Drop all queued operations (the batch can be reused)."""
        self._operations.clear()

    def __len__(self) -> int:
        return len(self._operations)

    def __bool__(self) -> bool:
        return bool(self._operations)
