"""Write-ahead log for crash-safe memtable recovery.

Record layout (little-endian):

    [u32 crc][u32 key_len][u32 value_len][key bytes][value bytes]

The CRC covers both length headers and both bodies. Replay stops at the
first corrupt or truncated record, mirroring the torn-write tolerance of
production WAL implementations.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from .errors import StoreClosedError

_HEADER = struct.Struct("<III")


class WriteAheadLog:
    """Append-only durability log paired with the active memtable."""

    def __init__(self, path: str | Path, sync: bool = False) -> None:
        self._path = Path(path)
        self._sync = sync
        self._file = open(self._path, "ab")
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    def append(self, key: bytes, value: bytes) -> None:
        """Durably record one put/delete before it reaches the memtable."""
        if self._closed:
            raise StoreClosedError("WAL is closed")
        body = key + value
        header = _HEADER.pack(0, len(key), len(value))
        crc = zlib.crc32(header[4:] + body)
        self._file.write(_HEADER.pack(crc, len(key), len(value)) + body)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def remove(self) -> None:
        """Close and delete the log file (after a successful flush)."""
        self.close()
        self._path.unlink(missing_ok=True)

    @staticmethod
    def replay(path: str | Path) -> Iterator[tuple[bytes, bytes]]:
        """Yield all intact records from an existing log, oldest first."""
        path = Path(path)
        if not path.exists():
            return
        with open(path, "rb") as f:
            data = f.read()
        offset = 0
        total = len(data)
        while offset + _HEADER.size <= total:
            crc, key_len, value_len = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            body_end = body_start + key_len + value_len
            if body_end > total:
                return  # truncated tail
            body = data[body_start:body_end]
            expected = zlib.crc32(data[offset + 4 : offset + _HEADER.size] + body)
            if crc != expected:
                return  # corrupt record; discard it and everything after
            yield body[:key_len], body[key_len:]
            offset = body_end
