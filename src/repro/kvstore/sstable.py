"""Immutable sorted string tables (SSTables).

File layout::

    [data block: sequence of records, sorted by key]
    [sparse index block]
    [bloom filter block]
    [footer: offsets + counts + magic]

Record layout matches the WAL record (crc, key_len, value_len, key, value).
The sparse index stores every ``index_interval``-th key with its file
offset, so a point lookup reads at most one index segment of records.
"""

from __future__ import annotations

import struct
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Iterator, Optional

from .bloom import BloomFilter
from .errors import CorruptionError

_RECORD_HEADER = struct.Struct("<III")
_FOOTER = struct.Struct("<QQQQ8s")
_MAGIC = b"SSTBLv01"
_INDEX_INTERVAL = 16


def _pack_record(key: bytes, value: bytes) -> bytes:
    header_tail = struct.pack("<II", len(key), len(value))
    crc = zlib.crc32(header_tail + key + value)
    return _RECORD_HEADER.pack(crc, len(key), len(value)) + key + value


class SSTableWriter:
    """Streams sorted entries into a new SSTable file."""

    def __init__(
        self,
        path: str | Path,
        expected_items: int = 1024,
        fp_rate: float = 0.01,
        index_interval: int = _INDEX_INTERVAL,
    ) -> None:
        self._path = Path(path)
        self._file = open(self._path, "wb")
        self._bloom = BloomFilter(expected_items, fp_rate)
        self._index: list[tuple[bytes, int]] = []
        self._index_interval = index_interval
        self._count = 0
        self._offset = 0
        self._last_key: Optional[bytes] = None

    def add(self, key: bytes, value: bytes) -> None:
        """Append one entry; keys must arrive in strictly increasing order."""
        if self._last_key is not None and key <= self._last_key:
            raise ValueError("SSTable entries must be added in sorted order")
        self._last_key = key
        if self._count % self._index_interval == 0:
            self._index.append((key, self._offset))
        record = _pack_record(key, value)
        self._file.write(record)
        self._offset += len(record)
        self._bloom.add(key)
        self._count += 1

    def finish(self) -> None:
        """Write index, bloom, and footer, then close the file."""
        index_offset = self._offset
        index_blob = bytearray()
        for key, offset in self._index:
            index_blob += struct.pack("<IQ", len(key), offset) + key
        self._file.write(index_blob)
        bloom_offset = index_offset + len(index_blob)
        bloom_blob = self._bloom.to_bytes()
        self._file.write(bloom_blob)
        self._file.write(
            _FOOTER.pack(index_offset, bloom_offset, self._count, len(index_blob), _MAGIC)
        )
        self._file.close()


class SSTable:
    """Read-only view over one SSTable file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        with open(self._path, "rb") as f:
            data = f.read()
        if len(data) < _FOOTER.size:
            raise CorruptionError(f"{self._path}: file too small for footer")
        index_offset, bloom_offset, count, index_len, magic = _FOOTER.unpack(
            data[-_FOOTER.size :]
        )
        if magic != _MAGIC:
            raise CorruptionError(f"{self._path}: bad magic {magic!r}")
        self._data = data[:index_offset]
        self._count = count
        self._bloom = BloomFilter.from_bytes(data[bloom_offset : -_FOOTER.size])
        self._index_keys: list[bytes] = []
        self._index_offsets: list[int] = []
        blob = data[index_offset : index_offset + index_len]
        pos = 0
        while pos < len(blob):
            key_len, offset = struct.unpack_from("<IQ", blob, pos)
            pos += 12
            self._index_keys.append(blob[pos : pos + key_len])
            pos += key_len
            self._index_offsets.append(offset)

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return self._count

    def _records_from(self, offset: int) -> Iterator[tuple[bytes, bytes]]:
        data = self._data
        total = len(data)
        while offset + _RECORD_HEADER.size <= total:
            crc, key_len, value_len = _RECORD_HEADER.unpack_from(data, offset)
            start = offset + _RECORD_HEADER.size
            end = start + key_len + value_len
            if end > total:
                raise CorruptionError(f"{self._path}: truncated record at {offset}")
            body = data[start:end]
            expected = zlib.crc32(data[offset + 4 : start] + body)
            if crc != expected:
                raise CorruptionError(f"{self._path}: CRC mismatch at {offset}")
            yield body[:key_len], body[key_len:]
            offset = end

    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup; returns the raw stored value (may be a tombstone)."""
        if not self._index_keys or not self._bloom.might_contain(key):
            return None
        slot = bisect_right(self._index_keys, key) - 1
        if slot < 0:
            return None
        for record_key, value in self._records_from(self._index_offsets[slot]):
            if record_key == key:
                return value
            if record_key > key:
                return None
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All entries in key order (tombstones included)."""
        yield from self._records_from(0)

    def range_items(
        self, start: bytes | None, end: bytes | None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Entries with ``start <= key < end`` in key order."""
        offset = 0
        if start is not None and self._index_keys:
            slot = bisect_right(self._index_keys, start) - 1
            if slot >= 0:
                offset = self._index_offsets[slot]
        for key, value in self._records_from(offset):
            if end is not None and key >= end:
                return
            if start is None or key >= start:
                yield key, value
