"""Bloom filter used by SSTables to skip files that cannot hold a key."""

from __future__ import annotations

import hashlib
import math


class BloomFilter:
    """Classic Bloom filter over ``bytes`` keys.

    Sized from the expected element count and target false-positive rate;
    serializable so it can be embedded in an SSTable footer.
    """

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        expected_items = max(1, expected_items)
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        self._num_bits = max(
            8, int(-expected_items * math.log(fp_rate) / (math.log(2) ** 2))
        )
        self._num_hashes = max(1, round(self._num_bits / expected_items * math.log(2)))
        self._bits = bytearray((self._num_bits + 7) // 8)

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def _indexes(self, key: bytes) -> list[int]:
        # Double hashing: two independent 64-bit halves of a single digest
        # generate k index positions (Kirsch-Mitzenmacher).
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return [(h1 + i * h2) % self._num_bits for i in range(self._num_hashes)]

    def add(self, key: bytes) -> None:
        """Record ``key`` as a member."""
        for idx in self._indexes(key):
            self._bits[idx >> 3] |= 1 << (idx & 7)

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self._bits[idx >> 3] & (1 << (idx & 7)) for idx in self._indexes(key))

    def to_bytes(self) -> bytes:
        """Serialize for embedding in an SSTable footer."""
        header = self._num_bits.to_bytes(8, "little") + self._num_hashes.to_bytes(
            2, "little"
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        bloom = cls.__new__(cls)
        bloom._num_bits = int.from_bytes(data[:8], "little")
        bloom._num_hashes = int.from_bytes(data[8:10], "little")
        bloom._bits = bytearray(data[10:])
        return bloom
