"""LSM-tree key-value store (the RocksDB substitute).

Write path: WAL append → skiplist memtable. When the memtable exceeds
``memtable_bytes`` it is flushed to an SSTable and the WAL truncated.
Read path: memtable → SSTables newest-first (bloom filters prune files).
When the number of SSTables exceeds ``compaction_threshold`` they are
merged into one (size-tiered compaction) and tombstones are reclaimed.

Thread safety: a single re-entrant lock guards all public operations; the
store is shared by every STRATA module in one process, matching how the
paper's prototype shares one RocksDB instance.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Iterator

from .api import KVStore, decode_value, encode_key, encode_value
from .batch import WriteBatch
from .compaction import compact
from .errors import StoreClosedError
from .memtable import TOMBSTONE, SkipListMemtable
from .sstable import SSTable, SSTableWriter
from .wal import WriteAheadLog


class LSMStore(KVStore):
    """Persistent key-value store backed by a log-structured merge tree."""

    def __init__(
        self,
        directory: str | Path,
        memtable_bytes: int = 4 * 1024 * 1024,
        compaction_threshold: int = 4,
        sync_wal: bool = False,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._memtable_bytes = memtable_bytes
        self._compaction_threshold = compaction_threshold
        self._sync_wal = sync_wal
        self._lock = threading.RLock()
        self._closed = False
        self._tables: list[SSTable] = []  # oldest → newest
        self._next_table_id = 0
        self._load_existing_tables()
        self._memtable = SkipListMemtable()
        self._wal_path = self._dir / "wal.log"
        self._recover_wal()
        self._wal = WriteAheadLog(self._wal_path, sync=sync_wal)

    # -- startup ---------------------------------------------------------

    def _load_existing_tables(self) -> None:
        paths = sorted(self._dir.glob("sstable-*.sst"))
        for path in paths:
            self._tables.append(SSTable(path))
            table_id = int(path.stem.split("-")[1])
            self._next_table_id = max(self._next_table_id, table_id + 1)

    def _recover_wal(self) -> None:
        for key, value in WriteAheadLog.replay(self._wal_path):
            self._memtable.put(key, value)

    # -- internals -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def _new_table_path(self) -> Path:
        path = self._dir / f"sstable-{self._next_table_id:08d}.sst"
        self._next_table_id += 1
        return path

    def _flush_memtable(self) -> None:
        if len(self._memtable) == 0:
            return
        path = self._new_table_path()
        writer = SSTableWriter(path, expected_items=len(self._memtable))
        for key, value in self._memtable.items():
            writer.add(key, value)
        writer.finish()
        self._tables.append(SSTable(path))
        self._memtable = SkipListMemtable()
        self._wal.remove()
        self._wal = WriteAheadLog(self._wal_path, sync=self._sync_wal)
        if len(self._tables) > self._compaction_threshold:
            self._compact_all()

    def _compact_all(self) -> None:
        path = self._new_table_path()
        merged = compact(self._tables, path, drop_tombstones=True)
        for table in self._tables:
            table.path.unlink(missing_ok=True)
        self._tables = [merged]

    # -- public API ------------------------------------------------------

    def put(self, key: str | bytes, value: Any) -> None:
        raw_key = encode_key(key)
        raw_value = encode_value(value)
        with self._lock:
            self._check_open()
            self._wal.append(raw_key, raw_value)
            self._memtable.put(raw_key, raw_value)
            if self._memtable.approximate_bytes >= self._memtable_bytes:
                self._flush_memtable()

    def get(self, key: str | bytes, default: Any = None) -> Any:
        raw_key = encode_key(key)
        with self._lock:
            self._check_open()
            value = self._memtable.get(raw_key)
            if value is None:
                for table in reversed(self._tables):
                    value = table.get(raw_key)
                    if value is not None:
                        break
        if value is None or value == TOMBSTONE:
            return default
        return decode_value(value)

    def delete(self, key: str | bytes) -> None:
        raw_key = encode_key(key)
        with self._lock:
            self._check_open()
            self._wal.append(raw_key, TOMBSTONE)
            self._memtable.put(raw_key, TOMBSTONE)

    def scan(
        self,
        start: str | bytes | None = None,
        end: str | bytes | None = None,
    ) -> Iterator[tuple[bytes, Any]]:
        raw_start = encode_key(start) if start is not None else None
        raw_end = encode_key(end) if end is not None else None
        with self._lock:
            self._check_open()
            # Snapshot the merge inputs under the lock; iteration itself is
            # lock-free over immutable SSTables plus a copied memtable slice.
            sources: list[list[tuple[bytes, bytes]]] = [
                list(table.range_items(raw_start, raw_end)) for table in self._tables
            ]
            sources.append(list(self._memtable.range_items(raw_start, raw_end)))
        yield from self._merged_scan(sources)

    @staticmethod
    def _merged_scan(
        sources: list[list[tuple[bytes, bytes]]],
    ) -> Iterator[tuple[bytes, Any]]:
        # sources are ordered oldest → newest; later sources win on ties.
        import heapq

        heap: list[tuple[bytes, int, bytes, int, int]] = []
        for age, entries in enumerate(sources):
            if entries:
                key, value = entries[0]
                heap.append((key, -age, value, age, 0))
        heapq.heapify(heap)
        last_key: bytes | None = None
        while heap:
            key, _neg, value, age, pos = heapq.heappop(heap)
            if pos + 1 < len(sources[age]):
                nkey, nvalue = sources[age][pos + 1]
                heapq.heappush(heap, (nkey, -age, nvalue, age, pos + 1))
            if key == last_key:
                continue
            last_key = key
            if value != TOMBSTONE:
                yield key, decode_value(value)

    def write_batch(self, batch: "WriteBatch") -> None:
        """Apply a batch of puts/deletes atomically.

        All records enter the WAL before any reaches the memtable, and the
        whole batch is applied under one lock acquisition — readers never
        observe a partially-applied batch, and recovery replays either a
        prefix that ends cleanly at a record boundary or the whole batch
        (individual records are CRC-framed).
        """
        with self._lock:
            self._check_open()
            encoded: list[tuple[bytes, bytes]] = []
            for op, key, value in batch.operations:
                raw_key = encode_key(key)
                raw_value = TOMBSTONE if op == "delete" else encode_value(value)
                encoded.append((raw_key, raw_value))
            for raw_key, raw_value in encoded:
                self._wal.append(raw_key, raw_value)
            for raw_key, raw_value in encoded:
                self._memtable.put(raw_key, raw_value)
            if self._memtable.approximate_bytes >= self._memtable_bytes:
                self._flush_memtable()

    def flush(self) -> None:
        """Force the active memtable to disk (exposed for tests/benches)."""
        with self._lock:
            self._check_open()
            self._flush_memtable()

    def compact(self) -> None:
        """Force a full compaction of all SSTables."""
        with self._lock:
            self._check_open()
            self._flush_memtable()
            if len(self._tables) > 1:
                self._compact_all()

    @property
    def sstable_count(self) -> int:
        with self._lock:
            return len(self._tables)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_memtable()
            self._wal.close()
            self._closed = True
