"""Skip-list memtable: the mutable in-memory tier of the LSM tree.

A skip list keeps keys sorted with O(log n) expected insert/lookup and
supports in-order iteration without a separate sort step at flush time —
the same structure RocksDB uses for its default memtable.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

_MAX_LEVEL = 16
_P = 0.5

# Sentinel distinguishing "key deleted" from "key absent". Tombstones must
# flow into SSTables so a delete can shadow older values in lower levels.
TOMBSTONE = b"\x00__tombstone__\x00"


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: bytes, value: bytes, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[Optional[_Node]] = [None] * level


class SkipListMemtable:
    """Sorted in-memory map from ``bytes`` keys to ``bytes`` values.

    Tracks its approximate byte footprint so the LSM store can decide when
    to rotate it into an immutable SSTable.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._head = _Node(b"", b"", _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._approx_bytes = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return self._size

    @property
    def approximate_bytes(self) -> int:
        """Approximate memory footprint of stored keys and values."""
        return self._approx_bytes

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
            update[i] = node
        return update

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            self._approx_bytes += len(value) - len(node.value)
            node.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        new_node = _Node(key, value, level)
        for i in range(level):
            new_node.forward[i] = update[i].forward[i]
            update[i].forward[i] = new_node
        self._size += 1
        self._approx_bytes += len(key) + len(value) + 64

    def delete(self, key: bytes) -> None:
        """Record a deletion as a tombstone (required for LSM shadowing)."""
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the stored value, ``TOMBSTONE`` if deleted, else ``None``."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all entries (tombstones included) in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def range_items(
        self, start: bytes | None, end: bytes | None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate entries with ``start <= key < end`` in key order."""
        if start is None:
            node = self._head.forward[0]
        else:
            node = self._find_predecessors(start)[0].forward[0]
        while node is not None and (end is None or node.key < end):
            yield node.key, node.value
            node = node.forward[0]
