"""In-memory key-value backend (fast path for latency-critical pipelines)."""

from __future__ import annotations

import threading
from typing import Any, Iterator

from .api import KVStore, decode_value, encode_key, encode_value
from .errors import StoreClosedError


class MemoryStore(KVStore):
    """Dict-backed store with the same contract as :class:`LSMStore`.

    Values are still round-tripped through the codec so that storing a
    mutable object and mutating it afterwards cannot silently change what
    readers observe — the same isolation a persistent store provides.
    """

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self._lock = threading.RLock()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def put(self, key: str | bytes, value: Any) -> None:
        raw_key = encode_key(key)
        raw_value = encode_value(value)
        with self._lock:
            self._check_open()
            self._data[raw_key] = raw_value

    def get(self, key: str | bytes, default: Any = None) -> Any:
        raw_key = encode_key(key)
        with self._lock:
            self._check_open()
            raw = self._data.get(raw_key)
        if raw is None:
            return default
        return decode_value(raw)

    def delete(self, key: str | bytes) -> None:
        raw_key = encode_key(key)
        with self._lock:
            self._check_open()
            self._data.pop(raw_key, None)

    def scan(
        self,
        start: str | bytes | None = None,
        end: str | bytes | None = None,
    ) -> Iterator[tuple[bytes, Any]]:
        raw_start = encode_key(start) if start is not None else None
        raw_end = encode_key(end) if end is not None else None
        with self._lock:
            self._check_open()
            keys = sorted(self._data)
        for key in keys:
            if raw_start is not None and key < raw_start:
                continue
            if raw_end is not None and key >= raw_end:
                break
            with self._lock:
                raw = self._data.get(key)
            if raw is not None:
                yield key, decode_value(raw)

    def write_batch(self, batch) -> None:
        """Apply a :class:`~repro.kvstore.batch.WriteBatch` atomically."""
        with self._lock:
            self._check_open()
            for op, key, value in batch.operations:
                raw_key = encode_key(key)
                if op == "delete":
                    self._data.pop(raw_key, None)
                else:
                    self._data[raw_key] = encode_value(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def close(self) -> None:
        with self._lock:
            self._closed = True
