"""Size-tiered compaction: merge many SSTables into one, newest wins.

Compaction performs a k-way merge over sorted runs. When the same key
appears in several inputs, only the value from the *newest* table survives;
tombstones are dropped entirely when the merge output is the bottom level
(there is nothing older left to shadow).
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterator, Sequence

from .memtable import TOMBSTONE
from .sstable import SSTable, SSTableWriter


def merge_tables(
    tables: Sequence[SSTable],
) -> Iterator[tuple[bytes, bytes]]:
    """K-way merge of SSTables ordered oldest → newest.

    Yields one entry per distinct key — the value from the newest table
    containing that key. Tombstones are yielded (the caller decides whether
    the output level may drop them).
    """
    # Heap entries: (key, -age, value). Newer tables get a more negative
    # tie-breaker so for equal keys the newest value pops first.
    iters = [iter(table.items()) for table in tables]
    heap: list[tuple[bytes, int, bytes, int]] = []
    for age, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            heap.append((first[0], -age, first[1], age))
    heapq.heapify(heap)
    last_key: bytes | None = None
    while heap:
        key, _neg_age, value, age = heapq.heappop(heap)
        nxt = next(iters[age], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], -age, nxt[1], age))
        if key == last_key:
            continue  # an older duplicate; newest already emitted
        last_key = key
        yield key, value


def compact(
    tables: Sequence[SSTable],
    output_path: str | Path,
    drop_tombstones: bool,
) -> SSTable:
    """Merge ``tables`` (oldest → newest) into a single new SSTable."""
    expected = sum(len(t) for t in tables)
    writer = SSTableWriter(output_path, expected_items=max(1, expected))
    for key, value in merge_tables(tables):
        if drop_tombstones and value == TOMBSTONE:
            continue
        writer.add(key, value)
    writer.finish()
    return SSTable(output_path)
