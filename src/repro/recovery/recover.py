"""Post-crash recovery: restore a rebuilt pipeline from the last checkpoint.

A :class:`RecoveryCoordinator` is used as the engine's ``on_built`` hook:
the caller rebuilds the *same logical* query (same declared node names),
and the coordinator — between ``query.build()`` and scheduler start —
looks up the newest committed epoch, restores every manifested node's
state, and seeks every source back to its captured position. The sources
then replay the post-checkpoint suffix; sink-side dedup absorbs overlap.

The rebuilt *physical* plan may differ from the one that wrote the
checkpoint: manifest entries are matched through
``Node.restore_state_for``, which resolves a logical name to the plain
node, the constituent of a fused chain, or every replica sharing that
``base_name``. So a checkpoint written by an unfused run restores into a
fused or replicated plan and vice versa. The one unsupported direction is
shrinking replicated state (a manifest entry ``stage::3`` has no home in
a plan built without replication) — that raises in strict mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kvstore.api import KVStore
from ..spe.query import Node
from .errors import NoCheckpointError, RecoveryError
from .storage import CheckpointStorage


@dataclass
class RecoveryReport:
    """What one recovery pass restored."""

    epoch: int
    nodes_restored: list[str] = field(default_factory=list)
    sources_restored: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # a report means recovery happened
        return True


class RecoveryCoordinator:
    """Restores operator/sink/source state captured by a checkpoint."""

    def __init__(
        self,
        store: KVStore | CheckpointStorage,
        epoch: int | None = None,
        strict: bool = True,
        require_checkpoint: bool = False,
    ) -> None:
        self.storage = (
            store if isinstance(store, CheckpointStorage) else CheckpointStorage(store)
        )
        self._epoch = epoch
        self._strict = strict
        self._require = require_checkpoint
        self.report: RecoveryReport | None = None

    def latest_epoch(self) -> int | None:
        return self.storage.latest_epoch()

    def __call__(self, nodes: list[Node]) -> None:
        """Engine ``on_built`` hook signature."""
        self.restore(nodes)

    def restore(self, nodes: list[Node]) -> RecoveryReport | None:
        """Restore state into materialized nodes; None on a cold start."""
        epoch = self._epoch if self._epoch is not None else self.storage.latest_epoch()
        if epoch is None:
            if self._require:
                raise NoCheckpointError("no committed checkpoint epoch found")
            self.report = None
            return None
        manifest = self.storage.load_manifest(epoch)
        if manifest is None:
            raise NoCheckpointError(f"epoch {epoch} has no committed manifest")
        by_name = {node.name: node for node in nodes}
        report = RecoveryReport(epoch=epoch)
        for name in manifest.get("nodes", []):
            state = self.storage.load_node_state(epoch, name)
            if state is None:
                raise RecoveryError(
                    f"manifest of epoch {epoch} lists {name!r} but its state "
                    "record is missing (corrupt checkpoint)"
                )
            # Coverage matching, not exact-name lookup: the rebuilt plan may
            # have fused or replicated the node that wrote this state.
            restored = False
            for node in nodes:
                if node.restore_state_for(name, state):
                    restored = True
            if not restored:
                if self._strict:
                    raise RecoveryError(
                        f"checkpoint epoch {epoch} has state for unknown node "
                        f"{name!r}; rebuild the same topology before recovering"
                    )
                continue
            report.nodes_restored.append(name)
        for name in manifest.get("sources", []):
            node = by_name.get(name)
            if node is None or node.kind != "source":
                if self._strict:
                    raise RecoveryError(
                        f"checkpoint epoch {epoch} captured source {name!r} "
                        "which the rebuilt query does not declare"
                    )
                continue
            position = self.storage.load_source_position(epoch, name)
            if position is None:
                raise RecoveryError(
                    f"manifest of epoch {epoch} lists source {name!r} but its "
                    "position record is missing (corrupt checkpoint)"
                )
            if not hasattr(node.source, "restore_position"):
                raise RecoveryError(
                    f"source node {name!r} cannot replay; wrap it in "
                    "repro.recovery.CheckpointableSource"
                )
            node.source.restore_position(position)
            report.sources_restored.append(name)
        self.report = report
        return report
