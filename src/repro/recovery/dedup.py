"""Sink-side deduplication for effectively-exactly-once delivery.

Replay after recovery re-emits every tuple between the checkpoint cut and
the crash point; results the expert already saw before the crash would
arrive a second time. :class:`DedupSink` suppresses them by tuple metadata
— ``(tau, job, layer, specimen, portion)``, the paper's full metadata
schema — and checkpoints its seen-set alongside the wrapped sink's state,
so the filter itself survives recovery.

The metadata key identifies a *result slot*: the pipeline is deterministic
per slot, so an identical key on replay carries an identical payload. Pass
``key_fn`` when a custom sink emits several distinct results per slot.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..spe.sink import Sink
from ..spe.tuples import StreamTuple

DedupKeyFunction = Callable[[StreamTuple], Hashable]


def result_identity(t: StreamTuple) -> tuple:
    """Default dedup key: the paper's tuple metadata schema."""
    return (t.tau, t.job, t.layer, t.specimen, t.portion)


class DedupSink(Sink):
    """Forwards each distinct result once, dropping replayed duplicates."""

    def __init__(self, inner: Sink, key_fn: DedupKeyFunction | None = None) -> None:
        super().__init__(f"dedup[{inner.name}]")
        self._inner = inner
        self._key_fn = key_fn or result_identity
        self._seen: set[Hashable] = set()
        self.duplicates = 0

    @property
    def inner(self) -> Sink:
        return self._inner

    @property
    def seen(self) -> int:
        return len(self._seen)

    @property
    def results(self) -> list[StreamTuple]:
        """Delegates to the wrapped sink's collected results (if any)."""
        return self._inner.results  # type: ignore[attr-defined]

    def consume(self, t: StreamTuple) -> None:
        key = self._key_fn(t)
        if key in self._seen:
            self.duplicates += 1
            return
        self._seen.add(key)
        self._inner.accept(t)

    def snapshot_state(self) -> dict[str, object]:
        base = super().snapshot_state() or {}
        base["seen"] = list(self._seen)
        base["duplicates"] = self.duplicates
        inner_state = self._inner.snapshot_state()
        if inner_state is not None:
            base["inner"] = inner_state
        return base

    def restore_state(self, state: dict[str, object]) -> None:
        super().restore_state(state)
        # Keys round-trip through the KV codec as lists; re-tuple them so
        # they compare equal to freshly computed keys.
        self._seen = {
            tuple(key) if isinstance(key, list) else key for key in state["seen"]
        }
        self.duplicates = int(state["duplicates"])
        if "inner" in state:
            self._inner.restore_state(state["inner"])

    def on_close(self) -> None:
        self._inner.on_close()
        super().on_close()
