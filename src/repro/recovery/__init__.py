"""Checkpointing & crash recovery (the fault-tolerance tier of STRATA).

The paper's middleware must survive component failures without losing the
per-cell/per-specimen monitoring state accumulated over a multi-hour print.
This package implements Chandy–Lamport-style *aligned checkpoint barriers*:

* :class:`CheckpointCoordinator` injects barriers at the sources and
  commits each epoch's snapshots to a :mod:`repro.kvstore` backend,
  manifest record strictly last (atomic visibility).
* :class:`CheckpointableSource` wraps any SPE source so barriers enter the
  stream at exact cut points, with pubsub offsets or replay counts
  captured at injection.
* :class:`RecoveryCoordinator` restores a rebuilt pipeline from the newest
  committed epoch and seeks sources back for replay.
* :class:`DedupSink` suppresses replayed results for effectively-exactly-
  once delivery to the expert.
* :mod:`~repro.recovery.chaos` kills pipelines mid-build so tests can
  prove all of the above.
"""

from .chaos import ChaosError, ChaosInjector, CrashingFunction
from .coordinator import CheckpointCoordinator
from .dedup import DedupSink, result_identity
from .errors import CheckpointConfigError, NoCheckpointError, RecoveryError
from .recover import RecoveryCoordinator, RecoveryReport
from .source import CheckpointableSource
from .storage import CheckpointStorage

__all__ = [
    "CheckpointCoordinator",
    "CheckpointStorage",
    "CheckpointableSource",
    "RecoveryCoordinator",
    "RecoveryReport",
    "DedupSink",
    "result_identity",
    "ChaosInjector",
    "CrashingFunction",
    "ChaosError",
    "RecoveryError",
    "CheckpointConfigError",
    "NoCheckpointError",
]
