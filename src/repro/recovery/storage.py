"""Checkpoint persistence layout over a :class:`~repro.kvstore.api.KVStore`.

One checkpoint epoch occupies a key range::

    ckpt/<epoch:010d>/node/<node-name>     -> operator/sink state dict
    ckpt/<epoch:010d>/source/<node-name>   -> source position (offsets)
    ckpt/<epoch:010d>/manifest             -> commit record, written LAST

The manifest is the commit point: an epoch whose manifest key is absent is
invisible to recovery, so a crash mid-checkpoint leaves at most some
orphaned ``node/``/``source/`` keys that are never read (and are harmlessly
overwritten if the epoch number is ever reused). Atomicity therefore rests
on a single KV put, which both backends apply atomically.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..kvstore.api import KVStore

#: zero-padded so lexicographic key order == numeric epoch order
_EPOCH_WIDTH = 10


class CheckpointStorage:
    """Reads and writes checkpoint epochs under a common key prefix."""

    def __init__(self, store: KVStore, prefix: str = "ckpt") -> None:
        if not prefix or "/" in prefix:
            raise ValueError("prefix must be a non-empty string without '/'")
        self._store = store
        self._prefix = prefix

    @property
    def store(self) -> KVStore:
        return self._store

    # -- key layout ---------------------------------------------------------

    def _epoch_prefix(self, epoch: int) -> str:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return f"{self._prefix}/{epoch:0{_EPOCH_WIDTH}d}"

    def node_key(self, epoch: int, node_name: str) -> str:
        return f"{self._epoch_prefix(epoch)}/node/{node_name}"

    def source_key(self, epoch: int, node_name: str) -> str:
        return f"{self._epoch_prefix(epoch)}/source/{node_name}"

    def manifest_key(self, epoch: int) -> str:
        return f"{self._epoch_prefix(epoch)}/manifest"

    # -- writes -------------------------------------------------------------

    def save_node_state(self, epoch: int, node_name: str, state: dict) -> None:
        self._store.put(self.node_key(epoch, node_name), state)

    def save_source_position(self, epoch: int, node_name: str, position: dict) -> None:
        self._store.put(self.source_key(epoch, node_name), position)

    def commit_manifest(self, epoch: int, manifest: dict[str, Any]) -> None:
        """Make the epoch visible to recovery. Call strictly last."""
        self._store.put(self.manifest_key(epoch), manifest)

    def drop_epoch(self, epoch: int) -> None:
        """Delete one epoch, manifest first so readers never see a torso."""
        self._store.delete(self.manifest_key(epoch))
        prefix = self._epoch_prefix(epoch) + "/"
        doomed = [key for key, _ in self._scan_prefix(prefix)]
        for key in doomed:
            self._store.delete(key)

    def retain(self, keep: int) -> list[int]:
        """Drop all but the newest ``keep`` committed epochs; returns dropped."""
        if keep < 1:
            raise ValueError("must retain at least one epoch")
        committed = self.epochs()
        doomed = committed[:-keep] if len(committed) > keep else []
        for epoch in doomed:
            self.drop_epoch(epoch)
        return doomed

    # -- reads --------------------------------------------------------------

    def _scan_prefix(self, prefix: str) -> Iterator[tuple[str, Any]]:
        # '0x2F + 1 = 0x30' trick: "p/" .. "p0" spans every key under p/.
        end = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        for raw_key, value in self._store.scan(start=prefix, end=end):
            key = raw_key.decode("utf-8") if isinstance(raw_key, bytes) else raw_key
            yield key, value

    def epochs(self) -> list[int]:
        """Committed (manifested) epochs, ascending."""
        out = []
        for key, _ in self._scan_prefix(self._prefix + "/"):
            parts = key.split("/")
            if len(parts) == 3 and parts[2] == "manifest":
                out.append(int(parts[1]))
        return out

    def latest_epoch(self) -> int | None:
        committed = self.epochs()
        return committed[-1] if committed else None

    def load_manifest(self, epoch: int) -> dict[str, Any] | None:
        return self._store.get(self.manifest_key(epoch))

    def load_node_state(self, epoch: int, node_name: str) -> dict | None:
        return self._store.get(self.node_key(epoch, node_name))

    def load_source_position(self, epoch: int, node_name: str) -> dict | None:
        return self._store.get(self.source_key(epoch, node_name))
