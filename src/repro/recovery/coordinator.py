"""The checkpoint coordinator: periodic aligned snapshots of a live query.

Protocol (Chandy–Lamport with aligned barriers, the Flink ABS variant):

1. ``request_checkpoint`` opens an epoch and asks every checkpointable
   source to inject a :class:`CheckpointBarrier` between two tuples; the
   source reports its exact replay position at the injection point.
2. Barriers flow downstream in-band. Each node aligns them across its
   inputs (handled by the SPE's ``NodeExecutor``), snapshots its state,
   and the scheduler's checkpoint listener forwards the snapshot here.
3. Once every participant node has acked and every source has reported
   its offsets, the epoch's *manifest* is committed — strictly last, so a
   crash mid-checkpoint leaves the epoch invisible to recovery.

With multi-producer merged streams (operator ``parallelism > 1``) barrier
*counting* aligns replicas but post-barrier tuples of one replica may
interleave before another replica's barrier arrives, so replicated
operator state is at-least-once; sink-side dedup
(:class:`~repro.recovery.dedup.DedupSink`) restores effectively-exactly-
once delivery. Single-replica chains (all tests and the default use case)
get exact cuts.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..kvstore.api import KVStore
from ..spe.barrier import CheckpointBarrier
from ..spe.query import Node
from .errors import CheckpointConfigError
from .storage import CheckpointStorage


class _Epoch:
    """Book-keeping for one in-flight checkpoint."""

    __slots__ = (
        "pending_nodes",
        "pending_sources",
        "stateful_nodes",
        "state_entries",
        "started",
        "done",
    )

    def __init__(self, nodes: set[str], sources: set[str]) -> None:
        self.pending_nodes = set(nodes)
        self.pending_sources = set(sources)
        self.stateful_nodes: set[str] = set()
        self.state_entries = 0
        self.started = time.monotonic()
        self.done = threading.Event()


class CheckpointCoordinator:
    """Drives aligned checkpoints of one deployed query into a KV store."""

    def __init__(
        self,
        store: KVStore | CheckpointStorage,
        interval: float | None = None,
        retain: int | None = None,
        on_epoch_committed: Callable[[int], None] | None = None,
    ) -> None:
        self.storage = (
            store if isinstance(store, CheckpointStorage) else CheckpointStorage(store)
        )
        if interval is not None and interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if retain is not None and retain < 1:
            raise ValueError("retain must keep at least one epoch")
        self._interval = interval
        self._retain = retain
        self._on_epoch_committed = on_epoch_committed
        # RLock: the commit path runs user callbacks that may re-enter
        # (e.g. trigger another checkpoint from on_epoch_committed).
        self._lock = threading.RLock()
        self._inflight: dict[int, _Epoch] = {}
        self._events: dict[int, threading.Event] = {}
        self._participants: set[str] = set()
        self._sources: dict[str, Any] = {}
        # Continue numbering after any previous run's epochs so recovery
        # always finds the newest state at the highest committed epoch.
        latest = self.storage.latest_epoch()
        self._next_epoch = 0 if latest is None else latest + 1
        self.completed_epochs: list[int] = []
        self.last_duration: float | None = None
        self._daemon: threading.Thread | None = None
        self._daemon_stop = threading.Event()
        self._m_total: Any | None = None
        self._m_duration: Any | None = None
        self._m_last_duration: Any | None = None
        self._m_entries: Any | None = None
        self._m_epoch: Any | None = None

    # -- wiring -------------------------------------------------------------

    def bind(self, nodes: list[Node]) -> None:
        """Discover participants from a materialized query graph.

        Called by ``StreamEngine`` after build. Every source must be able
        to carry barriers (``request_barrier``), else downstream alignment
        would wait forever on its silent input.
        """
        participants: set[str] = set()
        sources: dict[str, Any] = {}
        for node in nodes:
            if node.kind == "source":
                if not hasattr(node.source, "request_barrier"):
                    raise CheckpointConfigError(
                        f"source node {node.name!r} cannot carry barriers; wrap "
                        "it in repro.recovery.CheckpointableSource"
                    )
                sources[node.name] = node.source
            else:
                # A fused node acks once per constituent, under the original
                # node names, so manifests are identical across plan shapes.
                participants.update(node.checkpoint_names())
        with self._lock:
            self._participants = participants
            self._sources = sources

    def rebind(self, nodes: list[Node]) -> None:
        """Re-discover participants after an elastic rescale splices nodes.

        Must run *before* the scheduler splices the replacement executors:
        ``on_node_snapshot`` discards acks from names outside an epoch's
        pending set, so any checkpoint epoch still in flight has to expect
        the new replica names before they can start acking. For each such
        epoch, the retired group's outstanding names are swapped for the
        replacement names — the rescale barrier drained the old replicas
        after they forwarded any older checkpoint barriers, so the new
        replicas will see (and ack) those epochs' barriers from the
        boundary queue.
        """
        old_participants = self._participants
        self.bind(nodes)
        with self._lock:
            added = self._participants - old_participants
            removed = old_participants - self._participants
            for epoch, ep in list(self._inflight.items()):
                gone = ep.pending_nodes & removed
                if not gone:
                    continue
                ep.pending_nodes -= gone
                ep.pending_nodes |= added
                self._maybe_commit_locked(epoch, ep)

    def attach_metrics(self, registry: Any) -> None:
        """Export checkpoint health into an observability registry.

        Called by ``Strata`` when the pipeline runs with ``obs=``; the
        registry is duck-typed (``counter``/``gauge``/``histogram``) so this
        module keeps no import on ``repro.obs``. Size is approximated by
        the number of state entries captured per epoch — node state keys
        plus one per source position — so the commit path never re-pickles
        state just to weigh it.
        """
        self._m_total = registry.counter(
            "strata_checkpoints_total", "checkpoint epochs committed"
        )
        self._m_duration = registry.histogram(
            "strata_checkpoint_duration_seconds",
            "barrier injection to manifest commit",
            buckets=(0.005, 0.02, 0.1, 0.5, 2.0, 10.0),
        )
        self._m_last_duration = registry.gauge(
            "strata_checkpoint_last_duration_seconds",
            "duration of the newest committed checkpoint",
        )
        self._m_entries = registry.gauge(
            "strata_checkpoint_state_entries",
            "state entries captured by the newest committed checkpoint",
        )
        self._m_epoch = registry.gauge(
            "strata_checkpoint_epoch", "newest committed checkpoint epoch"
        )
        registry.gauge(
            "strata_checkpoints_inflight",
            "checkpoint epochs currently awaiting alignment",
            fn=lambda: float(len(self._inflight)),
        )

    # -- checkpoint lifecycle ------------------------------------------------

    def request_checkpoint(self) -> int:
        """Open an epoch and inject barriers; returns without waiting."""
        with self._lock:
            if not self._sources:
                raise CheckpointConfigError("coordinator is not bound to a query")
            epoch = self._next_epoch
            self._next_epoch += 1
            self._inflight[epoch] = _Epoch(self._participants, set(self._sources))
            self._events[epoch] = self._inflight[epoch].done
            sources = list(self._sources.items())
        barrier = CheckpointBarrier(epoch)
        for node_name, source in sources:
            # Acks are keyed by *node* name; the source only knows its own.
            source.request_barrier(
                barrier,
                lambda _src, ep, pos, name=node_name: self._on_source_position(
                    name, ep, pos
                ),
            )
        return epoch

    def trigger(self, timeout: float | None = 30.0) -> int:
        """Checkpoint synchronously: inject barriers and wait for commit."""
        epoch = self.request_checkpoint()
        if not self.wait_for(epoch, timeout):
            raise TimeoutError(f"checkpoint epoch {epoch} did not complete")
        return epoch

    def wait_for(self, epoch: int, timeout: float | None = None) -> bool:
        """Block until the epoch's manifest is committed (True on success)."""
        with self._lock:
            event = self._events.get(epoch)
        if event is None:
            return epoch in self.completed_epochs
        return event.wait(timeout)

    # -- callbacks from the running query ------------------------------------

    def _on_source_position(self, source_name: str, epoch: int, position: dict) -> None:
        """Invoked in the source thread at the exact barrier cut."""
        self.storage.save_source_position(epoch, source_name, position)
        # Pin pubsub offsets on the broker too, so plain consumer-group
        # restarts (outside full recovery) resume at the checkpoint.
        source = self._sources.get(source_name)
        if (
            position.get("kind") == "pubsub"
            and source is not None
            and hasattr(source.inner, "commit_offsets")
        ):
            source.inner.commit_offsets(position["offsets"])
        with self._lock:
            ep = self._inflight.get(epoch)
            if ep is None:
                return
            ep.pending_sources.discard(source_name)
            ep.state_entries += 1
            self._maybe_commit_locked(epoch, ep)

    def on_node_snapshot(self, node_name: str, epoch: int, state: dict | None) -> None:
        """Checkpoint listener the engine hands to its schedulers."""
        if state is not None:
            self.storage.save_node_state(epoch, node_name, state)
        with self._lock:
            ep = self._inflight.get(epoch)
            if ep is None or node_name not in ep.pending_nodes:
                return
            ep.pending_nodes.discard(node_name)
            if state is not None:
                ep.stateful_nodes.add(node_name)
                ep.state_entries += len(state)
            self._maybe_commit_locked(epoch, ep)

    def _maybe_commit_locked(self, epoch: int, ep: _Epoch) -> None:
        if ep.pending_nodes or ep.pending_sources:
            return
        del self._inflight[epoch]
        duration = time.monotonic() - ep.started
        manifest = {
            "epoch": epoch,
            "nodes": sorted(ep.stateful_nodes),
            "sources": sorted(self._sources),
            "duration_s": duration,
            "wall_time": time.time(),
        }
        # The single put below is the commit point of the whole epoch.
        self.storage.commit_manifest(epoch, manifest)
        self.completed_epochs.append(epoch)
        self.last_duration = duration
        if self._m_total is not None:
            self._m_total.inc()
            self._m_duration.observe(duration)
            self._m_last_duration.set(duration)
            self._m_entries.set(ep.state_entries)
            self._m_epoch.set(epoch)
        if self._retain is not None:
            self.storage.retain(self._retain)
        ep.done.set()
        if self._on_epoch_committed is not None:
            self._on_epoch_committed(epoch)

    # -- periodic mode -------------------------------------------------------

    def start_periodic(self) -> None:
        """Run ``request_checkpoint`` every ``interval`` seconds (daemon)."""
        if self._interval is None:
            raise CheckpointConfigError("no interval configured")
        if self._daemon is not None:
            return
        self._daemon_stop.clear()
        self._daemon = threading.Thread(
            target=self._periodic_loop, name="checkpoint-coordinator", daemon=True
        )
        self._daemon.start()

    def _periodic_loop(self) -> None:
        while not self._daemon_stop.wait(self._interval):
            with self._lock:
                backlog = len(self._inflight)
            if backlog >= 4:
                continue  # the pipeline is not keeping up; don't pile on
            try:
                self.request_checkpoint()
            except CheckpointConfigError:
                return  # unbound (query stopped); nothing left to do

    def stop(self) -> None:
        """Stop the periodic daemon (in-flight epochs may still commit)."""
        if self._daemon is None:
            return
        self._daemon_stop.set()
        self._daemon.join(timeout=5.0)
        self._daemon = None
