"""Chaos harness: kill a running pipeline mid-build, on purpose.

Recovery code that is only exercised by clean shutdowns is recovery code
that does not work. :class:`ChaosInjector` watches a running engine from a
background thread and stops it the moment a user condition holds (e.g.
"two checkpoints committed and five results delivered"), simulating an
operator/consumer crash at an adversarial moment. :class:`CrashingFunction`
injects a failure *inside* an operator instead, killing the node thread
through the engine's error path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..spe.tuples import StreamTuple


class ChaosError(RuntimeError):
    """The failure injected by chaos tooling."""


class ChaosInjector:
    """Stops an engine (crash-style) once a trigger condition holds."""

    def __init__(
        self,
        engine: Any,
        condition: Callable[[], bool],
        poll_interval: float = 0.005,
        timeout: float = 30.0,
    ) -> None:
        self._engine = engine
        self._condition = condition
        self._poll_interval = poll_interval
        self._timeout = timeout
        self._thread: threading.Thread | None = None
        self.fired = threading.Event()
        self.timed_out = False

    def start(self) -> "ChaosInjector":
        self._thread = threading.Thread(
            target=self._watch, name="chaos-injector", daemon=True
        )
        self._thread.start()
        return self

    def _watch(self) -> None:
        deadline = self._timeout / self._poll_interval
        polls = 0
        while polls < deadline:
            if self._condition():
                # Hard stop: node threads abandon queued work, exactly what
                # a crashed process would leave behind.
                self._engine.stop()
                self.fired.set()
                return
            threading.Event().wait(self._poll_interval)
            polls += 1
        self.timed_out = True

    def join(self, timeout: float | None = None) -> bool:
        """Wait until the kill fired (True) or the watcher gave up."""
        if self._thread is not None:
            self._thread.join(timeout)
        return self.fired.is_set()


class CrashingFunction:
    """Map-function wrapper that raises after N tuples pass through.

    Stateless by design (``ChaosError`` is the product, not the state), so
    it composes with checkpointable functions via MapOperator delegation.
    """

    def __init__(self, fn: Callable[[StreamTuple], Any], crash_after: int) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be non-negative")
        self._fn = fn
        self._remaining = crash_after

    def __call__(self, t: StreamTuple) -> Any:
        if self._remaining <= 0:
            raise ChaosError("injected operator crash")
        self._remaining -= 1
        return self._fn(t)
