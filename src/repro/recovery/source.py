"""Barrier-capable source wrapper.

:class:`CheckpointableSource` decorates any SPE source so the checkpoint
coordinator can inject :class:`~repro.spe.barrier.CheckpointBarrier` items
into its tuple stream. The barrier is yielded *by the source's own
iterator, between tuples*, which is the only place where the source's
replay position exactly matches the barrier's position in the stream —
injecting from another thread would race against in-flight tuples.

Two position models, chosen by duck-typing the inner source:

* **pubsub** — the inner source exposes ``offsets()``/``seek()`` (e.g.
  :class:`~repro.core.connectors.PubSubReaderSource`); positions are
  per-partition broker offsets and restore is an exact seek.
* **count** — any other source; the position is the number of tuples
  emitted, and restore skips that many tuples on the next iteration
  (correct whenever the source replays deterministically, which holds for
  the replayed-print datasets this repo uses).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from ..spe.barrier import CheckpointBarrier
from ..spe.source import Source
from ..spe.tuples import StreamTuple

#: (source_name, epoch, position) — invoked at the exact injection point
OffsetCallback = Callable[[str, int, dict], None]

KIND_PUBSUB = "pubsub"
KIND_COUNT = "count"


class CheckpointableSource(Source):
    """Wraps a source so barriers can be injected at exact cut points."""

    def __init__(self, inner: Source, name: str | None = None) -> None:
        super().__init__(name or inner.name)
        self._inner = inner
        self._lock = threading.Lock()
        self._pending: list[tuple[CheckpointBarrier, OffsetCallback | None]] = []
        self._emitted = 0
        self._skip = 0

    @property
    def inner(self) -> Source:
        return self._inner

    @property
    def emitted(self) -> int:
        """Tuples emitted so far (excludes barriers and skipped replays)."""
        return self._emitted

    def request_barrier(
        self, barrier: CheckpointBarrier, on_inject: OffsetCallback | None = None
    ) -> None:
        """Ask the source to emit ``barrier`` before its next tuple.

        Thread-safe; the barrier is injected by the source's own thread, at
        which point ``on_inject`` receives the captured position.
        """
        with self._lock:
            self._pending.append((barrier, on_inject))

    def position(self) -> dict[str, Any]:
        """Current replay position in a restore_position-compatible dict."""
        if hasattr(self._inner, "offsets"):
            return {"kind": KIND_PUBSUB, "offsets": self._inner.offsets()}
        return {"kind": KIND_COUNT, "emitted": self._emitted}

    def restore_position(self, position: dict[str, Any]) -> None:
        """Rewind/advance so the next tuple is the one after the cut."""
        kind = position["kind"]
        if kind == KIND_PUBSUB:
            self._inner.seek(position["offsets"])
        elif kind == KIND_COUNT:
            self._skip = int(position["emitted"])
            self._emitted = 0
        else:
            raise ValueError(f"unknown source position kind {kind!r}")

    def _drain(self) -> Iterator[CheckpointBarrier]:
        with self._lock:
            pending, self._pending = self._pending, []
        for barrier, on_inject in pending:
            if on_inject is not None:
                on_inject(self.name, barrier.epoch, self.position())
            yield barrier

    def __iter__(self) -> Iterator[StreamTuple | CheckpointBarrier]:
        iterator = iter(self._inner)
        while True:
            # Drain BEFORE pulling the next tuple: once a tuple is pulled,
            # a pubsub inner's offsets already point past it, so a barrier
            # taken then would both replay the tuple and have emitted it.
            yield from self._drain()
            try:
                t = next(iterator)
            except StopIteration:
                yield from self._drain()
                return
            if self._skip > 0:
                self._skip -= 1
                self._emitted += 1
                continue
            yield t
            self._emitted += 1
