"""Exception hierarchy for the checkpoint/recovery subsystem."""

from __future__ import annotations

from ..spe.errors import SPEError


class RecoveryError(SPEError):
    """Base class for checkpoint and recovery failures."""


class CheckpointConfigError(RecoveryError):
    """Raised when a query cannot be checkpointed as configured.

    Typically: a source that cannot carry barriers, so downstream
    operators would block forever waiting for alignment.
    """


class NoCheckpointError(RecoveryError):
    """Raised when recovery is requested but no committed epoch exists."""
