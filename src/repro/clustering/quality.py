"""Cluster quality metrics for the A2 ablation (DBSCAN vs k-means)."""

from __future__ import annotations

import numpy as np


def pair_confusion(labels_a: np.ndarray, labels_b: np.ndarray) -> tuple[int, int, int, int]:
    """Pairwise agreement counts between two labelings.

    Returns (both_same, a_same_b_diff, a_diff_b_same, both_diff) over all
    unordered point pairs. Noise points (label < 0) are treated as
    singleton clusters, so two noise points never count as "same".
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError("labelings must have equal length")
    n = len(labels_a)
    # Re-label noise as unique negative ids so no two noise points match.
    a = labels_a.astype(np.int64).copy()
    b = labels_b.astype(np.int64).copy()
    a[a < 0] = -np.arange(1, (a < 0).sum() + 1)
    b[b < 0] = -np.arange(1, (b < 0).sum() + 1)
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    ss = int((same_a & same_b & upper).sum())
    sd = int((same_a & ~same_b & upper).sum())
    ds = int((~same_a & same_b & upper).sum())
    dd = int((~same_a & ~same_b & upper).sum())
    return ss, sd, ds, dd


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index in [0, 1]; 1 means identical partitions."""
    ss, sd, ds, dd = pair_confusion(labels_a, labels_b)
    total = ss + sd + ds + dd
    if total == 0:
        return 1.0
    return (ss + dd) / total


def detection_scores(
    predicted: np.ndarray, ground_truth: np.ndarray
) -> dict[str, float]:
    """Precision/recall/F1 of "point belongs to some cluster" vs truth mask.

    ``predicted`` holds cluster labels (noise < 0); ``ground_truth`` is a
    boolean mask of points that truly lie in a defect region.
    """
    predicted = np.asarray(predicted)
    truth = np.asarray(ground_truth, dtype=bool)
    flagged = predicted >= 0
    tp = int((flagged & truth).sum())
    fp = int((flagged & ~truth).sum())
    fn = int((~flagged & truth).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1, "tp": tp, "fp": fp, "fn": fn}
