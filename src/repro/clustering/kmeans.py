"""k-means clustering: the prior-work baseline.

The paper motivates DBSCAN by contrast with earlier defect-detection work
that used k-means [29]; this module provides that comparator for the
ablation benchmark (A2). Lloyd's algorithm with k-means++ seeding and a
deterministic RNG.
"""

from __future__ import annotations

import numpy as np


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose k initial centroids with the k-means++ strategy."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = np.einsum("ij,ij->i", points - centroids[0], points - centroids[0])
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids.
            centroids[i:] = centroids[0]
            break
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centroids[i] = points[choice]
        dist_sq = np.einsum(
            "ij,ij->i", points - centroids[i], points - centroids[i]
        )
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Cluster ``points`` into ``k`` groups.

    Returns ``(labels, centroids, iterations)``. Deterministic for a fixed
    seed. Empty clusters are re-seeded from the point farthest from its
    centroid, keeping exactly k clusters alive.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = len(points)
    if k < 1:
        raise ValueError("k must be >= 1")
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty((0, points.shape[1])), 0
    k = min(k, n)
    rng = np.random.default_rng(seed)
    centroids = kmeans_plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        # Update step.
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                farthest = int(dists.min(axis=1).argmax())
                new_centroids[cluster] = points[farthest]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            return labels, centroids, iteration
    return labels, centroids, max_iter


def inertia(points: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """Within-cluster sum of squared distances (k-means objective)."""
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    total = 0.0
    for cluster in range(len(centroids)):
        members = points[labels == cluster]
        if len(members):
            diffs = members - centroids[cluster]
            total += float(np.einsum("ij,ij->", diffs, diffs))
    return total
