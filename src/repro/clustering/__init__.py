"""Clustering algorithms used by STRATA's Event Aggregator.

From-scratch DBSCAN (grid-accelerated) with an incremental cross-layer
variant implementing the paper's ``correlateEvents(L, DBSCAN)`` semantics,
plus the k-means baseline from prior defect-detection work.
"""

from .dbscan import NOISE, GridIndex, core_point_mask, dbscan
from .incremental import (
    ClusteringResult,
    ClusterSummary,
    IncrementalLayerClusterer,
    LayerWindowClusterer,
    summarize_clusters,
)
from .kmeans import inertia, kmeans, kmeans_plus_plus_init
from .quality import detection_scores, pair_confusion, rand_index

__all__ = [
    "dbscan",
    "GridIndex",
    "core_point_mask",
    "NOISE",
    "LayerWindowClusterer",
    "IncrementalLayerClusterer",
    "ClusteringResult",
    "ClusterSummary",
    "summarize_clusters",
    "kmeans",
    "kmeans_plus_plus_init",
    "inertia",
    "rand_index",
    "pair_confusion",
    "detection_scores",
]
