"""DBSCAN — Density-Based Spatial Clustering of Applications with Noise.

From-scratch implementation of Ester et al. (KDD-96), the clustering
method the paper's use case plugs into ``correlateEvents``: it needs no
pre-declared cluster count and finds clusters of arbitrary shape — the
properties §5 cites for preferring it over k-means.

Neighborhood queries use a uniform grid with bucket edge ``eps``: all
points within ``eps`` of a query point lie in the 3^d adjacent buckets, so
expected query cost is proportional to local density instead of n.
A naive O(n²) search is kept for the ablation benchmark (A3) and as a
cross-check oracle in tests.

Small inputs (the per-window event sets ``correlateEvents`` clusters every
layer are a few dozen points) skip the grid entirely: one broadcast
computes the full pairwise neighbor matrix, and the BFS expands over
pre-extracted neighbor rows. Building the grid's buckets and candidate
caches costs more than the O(n²) matrix until well past a thousand
points, and the labels are identical — cluster membership in DBSCAN does
not depend on the order neighbors are enumerated.

Labels follow scikit-learn conventions: cluster ids are 0..k-1 and noise
is ``-1``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

NOISE = -1
UNVISITED = -2

#: below this size, a full pairwise neighbor matrix beats the grid index
DENSE_CUTOFF = 768


class GridIndex:
    """Uniform-grid spatial index supporting eps-neighborhood queries.

    All points sharing a grid cell also share their candidate set (the
    union of the 3^d adjacent buckets), so candidate arrays are built once
    per *cell* and cached — in the dense defect blobs this code clusters,
    that removes almost all per-point Python overhead.
    """

    def __init__(self, points: np.ndarray, eps: float) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be a (n, d) array")
        self._points = points
        self._eps = eps
        self._buckets: dict[tuple[int, ...], list[int]] = {}
        self._point_cells: list[tuple[int, ...]] = []
        if len(points):
            cells = np.floor(points / eps).astype(np.int64)
            self._point_cells = list(map(tuple, cells))
            for index, cell in enumerate(self._point_cells):
                self._buckets.setdefault(cell, []).append(index)
        self._dim = points.shape[1]
        # Pre-compute neighbor cell offsets (3^d patterns).
        self._offsets = _neighbor_offsets(self._dim)
        self._candidate_cache: dict[tuple[int, ...], np.ndarray] = {}

    def _candidates_for_cell(self, cell: tuple[int, ...]) -> np.ndarray:
        cached = self._candidate_cache.get(cell)
        if cached is not None:
            return cached
        candidates: list[int] = []
        for offset in self._offsets:
            bucket = self._buckets.get(tuple(c + o for c, o in zip(cell, offset)))
            if bucket:
                candidates.extend(bucket)
        result = np.asarray(candidates, dtype=np.int64)
        self._candidate_cache[cell] = result
        return result

    def neighbors(self, index: int) -> np.ndarray:
        """Indices of all points within eps of point ``index`` (inclusive)."""
        cand = self._candidates_for_cell(self._point_cells[index])
        if len(cand) == 0:
            return cand
        diffs = self._points[cand] - self._points[index]
        mask = np.einsum("ij,ij->i", diffs, diffs) <= self._eps * self._eps
        return cand[mask]


def _neighbor_offsets(dim: int) -> list[tuple[int, ...]]:
    if dim == 0:
        return []
    offsets: list[tuple[int, ...]] = [()]
    for _ in range(dim):
        offsets = [prev + (delta,) for prev in offsets for delta in (-1, 0, 1)]
    return offsets


def _naive_neighbors(points: np.ndarray, index: int, eps: float) -> np.ndarray:
    diffs = points - points[index]
    mask = np.einsum("ij,ij->i", diffs, diffs) <= eps * eps
    return np.nonzero(mask)[0]


def dbscan(
    points: np.ndarray | Iterable[Iterable[float]],
    eps: float,
    min_samples: int,
    use_grid: bool = True,
) -> np.ndarray:
    """Cluster ``points``; returns an (n,) label array (noise = -1).

    ``min_samples`` counts the point itself, matching the common
    convention: a point is *core* when its eps-neighborhood (inclusive)
    holds at least ``min_samples`` points.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = len(points)
    labels = np.full(n, UNVISITED, dtype=np.int64)
    if n == 0:
        return labels
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    if eps <= 0:
        raise ValueError("eps must be positive")

    if use_grid and n <= DENSE_CUTOFF:
        # Array-at-a-time fast path: one broadcast yields every
        # eps-neighborhood at once. Same subtract-square-sum arithmetic as
        # the per-point searches, so the masks are bit-identical.
        diffs = points[:, None, :] - points[None, :, :]
        within = np.einsum("ijk,ijk->ij", diffs, diffs) <= eps * eps
        # one nonzero over the whole matrix, split into per-row views
        # (every row is non-empty: a point neighbors itself)
        i_idx, j_idx = np.nonzero(within)
        counts = np.bincount(i_idx, minlength=n)
        rows = np.split(j_idx, np.cumsum(counts)[:-1])
        neighbors = rows.__getitem__
    elif use_grid:
        index = GridIndex(points, eps)
        neighbors = index.neighbors
    else:
        neighbors = lambda i: _naive_neighbors(points, i, eps)  # noqa: E731

    def absorb(found: np.ndarray, cluster: int, queue: deque) -> None:
        """Claim unvisited/noise neighbors for ``cluster``.

        Only previously-unvisited points are queued for expansion: a point
        already marked NOISE had its neighborhood computed and is known
        non-core, so it joins as a border point without re-expansion.
        """
        found_labels = labels[found]
        unvisited = found[found_labels == UNVISITED]
        noise = found[found_labels == NOISE]
        labels[noise] = cluster
        labels[unvisited] = cluster
        queue.extend(unvisited.tolist())

    cluster = 0
    for seed in range(n):
        if labels[seed] != UNVISITED:
            continue
        seed_neighbors = neighbors(seed)
        if len(seed_neighbors) < min_samples:
            labels[seed] = NOISE
            continue
        # Grow a new cluster from this core point (BFS over core points).
        labels[seed] = cluster
        queue: deque[int] = deque()
        absorb(seed_neighbors, cluster, queue)
        while queue:
            current = queue.popleft()
            current_neighbors = neighbors(current)
            if len(current_neighbors) < min_samples:
                continue  # border point: belongs to the cluster, does not expand it
            absorb(current_neighbors, cluster, queue)
        cluster += 1
    return labels


def core_point_mask(points: np.ndarray, eps: float, min_samples: int) -> np.ndarray:
    """Boolean mask of core points (used by property tests)."""
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    if len(points) == 0:
        return np.zeros(0, dtype=bool)
    index = GridIndex(points, eps)
    return np.array([len(index.neighbors(i)) >= min_samples for i in range(len(points))])
