"""Cross-layer cluster correlation (the `correlateEvents` engine).

The paper's Event Aggregator clusters thermal-anomaly events *within and
across layers*: each new layer's events are clustered together with the
events of the previous ``L`` layers, so a defect growing through the build
height shows up as one three-dimensional cluster (parameter ``L`` bounds
how many layers a cluster can expand through — Figure 6 sweeps it).

Two implementations:

* :class:`LayerWindowClusterer` — the reference: keeps the last ``L``
  layers of points and re-runs grid DBSCAN over the whole window each time
  a layer completes. Simple, and the semantics are by-construction exactly
  "DBSCAN over the last L layers".
* :class:`IncrementalLayerClusterer` — an optimization candidate for the
  ablation suite: caches each retained layer's point array so window
  assembly is O(window) instead of re-extracting, and skips clustering
  when the new layer adds no points and none expired.

Points are 3-D: (x_mm, y_mm, z_mm), where z encodes the layer index times
the layer thickness, so ``eps`` has one spatial meaning in-plane and
across layers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .dbscan import dbscan


@dataclass(frozen=True)
class ClusterSummary:
    """One cluster of anomalous cells, as reported to the expert."""

    cluster_id: int
    size: int
    centroid: tuple[float, ...]
    bbox_min: tuple[float, ...]
    bbox_max: tuple[float, ...]
    layers: tuple[int, int]  # (first layer, last layer) the cluster spans
    volume_mm3: float


@dataclass
class ClusteringResult:
    """Labels plus per-cluster summaries for one window evaluation."""

    labels: np.ndarray
    points: np.ndarray
    point_layers: np.ndarray
    summaries: list[ClusterSummary] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        valid = self.labels[self.labels >= 0]
        return int(len(np.unique(valid))) if len(valid) else 0

    @property
    def noise_count(self) -> int:
        return int((self.labels < 0).sum())


def summarize_clusters(
    points: np.ndarray,
    labels: np.ndarray,
    point_layers: np.ndarray,
    cell_volume_mm3: float,
    min_volume_mm3: float = 0.0,
) -> list[ClusterSummary]:
    """Build per-cluster reports, dropping clusters below ``min_volume_mm3``.

    The use case reports anomalous regions only "when bigger than a certain
    volume" (§5); volume is estimated as cell count x per-cell volume.
    """
    summaries: list[ClusterSummary] = []
    for cluster_id in sorted(int(c) for c in np.unique(labels) if c >= 0):
        mask = labels == cluster_id
        members = points[mask]
        layer_span = point_layers[mask]
        volume = float(mask.sum()) * cell_volume_mm3
        if volume < min_volume_mm3:
            continue
        summaries.append(
            ClusterSummary(
                cluster_id=cluster_id,
                size=int(mask.sum()),
                centroid=tuple(float(v) for v in members.mean(axis=0)),
                bbox_min=tuple(float(v) for v in members.min(axis=0)),
                bbox_max=tuple(float(v) for v in members.max(axis=0)),
                layers=(int(layer_span.min()), int(layer_span.max())),
                volume_mm3=volume,
            )
        )
    return summaries


class LayerWindowClusterer:
    """Re-clusters the sliding window of the last ``L`` layers per update."""

    def __init__(
        self,
        window_layers: int,
        eps: float,
        min_samples: int,
        layer_thickness_mm: float,
        cell_volume_mm3: float = 1.0,
        min_volume_mm3: float = 0.0,
    ) -> None:
        if window_layers < 1:
            raise ValueError("window must cover at least one layer")
        self._window_layers = window_layers
        self._eps = eps
        self._min_samples = min_samples
        self._thickness = layer_thickness_mm
        self._cell_volume = cell_volume_mm3
        self._min_volume = min_volume_mm3
        # deque of (layer_index, (n, 2) xy array)
        self._layers: deque[tuple[int, np.ndarray]] = deque()

    @property
    def window_layers(self) -> int:
        return self._window_layers

    def snapshot_state(self) -> dict[str, object]:
        """Checkpointable window contents (the L retained layers)."""
        return {"layers": [(layer, xy.copy()) for layer, xy in self._layers]}

    def restore_state(self, state: dict[str, object]) -> None:
        self._layers = deque(
            (int(layer), np.asarray(xy, dtype=float).reshape(-1, 2))
            for layer, xy in state["layers"]
        )

    def observe_layer(self, layer: int, xy_points: np.ndarray) -> ClusteringResult:
        """Add one completed layer's event points and cluster the window."""
        xy_points = np.asarray(xy_points, dtype=float).reshape(-1, 2)
        self._layers.append((layer, xy_points))
        while len(self._layers) > self._window_layers:
            self._layers.popleft()
        return self._cluster()

    def _cluster(self) -> ClusteringResult:
        if not self._layers:
            empty = np.empty((0, 3))
            return ClusteringResult(
                labels=np.empty(0, dtype=np.int64),
                points=empty,
                point_layers=np.empty(0, dtype=np.int64),
            )
        blocks = []
        layer_ids = []
        for layer, xy in self._layers:
            if len(xy) == 0:
                continue
            z = np.full((len(xy), 1), layer * self._thickness)
            blocks.append(np.hstack([xy, z]))
            layer_ids.append(np.full(len(xy), layer, dtype=np.int64))
        if not blocks:
            empty = np.empty((0, 3))
            return ClusteringResult(
                labels=np.empty(0, dtype=np.int64),
                points=empty,
                point_layers=np.empty(0, dtype=np.int64),
            )
        points = np.vstack(blocks)
        point_layers = np.concatenate(layer_ids)
        labels = dbscan(points, self._eps, self._min_samples)
        summaries = summarize_clusters(
            points, labels, point_layers, self._cell_volume, self._min_volume
        )
        return ClusteringResult(labels, points, point_layers, summaries)


class IncrementalLayerClusterer(LayerWindowClusterer):
    """Window clusterer that avoids re-clustering no-op updates.

    When a layer arrives with zero event points and no retained layer
    expires, the previous result is still valid; this variant returns the
    cached result in that case. Used in the A1/A3 ablation discussion —
    with sparse defects most layers are empty, so the saving is real.
    """

    def __init__(self, *args: float, **kwargs: float) -> None:
        super().__init__(*args, **kwargs)
        self._cached: ClusteringResult | None = None

    def restore_state(self, state: dict[str, object]) -> None:
        super().restore_state(state)
        # The cached result belongs to the pre-crash instance; recompute
        # lazily from the restored window on the next observe_layer.
        self._cached = None

    def observe_layer(self, layer: int, xy_points: np.ndarray) -> ClusteringResult:
        xy_points = np.asarray(xy_points, dtype=float).reshape(-1, 2)
        will_expire = len(self._layers) >= self._window_layers and len(self._layers) > 0
        expiring_nonempty = will_expire and len(self._layers[0][1]) > 0
        if len(xy_points) == 0 and not expiring_nonempty and self._cached is not None:
            self._layers.append((layer, xy_points))
            while len(self._layers) > self._window_layers:
                self._layers.popleft()
            return self._cached
        result = super().observe_layer(layer, xy_points)
        self._cached = result
        return result
