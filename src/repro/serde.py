"""Shared serialization codecs: storage values and wire payloads.

Two codecs live here, layered on the same one-byte tag scheme:

* the **storage codec** (``encode_value``/``decode_value``), extracted from
  ``repro.kvstore.api`` — bytes pass through (``b``), JSON-exact values are
  stored as JSON (``j``), everything else pickles (``p``). The kvstore
  keeps its historical behaviour: pickle is always accepted on decode.
* the **wire codec** (``encode_wire``/``decode_wire``), used by
  ``repro.net`` — adds two tags the network path needs: ``n`` for numpy
  arrays (dtype/shape header + raw buffer, no pickle) and ``t`` for
  :class:`~repro.spe.tuples.StreamTuple` (JSON metadata + recursively
  encoded payload entries). On the wire, pickle frames are **refused by
  default** in both directions — a networked broker must not execute
  arbitrary bytecode from a peer — and only enabled explicitly
  (``allow_pickle=True``) inside the trusted distributed runtime.

Both sides share tags, so a wire frame whose value happens to be plain
JSON is byte-identical to its stored form.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any

TAG_BYTES = b"b"
TAG_JSON = b"j"
TAG_PICKLE = b"p"
TAG_NDARRAY = b"n"
TAG_TUPLE = b"t"

_U32 = struct.Struct("!I")


class SerdeError(ValueError):
    """Malformed or unsupported serialized data."""


class PickleRefusedError(SerdeError):
    """A pickle frame was seen on a path where pickle is not enabled."""


def _json_roundtrips(value: Any) -> bool:
    """True when JSON encoding reproduces ``value`` exactly.

    ``json.dumps`` silently coerces tuples to lists (and non-string dict
    keys to strings), so "it serialized without error" is not enough for a
    store that must return exactly what was put.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return value == value and value not in (float("inf"), float("-inf"))
    if isinstance(value, list):
        return all(_json_roundtrips(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_roundtrips(item)
            for key, item in value.items()
        )
    return False


# -- storage codec (kvstore) -------------------------------------------------


def encode_value(value: Any) -> bytes:
    """Serialize an arbitrary Python value for storage.

    Values that are already ``bytes`` pass through untouched; values that
    JSON reproduces exactly are stored as JSON (portable, inspectable);
    everything else — tuples, sets, NaN, arbitrary objects — is pickled.
    A one-byte tag records the codec used.
    """
    if isinstance(value, bytes):
        return TAG_BYTES + value
    if _json_roundtrips(value):
        return TAG_JSON + json.dumps(value).encode("utf-8")
    return TAG_PICKLE + pickle.dumps(value)


def decode_value(data: bytes, allow_pickle: bool = True) -> Any:
    """Inverse of :func:`encode_value`."""
    tag, body = data[:1], data[1:]
    if tag == TAG_BYTES:
        return body
    if tag == TAG_JSON:
        return json.loads(body.decode("utf-8"))
    if tag == TAG_PICKLE:
        if not allow_pickle:
            raise PickleRefusedError(
                "refusing to unpickle: pickle frames are disabled on this path"
            )
        return pickle.loads(body)
    raise SerdeError(f"unknown value codec tag {tag!r}")


# -- wire codec (repro.net) --------------------------------------------------


def encode_wire(value: Any, allow_pickle: bool = False) -> bytes:
    """Serialize a value for the network, avoiding pickle where possible.

    Stream tuples and numpy arrays — the payloads STRATA connectors carry —
    get dedicated pickle-free encodings. Anything that would fall back to
    pickle raises :class:`PickleRefusedError` at the *sender* unless
    ``allow_pickle`` is set, so misconfiguration fails fast and loudly.
    """
    import numpy as np

    from .spe.tuples import StreamTuple

    if isinstance(value, StreamTuple):
        keys = list(value.payload)
        meta = json.dumps(
            {
                "tau": value.tau,
                "job": value.job,
                "layer": value.layer,
                "specimen": value.specimen,
                "portion": value.portion,
                "ingest_time": value.ingest_time,
                "trace_id": value.trace_id,
                "keys": keys,
            }
        ).encode("utf-8")
        parts = [TAG_TUPLE, _U32.pack(len(meta)), meta]
        for key in keys:
            blob = encode_wire(value.payload[key], allow_pickle)
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        return b"".join(parts)
    if isinstance(value, np.ndarray) and not value.dtype.hasobject:
        array = np.ascontiguousarray(value)
        header = json.dumps(
            {"dtype": array.dtype.str, "shape": list(array.shape)}
        ).encode("utf-8")
        return TAG_NDARRAY + _U32.pack(len(header)) + header + array.tobytes()
    if isinstance(value, bytes):
        return TAG_BYTES + value
    if _json_roundtrips(value):
        return TAG_JSON + json.dumps(value).encode("utf-8")
    if not allow_pickle:
        raise PickleRefusedError(
            f"value of type {type(value).__name__} needs pickle, which is "
            "disabled on the network path (pass allow_pickle=True on a "
            "trusted link to enable it)"
        )
    return TAG_PICKLE + pickle.dumps(value)


def decode_wire(data: bytes, allow_pickle: bool = False) -> Any:
    """Inverse of :func:`encode_wire`; pickle gated exactly the same way."""
    import numpy as np

    from .spe.tuples import StreamTuple

    tag, body = data[:1], data[1:]
    if tag == TAG_TUPLE:
        meta_len = _U32.unpack_from(body)[0]
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
        payload: dict[str, Any] = {}
        cursor = 4 + meta_len
        for key in meta["keys"]:
            blob_len = _U32.unpack_from(body, cursor)[0]
            cursor += 4
            payload[key] = decode_wire(body[cursor : cursor + blob_len], allow_pickle)
            cursor += blob_len
        t = StreamTuple(
            tau=meta["tau"],
            job=meta["job"],
            layer=meta["layer"],
            payload=payload,
            specimen=meta["specimen"],
            portion=meta["portion"],
            ingest_time=meta["ingest_time"],
        )
        t.trace_id = meta["trace_id"]
        return t
    if tag == TAG_NDARRAY:
        header_len = _U32.unpack_from(body)[0]
        header = json.loads(body[4 : 4 + header_len].decode("utf-8"))
        raw = body[4 + header_len :]
        array = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
        return array.reshape(header["shape"]).copy()
    if tag in (TAG_BYTES, TAG_JSON, TAG_PICKLE):
        return decode_value(data, allow_pickle=allow_pickle)
    raise SerdeError(f"unknown wire codec tag {tag!r}")
