"""Shared serialization codecs: storage values and wire payloads.

Two codecs live here, layered on the same one-byte tag scheme:

* the **storage codec** (``encode_value``/``decode_value``), extracted from
  ``repro.kvstore.api`` — bytes pass through (``b``), JSON-exact values are
  stored as JSON (``j``), everything else pickles (``p``). The kvstore
  keeps its historical behaviour: pickle is always accepted on decode.
* the **wire codec** (``encode_wire``/``decode_wire``), used by
  ``repro.net`` — a **registry of tagged codecs** (see
  :func:`register_codec`). The built-in entries cover numpy arrays
  (``n``: dtype/shape header + raw buffer, no pickle) and
  :class:`~repro.spe.tuples.StreamTuple` (``t``: JSON metadata +
  recursively encoded payload entries) on top of the storage tags.
  Transports add their own: the shared-memory payload plane registers an
  ``ndarray-shm`` codec (:mod:`repro.net.shm`) whose frames carry slab
  handles instead of pixels.

Pickle on the wire is a *registry flag*, not a special case: any codec
registered ``trusted_only=True`` (the built-in pickle fallback is the only
one) is refused in both directions unless the caller opts in
(``allow_pickle=True``), because a networked broker must not execute
arbitrary bytecode from a peer. Unknown tags raise a structured
:class:`SerdeError` whose ``tag`` attribute names the offending byte.

Both sides share tags, so a wire frame whose value happens to be plain
JSON is byte-identical to its stored form.
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Callable

TAG_BYTES = b"b"
TAG_JSON = b"j"
TAG_PICKLE = b"p"
TAG_NDARRAY = b"n"
TAG_TUPLE = b"t"

#: bumped whenever a built-in tag's byte layout changes; registered codecs
#: carry their own semantic versions via the ``version=`` registry field
WIRE_CODEC_VERSION = 3

_U32 = struct.Struct("!I")


class SerdeError(ValueError):
    """Malformed or unsupported serialized data.

    ``tag`` names the offending codec tag byte when the failure is an
    unknown or unusable tag (else ``None``), so callers can branch on the
    exact codec a peer tried to use.
    """

    def __init__(self, message: str, tag: bytes | None = None) -> None:
        super().__init__(message)
        self.tag = tag


class PickleRefusedError(SerdeError):
    """A pickle frame was seen on a path where pickle is not enabled."""


def _json_roundtrips(value: Any) -> bool:
    """True when JSON encoding reproduces ``value`` exactly.

    ``json.dumps`` silently coerces tuples to lists (and non-string dict
    keys to strings), so "it serialized without error" is not enough for a
    store that must return exactly what was put.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return value == value and value not in (float("inf"), float("-inf"))
    if isinstance(value, list):
        return all(_json_roundtrips(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_roundtrips(item)
            for key, item in value.items()
        )
    return False


# -- storage codec (kvstore) -------------------------------------------------


def encode_value(value: Any) -> bytes:
    """Serialize an arbitrary Python value for storage.

    Values that are already ``bytes`` pass through untouched; values that
    JSON reproduces exactly are stored as JSON (portable, inspectable);
    everything else — tuples, sets, NaN, arbitrary objects — is pickled.
    A one-byte tag records the codec used.
    """
    if isinstance(value, bytes):
        return TAG_BYTES + value
    if _json_roundtrips(value):
        return TAG_JSON + json.dumps(value).encode("utf-8")
    return TAG_PICKLE + pickle.dumps(value)


def decode_value(data: bytes, allow_pickle: bool = True) -> Any:
    """Inverse of :func:`encode_value`."""
    tag, body = data[:1], data[1:]
    if tag == TAG_BYTES:
        return body
    if tag == TAG_JSON:
        return json.loads(body.decode("utf-8"))
    if tag == TAG_PICKLE:
        if not allow_pickle:
            raise PickleRefusedError(
                "refusing to unpickle: pickle frames are disabled on this path"
            )
        return pickle.loads(body)
    raise SerdeError(f"unknown value codec tag {tag!r}", tag=tag)


# -- wire codec registry (repro.net) -----------------------------------------


@dataclass
class SerdeContext:
    """Per-call state threaded through codec encode/decode hooks.

    ``allow_pickle`` gates every ``trusted_only`` codec; ``options`` is a
    scratch mapping transports use to hand their payload planes to the
    codecs they registered (e.g. the shm plane and its role on this side
    of the link).
    """

    allow_pickle: bool = False
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WireCodec:
    """One registered wire codec.

    ``encode(value, ctx)`` returns the complete tagged byte string — it
    normally starts with ``tag`` but may *delegate* to another codec's
    encoding (the shm codec falls back to the plain ndarray layout when
    its ring is full). ``decode(body, ctx)`` receives everything after the
    tag byte. ``matches(value, ctx)`` decides whether this codec claims a
    value on encode; codecs with ``matches=None`` are decode-only.
    """

    tag: bytes
    encode: Callable[[Any, SerdeContext], bytes]
    decode: Callable[[bytes, SerdeContext], Any]
    matches: Callable[[Any, SerdeContext], bool] | None = None
    priority: int = 0
    trusted_only: bool = False
    version: int = 1
    name: str = ""


_CODECS: dict[bytes, WireCodec] = {}
_ENCODE_ORDER: list[WireCodec] = []


def register_codec(
    tag: bytes,
    encode: Callable[[Any, SerdeContext], bytes],
    decode: Callable[[bytes, SerdeContext], Any],
    *,
    matches: Callable[[Any, SerdeContext], bool] | None = None,
    priority: int = 0,
    trusted_only: bool = False,
    version: int = 1,
    name: str = "",
    replace: bool = False,
) -> WireCodec:
    """Register a wire codec under a one-byte ``tag``.

    Encode candidates are tried in descending ``priority`` (ties: first
    registered wins); the first whose ``matches`` claims the value encodes
    it. ``trusted_only=True`` puts the codec behind the pickle gate: both
    encoding to and decoding from it require ``allow_pickle=True``.
    Re-registering a live tag raises unless ``replace=True``.
    """
    if not isinstance(tag, bytes) or len(tag) != 1:
        raise SerdeError(f"codec tag must be a single byte, got {tag!r}")
    if tag in _CODECS and not replace:
        raise SerdeError(
            f"wire codec tag {tag!r} already registered "
            f"({_CODECS[tag].name or 'unnamed'}); pass replace=True to override",
            tag=tag,
        )
    codec = WireCodec(
        tag=tag,
        encode=encode,
        decode=decode,
        matches=matches,
        priority=priority,
        trusted_only=trusted_only,
        version=version,
        name=name or tag.decode("latin-1"),
    )
    if tag in _CODECS:
        _ENCODE_ORDER[:] = [c for c in _ENCODE_ORDER if c.tag != tag]
    _CODECS[tag] = codec
    if codec.matches is not None:
        _ENCODE_ORDER.append(codec)
        _ENCODE_ORDER.sort(key=lambda c: -c.priority)
    return codec


def registered_codecs() -> dict[str, dict[str, Any]]:
    """Public view of the registry: name, tag, version, trust, priority."""
    return {
        codec.name: {
            "tag": codec.tag.decode("latin-1"),
            "version": codec.version,
            "trusted_only": codec.trusted_only,
            "priority": codec.priority,
            "encodes": codec.matches is not None,
        }
        for codec in _CODECS.values()
    }


def encode_wire(
    value: Any, allow_pickle: bool = False, context: SerdeContext | None = None
) -> bytes:
    """Serialize a value for the network, avoiding pickle where possible.

    Walks the codec registry by priority; the first codec claiming the
    value encodes it. Anything that would fall back to a ``trusted_only``
    codec (pickle) raises :class:`PickleRefusedError` at the *sender*
    unless ``allow_pickle`` is set, so misconfiguration fails fast and
    loudly.
    """
    ctx = context if context is not None else SerdeContext(allow_pickle)
    for codec in _ENCODE_ORDER:
        if not codec.matches(value, ctx):
            continue
        if codec.trusted_only and not ctx.allow_pickle:
            raise PickleRefusedError(
                f"value of type {type(value).__name__} needs {codec.name}, "
                "which is disabled on the network path (pass "
                "allow_pickle=True on a trusted link to enable it)"
            )
        return codec.encode(value, ctx)
    raise SerdeError(
        f"no wire codec claims value of type {type(value).__name__}"
    )  # pragma: no cover - the pickle fallback matches everything


def decode_wire(
    data: bytes, allow_pickle: bool = False, context: SerdeContext | None = None
) -> Any:
    """Inverse of :func:`encode_wire`; the pickle gate applies symmetrically."""
    ctx = context if context is not None else SerdeContext(allow_pickle)
    tag = data[:1]
    codec = _CODECS.get(tag)
    if codec is None:
        raise SerdeError(f"unknown wire codec tag {tag!r}", tag=tag)
    if codec.trusted_only and not ctx.allow_pickle:
        raise PickleRefusedError(
            f"refusing to decode a {codec.name} frame: {codec.name} is "
            "disabled on this path"
        )
    return codec.decode(data[1:], ctx)


# -- built-in codecs ----------------------------------------------------------


def _encode_tuple(value: Any, ctx: SerdeContext) -> bytes:
    keys = list(value.payload)
    meta = json.dumps(
        {
            "tau": value.tau,
            "job": value.job,
            "layer": value.layer,
            "specimen": value.specimen,
            "portion": value.portion,
            "ingest_time": value.ingest_time,
            "trace_id": value.trace_id,
            "keys": keys,
        }
    ).encode("utf-8")
    parts = [TAG_TUPLE, _U32.pack(len(meta)), meta]
    for key in keys:
        blob = encode_wire(value.payload[key], context=ctx)
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _decode_tuple(body: bytes, ctx: SerdeContext) -> Any:
    from .spe.tuples import StreamTuple

    meta_len = _U32.unpack_from(body)[0]
    meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
    payload: dict[str, Any] = {}
    cursor = 4 + meta_len
    for key in meta["keys"]:
        blob_len = _U32.unpack_from(body, cursor)[0]
        cursor += 4
        payload[key] = decode_wire(body[cursor : cursor + blob_len], context=ctx)
        cursor += blob_len
    t = StreamTuple(
        tau=meta["tau"],
        job=meta["job"],
        layer=meta["layer"],
        payload=payload,
        specimen=meta["specimen"],
        portion=meta["portion"],
        ingest_time=meta["ingest_time"],
    )
    t.trace_id = meta["trace_id"]
    return t


def _matches_tuple(value: Any, ctx: SerdeContext) -> bool:
    from .spe.tuples import StreamTuple

    return isinstance(value, StreamTuple)


def encode_ndarray_body(array: Any) -> bytes:
    """The plain ndarray wire layout, tag included (shared with shm fallback)."""
    import numpy as np

    array = np.ascontiguousarray(array)
    header = json.dumps(
        {"dtype": array.dtype.str, "shape": list(array.shape)}
    ).encode("utf-8")
    return TAG_NDARRAY + _U32.pack(len(header)) + header + array.tobytes()


def _encode_ndarray(value: Any, ctx: SerdeContext) -> bytes:
    return encode_ndarray_body(value)


def _decode_ndarray(body: bytes, ctx: SerdeContext) -> Any:
    import numpy as np

    header_len = _U32.unpack_from(body)[0]
    header = json.loads(body[4 : 4 + header_len].decode("utf-8"))
    raw = body[4 + header_len :]
    array = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
    return array.reshape(header["shape"]).copy()


def _matches_ndarray(value: Any, ctx: SerdeContext) -> bool:
    import numpy as np

    return isinstance(value, np.ndarray) and not value.dtype.hasobject


register_codec(
    TAG_TUPLE,
    _encode_tuple,
    _decode_tuple,
    matches=_matches_tuple,
    priority=100,
    name="stream-tuple",
)
register_codec(
    TAG_NDARRAY,
    _encode_ndarray,
    _decode_ndarray,
    matches=_matches_ndarray,
    priority=80,
    name="ndarray",
)
register_codec(
    TAG_BYTES,
    lambda value, ctx: TAG_BYTES + value,
    lambda body, ctx: body,
    matches=lambda value, ctx: isinstance(value, bytes),
    priority=60,
    name="bytes",
)
register_codec(
    TAG_JSON,
    lambda value, ctx: TAG_JSON + json.dumps(value).encode("utf-8"),
    lambda body, ctx: json.loads(body.decode("utf-8")),
    matches=lambda value, ctx: _json_roundtrips(value),
    priority=40,
    name="json",
)
register_codec(
    TAG_PICKLE,
    lambda value, ctx: TAG_PICKLE + pickle.dumps(value),
    lambda body, ctx: pickle.loads(body),
    matches=lambda value, ctx: True,
    priority=-100,
    trusted_only=True,
    name="pickle",
)
