"""Raw data collectors for the thermal workloads.

Same contract as :mod:`repro.core.collectors`: each collector is an SPE
source emitting the Table 1 ``addSource`` schema over an iterable of
:class:`~repro.am.scanpath.ThermalLayerRecord`.  Event time is the layer
index — the natural discrete clock of a build replay — so the thermal
frame and scan-plan collectors of one record share a ``tau`` and
windowless ``fuse`` matches them exactly.

The payload key sets of the two forecast-pipeline collectors are
disjoint by construction (``fuse`` rejects overlap), and the hidden
ground-truth fields of the record are deliberately *not* published: the
pipelines see only what a real machine would emit.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from ..am.scanpath import ThermalLayerRecord
from ..spe.source import Source
from ..spe.tuples import StreamTuple

__all__ = [
    "ThermalFrameCollector",
    "ScanPlanCollector",
    "MeltPoolCollector",
]


class ThermalFrameCollector(Source):
    """Per-layer surface-temperature frames from the thermal sensor."""

    def __init__(
        self,
        records: Iterable[ThermalLayerRecord],
        name: str = "thermal-frame-collector",
    ) -> None:
        super().__init__(name)
        self._records = records

    def __iter__(self) -> Iterator[StreamTuple]:
        for record in self._records:
            yield StreamTuple(
                tau=float(record.layer),
                job=record.job_id,
                layer=record.layer,
                payload={"temp_frame": record.measured_temp_cells},
                ingest_time=time.monotonic(),
            )


class ScanPlanCollector(Source):
    """Per-layer scan-plan data: planned deposition and commanded setpoints.

    Everything here is known before the layer is scanned (it derives from
    the g-code), including the *next* layer's planned deposition — which
    is what lets the estimator forecast ahead of the scan.
    """

    def __init__(
        self,
        records: Iterable[ThermalLayerRecord],
        name: str = "scan-plan-collector",
    ) -> None:
        super().__init__(name)
        self._records = records

    def __iter__(self) -> Iterator[StreamTuple]:
        for record in self._records:
            yield StreamTuple(
                tau=float(record.layer),
                job=record.job_id,
                layer=record.layer,
                payload={
                    "energy_plan": record.energy_cells,
                    "energy_plan_next": record.energy_next_cells,
                    "scan_angle_deg": record.scan_angle_deg,
                },
                ingest_time=time.monotonic(),
            )


class MeltPoolCollector(Source):
    """Per-layer on-axis melt-pool frames plus the commanded setpoints.

    The commanded values ride along so the reconstruction pipeline can
    report recovered-vs-commanded deviation; the *actual* delivered
    values stay hidden in the record (they are the ground truth the
    accuracy gates compare against).
    """

    def __init__(
        self,
        records: Iterable[ThermalLayerRecord],
        name: str = "meltpool-collector",
    ) -> None:
        super().__init__(name)
        self._records = records

    def __iter__(self) -> Iterator[StreamTuple]:
        for record in self._records:
            yield StreamTuple(
                tau=float(record.layer),
                job=record.job_id,
                layer=record.layer,
                payload={
                    "melt_image": record.meltpool_image,
                    "track_length_mm": record.track_length_mm,
                    "commanded_power_w": record.commanded_power_w,
                    "commanded_speed_mm_s": record.commanded_speed_mm_s,
                },
                ingest_time=time.monotonic(),
            )
