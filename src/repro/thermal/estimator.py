"""Streaming thermal state estimation (the forecast pipeline's operators).

Pipeline shape (Table 1 verbs):

    addSource(thermal frames) ──┐
    addSource(scan plan)     ───┴─ fuse ─ partition(PartitionThermalRegions)
        ─ detectEvent(EstimateThermalState) ─ correlateEvents(L,
          ThermalForecastCorrelator) ─ deliver

``partition`` splits each fused layer tuple into region tuples keyed by
a region specimen, which is what shards the estimator state and lets the
elastic controller rescale it.  ``detectEvent`` runs one independent
Kalman filter per grid cell (kernels in
:mod:`repro.analysis.thermal_kernels`): predict through the planned
deposition, update against the measured frame (NaN cells coast), then
forecast the next layer from its published plan — and raises a
*predictive* QoS alert through the shared
:class:`~repro.obs.watchdog.QoSWatchdog` when the forecast crosses the
overheat threshold, one recoat gap before the breach would materialize.

The scalar ``__call__`` and the columnar ``process_block`` express the
same per-cell arithmetic (the kernels' scalar twins are bit-identical by
construction) and reduce summaries with the same numpy calls, so scalar
and vectorized plans produce identical tuples.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.thermal_kernels import (
    kalman_predict,
    kalman_predict_scalar,
    kalman_update,
    kalman_update_scalar,
)
from ..am.scanpath import ThermalModelParams
from ..kvstore.api import KVStore
from ..obs.watchdog import QoSWatchdog, RECOAT_GAP_SECONDS
from ..spe.columnar import ColumnarBlock
from ..spe.tuples import StreamTuple
from .model import load_thermal_model

__all__ = [
    "PartitionThermalRegions",
    "EstimateThermalState",
    "ThermalForecastCorrelator",
    "INITIAL_STATE_VAR",
]

#: initial per-cell covariance: wide enough that the first measurement
#: dominates the ambient-temperature prior
INITIAL_STATE_VAR = 25.0


class PartitionThermalRegions:
    """partition F: split a fused layer tuple into region sub-grids.

    Assigns one specimen per region (``region-<i>-<j>``), which becomes
    the routing/sharding key of everything downstream.  Always runs on
    the scalar path — it is the specimen-assigning stage, where the
    layer-completeness punctuation is minted.
    """

    def __init__(self, region_rows: int = 2, region_cols: int = 2) -> None:
        if region_rows < 1 or region_cols < 1:
            raise ValueError("region grid must be at least 1x1")
        self.region_rows = region_rows
        self.region_cols = region_cols

    def _bounds(self, size: int, splits: int) -> list[tuple[int, int]]:
        edges = [round(i * size / splits) for i in range(splits + 1)]
        return [(edges[i], edges[i + 1]) for i in range(splits)]

    def region_bounds(
        self, i: int, j: int, shape: tuple[int, int]
    ) -> tuple[tuple[int, int], tuple[int, int]]:
        """(row, col) slice bounds of region ``(i, j)`` for a full grid."""
        rows, cols = shape
        return (
            self._bounds(rows, self.region_rows)[i],
            self._bounds(cols, self.region_cols)[j],
        )

    def __call__(self, t: StreamTuple) -> list[StreamTuple]:
        frame = t.payload["temp_frame"]
        plan = t.payload["energy_plan"]
        plan_next = t.payload["energy_plan_next"]
        rows, cols = frame.shape
        out: list[StreamTuple] = []
        for i, (r0, r1) in enumerate(self._bounds(rows, self.region_rows)):
            for j, (c0, c1) in enumerate(self._bounds(cols, self.region_cols)):
                out.append(
                    t.derive(
                        payload={
                            "temp_frame": np.ascontiguousarray(frame[r0:r1, c0:c1]),
                            "energy_plan": np.ascontiguousarray(plan[r0:r1, c0:c1]),
                            "energy_plan_next": np.ascontiguousarray(
                                plan_next[r0:r1, c0:c1]
                            ),
                            "origin_row": int(r0),
                            "origin_col": int(c0),
                        },
                        specimen=f"region-{i}-{j}",
                        portion="__whole__",
                        copy=False,
                    )
                )
        return out


class EstimateThermalState:
    """detectEvent F: per-cell Kalman filter + next-layer forecast.

    State is a (state, covariance) grid pair per ``(job, specimen)``
    group — exactly the routing key, so ``reshard_state`` can split it
    across replicas the same way :class:`CorrelateEventsOperator` splits
    its windows.  The model parameters are calibration data loaded
    lazily from the KV store per job.
    """

    def __init__(
        self,
        store: KVStore,
        *,
        overheat_threshold: float | None = None,
        watchdog: QoSWatchdog | None = None,
        lead_time_s: float = RECOAT_GAP_SECONDS,
        source_name: str = "thermal-estimator",
    ) -> None:
        self._store = store
        self._overheat = overheat_threshold
        self._watchdog = watchdog
        self._lead_time_s = lead_time_s
        self._source_name = source_name
        self._params: ThermalModelParams | None = None
        self._params_job: str | None = None
        # (job, specimen) -> {"state": ndarray, "cov": ndarray}
        self._groups: dict[tuple[str, str], dict[str, np.ndarray]] = {}
        self.frames_processed = 0
        self.cells_filtered = 0

    # -- model / state access ----------------------------------------------

    def _model(self, job: str) -> ThermalModelParams:
        if job != self._params_job:
            self._params = load_thermal_model(self._store, job)
            self._params_job = job
        assert self._params is not None
        return self._params

    def _group(
        self, job: str, specimen: str, shape: tuple[int, int], ambient: float
    ) -> dict[str, np.ndarray]:
        key = (job, specimen)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = {
                "state": np.full(shape, ambient, dtype=np.float64),
                "cov": np.full(shape, INITIAL_STATE_VAR, dtype=np.float64),
            }
        return group

    # -- the shared per-region step ------------------------------------------

    def _step_grids(
        self,
        job: str,
        specimen: str,
        frame: np.ndarray,
        energy: np.ndarray,
        energy_next: np.ndarray,
        *,
        scalar: bool,
    ) -> dict[str, Any]:
        """Advance one region one layer; returns the output payload.

        ``scalar=True`` walks cells in a Python loop through the scalar
        kernel twins (the paper-faithful per-cell path); ``scalar=False``
        applies the grid kernels.  Elementwise arithmetic and the final
        numpy reductions are identical either way, so both paths emit
        bit-identical payloads.
        """
        params = self._model(job)
        group = self._group(job, specimen, frame.shape, params.ambient)
        state, cov = group["state"], group["cov"]
        if scalar:
            innovation = np.empty_like(state)
            forecast = np.empty_like(state)
            rows, cols = state.shape
            dropped = 0
            for i in range(rows):
                for j in range(cols):
                    pred, pred_cov = kalman_predict_scalar(
                        state[i, j],
                        cov[i, j],
                        energy[i, j],
                        ambient=params.ambient,
                        retention=params.retention,
                        coupling=params.coupling_per_j,
                        process_var=params.process_var,
                    )
                    s, c, innov, valid = kalman_update_scalar(
                        pred,
                        pred_cov,
                        frame[i, j],
                        sensor_var=params.sensor_var,
                    )
                    state[i, j] = s
                    cov[i, j] = c
                    innovation[i, j] = innov
                    if not valid:
                        dropped += 1
                    forecast[i, j], _ = kalman_predict_scalar(
                        s,
                        c,
                        energy_next[i, j],
                        ambient=params.ambient,
                        retention=params.retention,
                        coupling=params.coupling_per_j,
                        process_var=params.process_var,
                    )
        else:
            pred, pred_cov = kalman_predict(
                state,
                cov,
                energy,
                ambient=params.ambient,
                retention=params.retention,
                coupling=params.coupling_per_j,
                process_var=params.process_var,
            )
            new_state, new_cov, innovation, valid = kalman_update(
                pred, pred_cov, frame, sensor_var=params.sensor_var
            )
            state[...] = new_state
            cov[...] = new_cov
            dropped = int(state.size - np.count_nonzero(valid))
            forecast, _ = kalman_predict(
                state,
                cov,
                energy_next,
                ambient=params.ambient,
                retention=params.retention,
                coupling=params.coupling_per_j,
                process_var=params.process_var,
            )
        self.cells_filtered += state.size
        overheat_cells = (
            int(np.count_nonzero(forecast > self._overheat))
            if self._overheat is not None
            else 0
        )
        return {
            "forecast": forecast,
            "measured": frame,
            "forecast_mean": float(np.mean(forecast)),
            "forecast_max": float(np.max(forecast)),
            "filtered_mean": float(np.mean(state)),
            "innovation_rmse": float(np.sqrt(np.mean(innovation * innovation))),
            "overheat_cells": overheat_cells,
            "dropped_cells": int(dropped),
        }

    def _maybe_alert(self, t_job: str, t_layer: int, specimen: str, payload) -> None:
        if (
            self._watchdog is not None
            and self._overheat is not None
            and payload["forecast_max"] > self._overheat
        ):
            # the forecast is for the *next* layer: the alert lands one
            # recoat gap before that layer's heat arrives
            self._watchdog.observe_forecast(
                job=t_job,
                layer=t_layer + 1,
                specimen=specimen,
                source=self._source_name,
                predicted_value=payload["forecast_max"],
                threshold=self._overheat,
                lead_time_s=self._lead_time_s,
            )

    # -- scalar path ---------------------------------------------------------

    def __call__(self, t: StreamTuple) -> StreamTuple:
        payload = self._step_grids(
            t.job,
            t.specimen,
            t.payload["temp_frame"],
            t.payload["energy_plan"],
            t.payload["energy_plan_next"],
            scalar=True,
        )
        self.frames_processed += 1
        self._maybe_alert(t.job, t.layer, t.specimen, payload)
        return t.derive(payload=payload, copy=False)

    # -- columnar path -------------------------------------------------------

    def process_block(self, block: ColumnarBlock) -> ColumnarBlock:
        """Array-at-a-time path: whole-grid kernels, one output per row.

        Rows advance their region's filter in stream order (state is
        sequential per group), but each advance is a handful of grid
        kernels instead of a Python loop over cells.
        """
        frames = block.columns["temp_frame"]
        plans = block.columns["energy_plan"]
        plans_next = block.columns["energy_plan_next"]
        n = len(block)
        forecasts: list[np.ndarray] = []
        measured: list[np.ndarray] = []
        forecast_mean = np.empty(n, dtype=np.float64)
        forecast_max = np.empty(n, dtype=np.float64)
        filtered_mean = np.empty(n, dtype=np.float64)
        innovation_rmse = np.empty(n, dtype=np.float64)
        overheat_cells: list[int] = []
        dropped_cells: list[int] = []
        for i in range(n):
            payload = self._step_grids(
                block.job[i],
                block.specimen[i],
                frames[i],
                plans[i],
                plans_next[i],
                scalar=False,
            )
            forecasts.append(payload["forecast"])
            measured.append(payload["measured"])
            forecast_mean[i] = payload["forecast_mean"]
            forecast_max[i] = payload["forecast_max"]
            filtered_mean[i] = payload["filtered_mean"]
            innovation_rmse[i] = payload["innovation_rmse"]
            overheat_cells.append(payload["overheat_cells"])
            dropped_cells.append(payload["dropped_cells"])
            self._maybe_alert(
                block.job[i], int(block.layer[i]), block.specimen[i], payload
            )
        self.frames_processed += n
        return ColumnarBlock(
            tau=block.tau,
            job=block.job,
            layer=block.layer,
            specimen=block.specimen,
            portion=block.portion,
            ingest_time=block.ingest_time,
            trace_id=block.trace_id,
            columns={
                "forecast": forecasts,
                "measured": measured,
                "forecast_mean": forecast_mean,
                "forecast_max": forecast_max,
                "filtered_mean": filtered_mean,
                "innovation_rmse": innovation_rmse,
                "overheat_cells": np.asarray(overheat_cells, dtype=np.int64),
                "dropped_cells": np.asarray(dropped_cells, dtype=np.int64),
            },
        )

    # -- checkpoint / recover / rescale ---------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "groups": {
                key: {"state": g["state"].copy(), "cov": g["cov"].copy()}
                for key, g in self._groups.items()
            },
            "frames_processed": self.frames_processed,
            "cells_filtered": self.cells_filtered,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Merge a shard's groups into this function's state.

        Merge (not replace) because detect replicas share one function
        instance: after a rescale every new shard's state is restored
        onto the same object, and the union must survive.  On a freshly
        built pipeline (crash recovery) the merge target is empty, so
        merging degenerates to plain restore.  Counters take the max —
        they are whole-group totals snapshotted identically per replica.
        """
        for key, g in state["groups"].items():
            self._groups[tuple(key)] = {
                "state": np.array(g["state"], dtype=np.float64),
                "cov": np.array(g["cov"], dtype=np.float64),
            }
        self.frames_processed = max(
            self.frames_processed, int(state["frames_processed"])
        )
        self.cells_filtered = max(self.cells_filtered, int(state["cells_filtered"]))

    def reshard_state(self, states, shards, route):
        """Split the per-group filters along the routing key.

        The group key ``(job, specimen)`` is the routing key (regions are
        specimens), mirroring ``CorrelateEventsOperator.reshard_state``;
        the additive counters land in shard 0.
        """
        groups: dict[tuple[str, str], dict[str, np.ndarray]] = {}
        frames = 0
        cells = 0
        for s in states:
            if s is None:
                continue
            for key, g in s["groups"].items():
                groups[tuple(key)] = g
            frames += int(s["frames_processed"])
            cells += int(s["cells_filtered"])
        out: list[dict[str, Any]] = []
        for i in range(shards):
            out.append(
                {
                    "groups": {
                        key: {"state": g["state"].copy(), "cov": g["cov"].copy()}
                        for key, g in groups.items()
                        if route(key) == i
                    },
                    "frames_processed": frames if i == 0 else 0,
                    "cells_filtered": cells if i == 0 else 0,
                }
            )
        return out


class ThermalForecastCorrelator:
    """correlateEvents F: score forecasts against the next layer's frame.

    Triggered per (job, region) on layer completeness.  Emits the current
    layer's forecast summary plus the *realized* accuracy of the previous
    layer's forecast — the closed loop that makes forecast quality an
    observable stream, not an offline metric.  Stateless: the L-layer
    window lives in the correlate operator, so checkpoint/rescale come
    for free.
    """

    def __init__(self, overheat_threshold: float | None = None) -> None:
        self._overheat = overheat_threshold

    def __call__(
        self,
        job: str,
        layer: int,
        specimen: str,
        window_events: list[StreamTuple],
    ) -> dict[str, Any] | None:
        current = None
        previous = None
        for event in window_events:
            if event.layer == layer:
                current = event
            elif event.layer == layer - 1:
                previous = event
        if current is None:
            return None
        realized_rmse = -1.0
        if previous is not None:
            diff = current.payload["measured"] - previous.payload["forecast"]
            valid = ~np.isnan(diff)
            if np.any(valid):
                realized_rmse = float(np.sqrt(np.mean(diff[valid] ** 2)))
        window_means = np.asarray(
            [e.payload["forecast_mean"] for e in window_events], dtype=np.float64
        )
        return {
            "forecast_mean": current.payload["forecast_mean"],
            "forecast_max": current.payload["forecast_max"],
            "filtered_mean": current.payload["filtered_mean"],
            "innovation_rmse": current.payload["innovation_rmse"],
            "overheat_cells": current.payload["overheat_cells"],
            "dropped_cells": current.payload["dropped_cells"],
            "realized_rmse": realized_rmse,
            "window_forecast_mean": float(np.mean(window_means)),
            "forecast": current.payload["forecast"],
        }
