"""Laser power/speed reconstruction: RLS calibration + streaming inversion.

The melt-pool optics make the two plate features log-linear in the
setpoints (see :func:`repro.analysis.thermal_kernels.laser_feature_vector`),
so the inverse model

    [log P, log v] = W · [1, log_peak, log_dose]

is fitted by :class:`RecursiveLeastSquares` over labelled reference
frames (known delivered power/speed, production optics and noise) and
persisted to the KV store.  Online, the correlate stage inverts each
layer's features through the stored weights and smooths over its event
window — recovering the *delivered* parameters, which the expert
compares against the commanded ones to spot actuator drift.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from ..am.scanpath import LaserCalibrationSample
from ..analysis.thermal_kernels import laser_feature_vector
from ..kvstore.api import KVStore
from ..spe.tuples import StreamTuple
from .model import LaserCalibration, load_laser_calibration, store_laser_calibration

__all__ = [
    "RecursiveLeastSquares",
    "fit_laser_calibration",
    "calibrate_laser_job",
    "ReconstructLaserParameters",
]


class RecursiveLeastSquares:
    """Textbook RLS (forgetting factor 1): rank-1 covariance updates.

    Equivalent to batch least squares with ridge ``1/delta`` but updated
    one labelled sample at a time, so calibration can refine as reference
    layers stream in instead of re-solving the normal equations.
    """

    def __init__(self, dim: int, *, delta: float = 1000.0) -> None:
        self._p = np.eye(dim) * delta
        self._theta = np.zeros(dim, dtype=np.float64)
        self.samples = 0

    def update(self, x: Iterable[float], y: float) -> None:
        xv = np.asarray(list(x), dtype=np.float64)
        px = self._p @ xv
        gain = px / (1.0 + float(xv @ px))
        error = y - float(xv @ self._theta)
        self._theta = self._theta + gain * error
        self._p = self._p - np.outer(gain, px)
        self.samples += 1

    @property
    def theta(self) -> np.ndarray:
        return self._theta.copy()

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "p": self._p.copy(),
            "theta": self._theta.copy(),
            "samples": self.samples,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._p = np.array(state["p"], dtype=np.float64)
        self._theta = np.array(state["theta"], dtype=np.float64)
        self.samples = int(state["samples"])


def fit_laser_calibration(
    samples: Iterable[LaserCalibrationSample],
    *,
    px_per_mm: float,
    top_k: int = 64,
) -> LaserCalibration:
    """Fit the inverse regression over labelled reference frames."""
    rls_power = RecursiveLeastSquares(3)
    rls_speed = RecursiveLeastSquares(3)
    for sample in samples:
        log_peak, log_dose = laser_feature_vector(
            sample.image, sample.track_length_mm * px_per_mm, top_k=top_k
        )
        x = (1.0, log_peak, log_dose)
        rls_power.update(x, math.log(sample.power_w))
        rls_speed.update(x, math.log(sample.speed_mm_s))
    if rls_power.samples < 3:
        raise ValueError("laser calibration needs at least 3 labelled samples")
    return LaserCalibration(
        weights=(
            tuple(float(w) for w in rls_power.theta),
            tuple(float(w) for w in rls_speed.theta),
        ),
        top_k=top_k,
        px_per_mm=px_per_mm,
    )


def calibrate_laser_job(
    store: KVStore,
    job_id: str,
    samples: Iterable[LaserCalibrationSample],
    *,
    px_per_mm: float,
    top_k: int = 64,
) -> LaserCalibration:
    """Fit and persist the regressor for ``job_id`` (pre-deploy step)."""
    calibration = fit_laser_calibration(samples, px_per_mm=px_per_mm, top_k=top_k)
    store_laser_calibration(store, job_id, calibration)
    return calibration


class ReconstructLaserParameters:
    """correlateEvents F: invert features to power/speed per layer.

    Stateless by design — the recovered-history smoothing reads the
    correlate operator's own L-layer window, so checkpoint, recovery,
    and rescale semantics are inherited rather than reimplemented.  The
    fitted weights are calibration data, loaded lazily per job from the
    shared KV store.
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store
        self._calibration: LaserCalibration | None = None
        self._calibration_job: str | None = None

    def _model(self, job: str) -> LaserCalibration:
        if job != self._calibration_job:
            self._calibration = load_laser_calibration(self._store, job)
            self._calibration_job = job
        assert self._calibration is not None
        return self._calibration

    def __call__(
        self,
        job: str,
        layer: int,
        specimen: str,
        window_events: list[StreamTuple],
    ) -> dict[str, Any] | None:
        current = None
        for event in window_events:
            if event.layer == layer:
                current = event
        if current is None:
            return None
        calibration = self._model(job)
        power, speed = calibration.recover(
            current.payload["log_peak"], current.payload["log_dose"]
        )
        recovered = np.asarray(
            [
                calibration.recover(e.payload["log_peak"], e.payload["log_dose"])
                for e in window_events
            ],
            dtype=np.float64,
        )
        commanded_power = float(current.payload["commanded_power_w"])
        commanded_speed = float(current.payload["commanded_speed_mm_s"])
        return {
            "power_w_hat": power,
            "speed_mm_s_hat": speed,
            "power_w_smoothed": float(np.mean(recovered[:, 0])),
            "speed_mm_s_smoothed": float(np.mean(recovered[:, 1])),
            "commanded_power_w": commanded_power,
            "commanded_speed_mm_s": commanded_speed,
            "power_deviation": (power - commanded_power) / commanded_power,
            "speed_deviation": (speed - commanded_speed) / commanded_speed,
            "melt_fraction": current.payload["melt_fraction"],
        }
