"""Shared calibration state of the thermal workloads, kept in the KV store.

Both thermal pipelines follow the defect pipeline's calibration pattern
(:func:`repro.core.usecase.calibrate_job`): fit once against reference
data, persist under a per-job key, and let the streaming operators load
lazily on the first tuple of each job.  That keeps operator construction
cheap and makes the calibration visible to every pipeline sharing the
store — the overlapping-pipelines story of the fleet deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..am.scanpath import ThermalModelParams
from ..kvstore.api import KVStore

__all__ = [
    "THERMAL_MODEL_KEY_PREFIX",
    "LASER_CALIBRATION_KEY_PREFIX",
    "thermal_model_key",
    "store_thermal_model",
    "load_thermal_model",
    "LaserCalibration",
    "laser_calibration_key",
    "store_laser_calibration",
    "load_laser_calibration",
]

THERMAL_MODEL_KEY_PREFIX = "thermal/model"
LASER_CALIBRATION_KEY_PREFIX = "thermal/laser"


def thermal_model_key(job_id: str) -> str:
    return f"{THERMAL_MODEL_KEY_PREFIX}/{job_id}"


def store_thermal_model(
    store: KVStore, job_id: str, params: ThermalModelParams
) -> None:
    """Persist the calibrated state-space model for ``job_id``."""
    store.put(thermal_model_key(job_id), params.as_payload())


def load_thermal_model(store: KVStore, job_id: str) -> ThermalModelParams:
    payload = store.get(thermal_model_key(job_id))
    if payload is None:
        raise KeyError(f"no thermal model stored for job {job_id!r}")
    return ThermalModelParams.from_payload(payload)


@dataclass(frozen=True)
class LaserCalibration:
    """Fitted inverse regression from melt-pool features to setpoints.

    ``weights`` is the 2×3 coefficient matrix of the log-linear model

        [log P, log v] = weights · [1, log_peak, log_dose]

    fitted by the recursive least-squares calibrator over labelled
    reference frames (see :mod:`repro.thermal.reconstruct`).
    """

    weights: tuple[tuple[float, float, float], tuple[float, float, float]]
    top_k: int = 64
    px_per_mm: float = 2.0

    def recover(self, log_peak: float, log_dose: float) -> tuple[float, float]:
        """Invert one feature vector into (power_w, speed_mm_s)."""
        x = (1.0, log_peak, log_dose)
        log_p = sum(w * v for w, v in zip(self.weights[0], x))
        log_v = sum(w * v for w, v in zip(self.weights[1], x))
        return math.exp(log_p), math.exp(log_v)

    def as_payload(self) -> dict:
        return {
            "weights": [list(row) for row in self.weights],
            "top_k": self.top_k,
            "px_per_mm": self.px_per_mm,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LaserCalibration":
        rows = payload["weights"]
        return cls(
            weights=(
                (float(rows[0][0]), float(rows[0][1]), float(rows[0][2])),
                (float(rows[1][0]), float(rows[1][1]), float(rows[1][2])),
            ),
            top_k=int(payload["top_k"]),
            px_per_mm=float(payload["px_per_mm"]),
        )


def laser_calibration_key(job_id: str) -> str:
    return f"{LASER_CALIBRATION_KEY_PREFIX}/{job_id}"


def store_laser_calibration(
    store: KVStore, job_id: str, calibration: LaserCalibration
) -> None:
    store.put(laser_calibration_key(job_id), calibration.as_payload())


def load_laser_calibration(store: KVStore, job_id: str) -> LaserCalibration:
    payload = store.get(laser_calibration_key(job_id))
    if payload is None:
        raise KeyError(f"no laser calibration stored for job {job_id!r}")
    return LaserCalibration.from_payload(payload)
