"""Compose the two thermal workloads on a Strata instance.

Mirrors :func:`repro.core.usecase.build_use_case`: a builder per
pipeline plus calibration helpers that persist the shared model state in
the KV store before deploy.  Both builders accept an existing ``Strata``
so the workloads can share one broker and one store — the
overlapping-pipelines deployment of §6 and the fleet's multi-tenant
story — and both run unchanged under threaded, distributed (tcp/shm),
and elastic deploys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..am.scanpath import (
    ThermalBuild,
    ThermalBuildConfig,
    ThermalLayerRecord,
    suggest_overheat_threshold,
    synthesize_laser_calibration,
)
from ..kvstore.api import KVStore
from ..obs.watchdog import QoSWatchdog, RECOAT_GAP_SECONDS
from ..spe.sink import CollectingSink, Sink
from .collectors import MeltPoolCollector, ScanPlanCollector, ThermalFrameCollector
from .estimator import (
    EstimateThermalState,
    PartitionThermalRegions,
    ThermalForecastCorrelator,
)
from .features import ExtractMeltPoolFeatures
from .model import store_thermal_model
from .reconstruct import ReconstructLaserParameters, calibrate_laser_job

__all__ = [
    "ThermalPipelineConfig",
    "ThermalPipeline",
    "calibrate_thermal_job",
    "resolve_overheat_threshold",
    "build_forecast_pipeline",
    "build_reconstruction_pipeline",
]


@dataclass
class ThermalPipelineConfig:
    """Tunables shared by the two thermal pipelines."""

    window_layers: int = 4
    region_rows: int = 2
    region_cols: int = 2
    overheat_threshold: float | None = None
    lead_time_s: float = RECOAT_GAP_SECONDS
    parallelism: int = 1
    top_k: int = 64


@dataclass
class ThermalPipeline:
    """A composed thermal pipeline plus the handles tests/benches need."""

    strata: "object"
    sink: Sink
    build_config: ThermalBuildConfig
    config: ThermalPipelineConfig
    detect_fn: EstimateThermalState | ExtractMeltPoolFeatures
    correlator: ThermalForecastCorrelator | ReconstructLaserParameters = field(
        default=None
    )

    @property
    def frames_processed(self) -> int:
        return self.detect_fn.frames_processed


def calibrate_thermal_job(
    store: KVStore,
    build: ThermalBuild | ThermalBuildConfig,
    *,
    laser: bool = True,
) -> None:
    """Persist both pipelines' calibration state for the build's job.

    Stores the state-space model parameters (the estimator's calibrated
    machine model) and, unless ``laser=False``, fits + stores the laser
    inverse regression from a synthesized reference sweep.
    """
    config = build.config if isinstance(build, ThermalBuild) else build
    store_thermal_model(store, config.job_id, config.thermal)
    if laser:
        calibrate_laser_job(
            store,
            config.job_id,
            synthesize_laser_calibration(config),
            px_per_mm=config.px_per_mm,
            top_k=config.optics.top_k,
        )


def resolve_overheat_threshold(
    build: ThermalBuild, config: ThermalPipelineConfig
) -> float:
    """The configured threshold, or one derived from the build's truth."""
    if config.overheat_threshold is not None:
        return config.overheat_threshold
    return suggest_overheat_threshold(build)


def build_forecast_pipeline(
    frame_records: Iterable[ThermalLayerRecord],
    plan_records: Iterable[ThermalLayerRecord],
    build_config: ThermalBuildConfig,
    config: ThermalPipelineConfig | None = None,
    strata=None,
    sink: Sink | None = None,
    watchdog: QoSWatchdog | None = None,
    checkpointable: bool = False,
) -> ThermalPipeline:
    """Forecast workload: frames ⨝ plan → regions → Kalman → correlate.

    The caller must have stored the thermal model for the job in
    ``strata.kv`` (see :func:`calibrate_thermal_job`) before deploying.
    """
    from ..core.api import Strata

    if strata is None:
        strata = Strata()
    if config is None:
        config = ThermalPipelineConfig()
    if sink is None:
        sink = CollectingSink("thermal-expert")
    if checkpointable:
        from ..recovery.dedup import DedupSink

        if not isinstance(sink, DedupSink):
            sink = DedupSink(sink)
    strata.add_source(
        ThermalFrameCollector(frame_records), "thermal", checkpointable=checkpointable
    )
    strata.add_source(
        ScanPlanCollector(plan_records), "plan", checkpointable=checkpointable
    )
    strata.fuse("thermal", "plan", "thermal&plan")
    strata.partition(
        "thermal&plan",
        "region",
        PartitionThermalRegions(config.region_rows, config.region_cols),
    )
    estimator = EstimateThermalState(
        strata.kv,
        overheat_threshold=config.overheat_threshold,
        watchdog=watchdog,
        lead_time_s=config.lead_time_s,
    )
    strata.detect_event(
        "region", "forecast", estimator, parallelism=config.parallelism
    )
    correlator = ThermalForecastCorrelator(config.overheat_threshold)
    strata.correlate_events(
        "forecast", "forecast-out", config.window_layers, correlator
    )
    strata.deliver("forecast-out", sink)
    return ThermalPipeline(
        strata=strata,
        sink=sink,
        build_config=build_config,
        config=config,
        detect_fn=estimator,
        correlator=correlator,
    )


def build_reconstruction_pipeline(
    records: Iterable[ThermalLayerRecord],
    build_config: ThermalBuildConfig,
    config: ThermalPipelineConfig | None = None,
    strata=None,
    sink: Sink | None = None,
    checkpointable: bool = False,
) -> ThermalPipeline:
    """Reconstruction workload: melt pool → features → invert per layer.

    The caller must have fitted the laser calibration for the job in
    ``strata.kv`` (see :func:`calibrate_thermal_job`) before deploying.
    """
    from ..core.api import Strata

    if strata is None:
        strata = Strata()
    if config is None:
        config = ThermalPipelineConfig()
    if sink is None:
        sink = CollectingSink("laser-expert")
    if checkpointable:
        from ..recovery.dedup import DedupSink

        if not isinstance(sink, DedupSink):
            sink = DedupSink(sink)
    strata.add_source(
        MeltPoolCollector(records), "meltpool", checkpointable=checkpointable
    )
    strata.partition("meltpool", "plate")
    extractor = ExtractMeltPoolFeatures(
        cell_edge_px=build_config.cell_edge_px,
        px_per_mm=build_config.px_per_mm,
        melt_threshold=build_config.optics.melt_threshold,
        top_k=build_config.optics.top_k,
    )
    strata.detect_event(
        "plate", "melt-features", extractor, parallelism=config.parallelism
    )
    correlator = ReconstructLaserParameters(strata.kv)
    strata.correlate_events(
        "melt-features", "laser-out", config.window_layers, correlator
    )
    strata.deliver("laser-out", sink)
    return ThermalPipeline(
        strata=strata,
        sink=sink,
        build_config=build_config,
        config=config,
        detect_fn=extractor,
        correlator=correlator,
    )
