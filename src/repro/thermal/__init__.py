"""repro.thermal — streaming thermal forecasting & laser reconstruction.

The second and third end-to-end workloads on the middleware (the first is
the porosity use case in :mod:`repro.core.usecase`).  Two pipelines built
from the same Table-1 verbs:

* **Thermal forecasting** — a Kalman-style recursive estimator over the
  layer's temperature grid, fusing thermal frames with the scan plan's
  deposited-energy maps, forecasting the *next* layer's field from the
  commanded schedule and raising predictive QoS alerts through the
  watchdog before an overheat threshold is breached.
* **Laser reconstruction** — per-cell melt-pool intensity features feed a
  recursive-least-squares inverse regression that recovers the delivered
  laser power and scan speed, exposing actuator drift against the
  commanded g-code values.

Both ship scalar/vectorized twin kernels (:mod:`repro.analysis.thermal_kernels`),
run under every deploy mode, and share a broker/KV store when composed on
one ``Strata`` instance.
"""

from .collectors import MeltPoolCollector, ScanPlanCollector, ThermalFrameCollector
from .estimator import (
    EstimateThermalState,
    PartitionThermalRegions,
    ThermalForecastCorrelator,
)
from .features import ExtractMeltPoolFeatures
from .model import (
    LASER_CALIBRATION_KEY_PREFIX,
    THERMAL_MODEL_KEY_PREFIX,
    LaserCalibration,
    load_laser_calibration,
    load_thermal_model,
    store_laser_calibration,
    store_thermal_model,
)
from .pipelines import (
    ThermalPipeline,
    ThermalPipelineConfig,
    build_forecast_pipeline,
    build_reconstruction_pipeline,
    calibrate_thermal_job,
    resolve_overheat_threshold,
)
from .reconstruct import (
    ReconstructLaserParameters,
    RecursiveLeastSquares,
    calibrate_laser_job,
    fit_laser_calibration,
)

__all__ = [
    "ThermalFrameCollector",
    "ScanPlanCollector",
    "MeltPoolCollector",
    "PartitionThermalRegions",
    "EstimateThermalState",
    "ThermalForecastCorrelator",
    "ExtractMeltPoolFeatures",
    "THERMAL_MODEL_KEY_PREFIX",
    "LASER_CALIBRATION_KEY_PREFIX",
    "LaserCalibration",
    "store_thermal_model",
    "load_thermal_model",
    "store_laser_calibration",
    "load_laser_calibration",
    "RecursiveLeastSquares",
    "fit_laser_calibration",
    "calibrate_laser_job",
    "ReconstructLaserParameters",
    "ThermalPipelineConfig",
    "ThermalPipeline",
    "calibrate_thermal_job",
    "resolve_overheat_threshold",
    "build_forecast_pipeline",
    "build_reconstruction_pipeline",
]
