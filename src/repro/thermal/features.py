"""Melt-pool feature extraction (the reconstruction pipeline's detect F).

Turns each on-axis melt-pool frame into per-cell intensity statistics
(total / peak / melt-fraction grids — the per-cell features) plus the
two plate-level log-features the laser-parameter regressor inverts.  The
scalar ``__call__`` walks cells in Python through the kernel's scalar
twin; ``process_block`` applies the strided-reshape kernels from
:mod:`repro.analysis.thermal_kernels`, so the plan compiler's vectorized
chains pick this stage up.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.thermal_kernels import (
    laser_feature_vector,
    meltpool_cell_stats,
    meltpool_cell_stats_scalar,
)
from ..spe.columnar import ColumnarBlock
from ..spe.tuples import StreamTuple

__all__ = ["ExtractMeltPoolFeatures"]


class ExtractMeltPoolFeatures:
    """detectEvent F: per-cell melt-pool statistics + regressor features."""

    def __init__(
        self,
        *,
        cell_edge_px: int,
        px_per_mm: float,
        melt_threshold: float,
        top_k: int = 64,
    ) -> None:
        self._cell_edge_px = cell_edge_px
        self._px_per_mm = px_per_mm
        self._melt_threshold = melt_threshold
        self._top_k = top_k
        self.frames_processed = 0
        self.cells_evaluated = 0

    def _features(self, image: np.ndarray, track_length_mm: float) -> tuple[float, float]:
        return laser_feature_vector(
            image, track_length_mm * self._px_per_mm, top_k=self._top_k
        )

    def _payload(
        self,
        t_payload: dict[str, Any],
        total: np.ndarray,
        peak: np.ndarray,
        melt: np.ndarray,
    ) -> dict[str, Any]:
        log_peak, log_dose = self._features(
            t_payload["melt_image"], t_payload["track_length_mm"]
        )
        self.cells_evaluated += total.size
        return {
            "log_peak": log_peak,
            "log_dose": log_dose,
            "cell_total": total,
            "cell_peak": peak,
            "cell_melt_fraction": melt,
            "melt_fraction": float(np.mean(melt)),
            "track_length_mm": t_payload["track_length_mm"],
            "commanded_power_w": t_payload["commanded_power_w"],
            "commanded_speed_mm_s": t_payload["commanded_speed_mm_s"],
        }

    def __call__(self, t: StreamTuple) -> StreamTuple:
        total, peak, melt = meltpool_cell_stats_scalar(
            t.payload["melt_image"], self._cell_edge_px, self._melt_threshold
        )
        self.frames_processed += 1
        return t.derive(payload=self._payload(t.payload, total, peak, melt), copy=False)

    def process_block(self, block: ColumnarBlock) -> ColumnarBlock:
        images = block.columns["melt_image"]
        n = len(block)
        payloads: list[dict[str, Any]] = []
        for i in range(n):
            total, peak, melt = meltpool_cell_stats(
                images[i], self._cell_edge_px, self._melt_threshold
            )
            row_payload = {
                key: block.columns[key][i]
                for key in (
                    "melt_image",
                    "track_length_mm",
                    "commanded_power_w",
                    "commanded_speed_mm_s",
                )
            }
            payloads.append(self._payload(row_payload, total, peak, melt))
        self.frames_processed += n
        return ColumnarBlock(
            tau=block.tau,
            job=block.job,
            layer=block.layer,
            specimen=block.specimen,
            portion=block.portion,
            ingest_time=block.ingest_time,
            trace_id=block.trace_id,
            columns={
                "log_peak": np.asarray([p["log_peak"] for p in payloads]),
                "log_dose": np.asarray([p["log_dose"] for p in payloads]),
                "cell_total": [p["cell_total"] for p in payloads],
                "cell_peak": [p["cell_peak"] for p in payloads],
                "cell_melt_fraction": [p["cell_melt_fraction"] for p in payloads],
                "melt_fraction": np.asarray([p["melt_fraction"] for p in payloads]),
                "track_length_mm": np.asarray(
                    [p["track_length_mm"] for p in payloads]
                ),
                "commanded_power_w": np.asarray(
                    [p["commanded_power_w"] for p in payloads]
                ),
                "commanded_speed_mm_s": np.asarray(
                    [p["commanded_speed_mm_s"] for p in payloads]
                ),
            },
        )

    # counters are the only state; they reshard additively into shard 0
    def snapshot_state(self) -> dict[str, Any]:
        return {
            "frames_processed": self.frames_processed,
            "cells_evaluated": self.cells_evaluated,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        # max, not assignment: detect replicas share one fn instance, so
        # after a rescale every shard's state restores onto this object
        # (shard 0 carries the totals, the rest zeros)
        self.frames_processed = max(
            self.frames_processed, int(state["frames_processed"])
        )
        self.cells_evaluated = max(self.cells_evaluated, int(state["cells_evaluated"]))

    def reshard_state(self, states, shards, route):
        frames = sum(int(s["frames_processed"]) for s in states if s is not None)
        cells = sum(int(s["cells_evaluated"]) for s in states if s is not None)
        return [
            {
                "frames_processed": frames if i == 0 else 0,
                "cells_evaluated": cells if i == 0 else 0,
            }
            for i in range(shards)
        ]
