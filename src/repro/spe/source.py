"""Sources: where tuples enter a continuous query.

A source is any iterable of :class:`StreamTuple`. ``ListSource`` replays a
fixed dataset (optionally re-stamping ``ingest_time`` at emission, which is
what latency measurement needs); ``RateLimitedSource`` paces another source
at a target tuple rate, used by the throughput experiment (Figure 7) to
sweep offered load; ``CallbackSource`` adapts a pull function.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, Sequence

from .tuples import StreamTuple


class Source(ABC):
    """Base class for tuple producers."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def __iter__(self) -> Iterator[StreamTuple]:
        """Yield tuples until the source is exhausted."""


class ListSource(Source):
    """Replays a pre-built sequence of tuples.

    ``restamp=True`` sets each tuple's ``ingest_time`` to the moment it is
    emitted, so downstream latency measures system time, not dataset age.
    """

    def __init__(
        self, name: str, tuples: Sequence[StreamTuple], restamp: bool = True
    ) -> None:
        super().__init__(name)
        self._tuples = list(tuples)
        self._restamp = restamp

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        for t in self._tuples:
            if self._restamp:
                t.ingest_time = time.monotonic()
            yield t


class CallbackSource(Source):
    """Adapts a zero-argument function returning tuples (or None to stop)."""

    def __init__(
        self, name: str, poll: Callable[[], StreamTuple | None], restamp: bool = True
    ) -> None:
        super().__init__(name)
        self._poll = poll
        self._restamp = restamp

    def __iter__(self) -> Iterator[StreamTuple]:
        while True:
            t = self._poll()
            if t is None:
                return
            if self._restamp:
                t.ingest_time = time.monotonic()
            yield t


class IterableSource(Source):
    """Wraps any iterable of tuples."""

    def __init__(
        self, name: str, iterable: Iterable[StreamTuple], restamp: bool = True
    ) -> None:
        super().__init__(name)
        self._iterable = iterable
        self._restamp = restamp

    def __iter__(self) -> Iterator[StreamTuple]:
        for t in self._iterable:
            if self._restamp:
                t.ingest_time = time.monotonic()
            yield t


class RateLimitedSource(Source):
    """Paces an inner source to ``rate`` tuples per second.

    Uses an absolute schedule (start + i/rate) rather than per-tuple sleeps
    so pacing error does not accumulate; if the consumer falls behind the
    schedule the source does not try to catch up faster than the rate.
    """

    def __init__(self, inner: Source, rate: float) -> None:
        super().__init__(inner.name)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._inner = inner
        self._rate = rate
        # how far behind the absolute emission schedule the last tuple was
        # (0.0 while keeping up); exported as source lag by repro.obs
        self.lag_s = 0.0
        self.emitted = 0

    @property
    def rate(self) -> float:
        return self._rate

    def __iter__(self) -> Iterator[StreamTuple]:
        start = time.monotonic()
        for i, t in enumerate(self._inner):
            due = start + i / self._rate
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
                self.lag_s = 0.0
            else:
                self.lag_s = -delay
            t.ingest_time = time.monotonic()
            self.emitted = i + 1
            yield t
