"""Checkpoint barriers: the control punctuation of aligned snapshots.

Chandy–Lamport-style asynchronous snapshots adapted to streams (the
Flink/ABS model): a :class:`CheckpointBarrier` is injected at the sources
and flows *in-band* with data tuples, so the position of the barrier in
every stream defines one consistent cut through the whole dataflow. A
stateful node snapshots its state exactly when it has seen the barrier of
an epoch on **all** of its inputs (alignment); inputs whose barrier
already arrived are blocked until the slowest input catches up, so no
post-barrier tuple can leak into the snapshot.

Barriers are deliberately not :class:`~repro.spe.tuples.StreamTuple`
instances: operators never see them (the scheduler intercepts them), they
carry no event time, and they are broadcast to every output of a node —
including all replicas behind a hash router.
"""

from __future__ import annotations


class CheckpointBarrier:
    """In-band marker delimiting checkpoint epoch ``epoch``."""

    __slots__ = ("epoch",)

    def __init__(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("checkpoint epoch must be non-negative")
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointBarrier(epoch={self.epoch})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckpointBarrier):
            return NotImplemented
        return self.epoch == other.epoch

    def __hash__(self) -> int:
        return hash(("__checkpoint_barrier__", self.epoch))


def is_barrier(item: object) -> bool:
    """True when a stream item is a checkpoint barrier, not data."""
    return isinstance(item, CheckpointBarrier)
