"""Checkpoint barriers: the control punctuation of aligned snapshots.

Chandy–Lamport-style asynchronous snapshots adapted to streams (the
Flink/ABS model): a :class:`CheckpointBarrier` is injected at the sources
and flows *in-band* with data tuples, so the position of the barrier in
every stream defines one consistent cut through the whole dataflow. A
stateful node snapshots its state exactly when it has seen the barrier of
an epoch on **all** of its inputs (alignment); inputs whose barrier
already arrived are blocked until the slowest input catches up, so no
post-barrier tuple can leak into the snapshot.

Barriers are deliberately not :class:`~repro.spe.tuples.StreamTuple`
instances: operators never see them (the scheduler intercepts them), they
carry no event time, and they are broadcast to every output of a node —
including all replicas behind a hash router.
"""

from __future__ import annotations

import threading


class CheckpointBarrier:
    """In-band marker delimiting checkpoint epoch ``epoch``."""

    __slots__ = ("epoch",)

    def __init__(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("checkpoint epoch must be non-negative")
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointBarrier(epoch={self.epoch})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckpointBarrier):
            return NotImplemented
        return self.epoch == other.epoch

    def __hash__(self) -> int:
        return hash(("__checkpoint_barrier__", self.epoch))


#: Epoch numbers at or above this value belong to rescale barriers. Keeping
#: the two epoch spaces disjoint means an in-flight checkpoint epoch always
#: wins ``min()`` during alignment, so a rescale never starves a checkpoint.
RESCALE_EPOCH_BASE = 1 << 40


class RescaleBarrier(CheckpointBarrier):
    """Aligned drain barrier scoped to one replicated operator group.

    Rides the same alignment machinery as checkpoints, but instead of
    persisting state it *collects* it: every node named in ``scope``
    snapshots into the barrier (``on_snapshot``), retires itself, and
    forwards the barrier; the node named ``absorb_at`` (the group's merge)
    absorbs the barrier instead of forwarding, which signals the elastic
    controller (``notify_absorbed``) that the group is fully drained.
    """

    __slots__ = ("scope", "absorb_at", "_snapshots", "_absorbed", "_lock")

    def __init__(self, epoch: int, scope: frozenset[str], absorb_at: str) -> None:
        if epoch < RESCALE_EPOCH_BASE:
            raise ValueError("rescale epochs live at RESCALE_EPOCH_BASE and above")
        super().__init__(epoch)
        self.scope = frozenset(scope)
        self.absorb_at = absorb_at
        self._snapshots: dict[str, dict | None] = {}
        self._absorbed = threading.Event()
        self._lock = threading.Lock()

    def on_snapshot(self, name: str, state: dict | None) -> None:
        """Record one scope node's drained state (thread-safe)."""
        with self._lock:
            self._snapshots[name] = state

    @property
    def snapshots(self) -> dict[str, dict | None]:
        with self._lock:
            return dict(self._snapshots)

    def notify_absorbed(self) -> None:
        """The merge node consumed the barrier: the group is drained."""
        self._absorbed.set()

    def wait_absorbed(self, timeout: float | None = None) -> bool:
        return self._absorbed.wait(timeout)

    @property
    def absorbed(self) -> bool:
        return self._absorbed.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RescaleBarrier(epoch={self.epoch}, scope={sorted(self.scope)}, "
            f"absorb_at={self.absorb_at!r})"
        )


def is_barrier(item: object) -> bool:
    """True when a stream item is a checkpoint barrier, not data."""
    return isinstance(item, CheckpointBarrier)
