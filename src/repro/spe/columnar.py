"""Columnar blocks: struct-of-arrays transport for array-at-a-time operators.

A :class:`ColumnarBlock` is the columnar twin of a
:class:`~repro.spe.stream.TupleBatch`: the same run of data tuples, stored
as one array per field instead of one object per tuple. Operators that
advertise a ``process_block`` method (see
:class:`~repro.spe.plan.VectorizedFusedOperator`) transform whole columns
with numpy kernels — the per-cell stages of the use case drop from one
Python call per cell to a handful of array operations per image.

The conversion contract is **lossless**: ``from_tuples`` followed by
``to_tuples`` reproduces the original tuples field-for-field, including
payload value types (floats stay Python floats, not ``np.float64`` — the
serde layer and checkpoint manifests must not see numpy scalars).
Columns whose values are uniformly ``float`` or uniformly ``int`` become
``float64`` / ``int64`` arrays; everything else (strings, dicts, arrays,
mixed types, out-of-range ints) stays a plain list, so no value is ever
coerced.

Blocks only ever form over *data* tuples with one shared payload schema;
``from_tuples`` rejects mixed key sets rather than inventing missing
values. Control items (punctuation, barriers, EOS) are never blocked.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from .stream import TupleBatch, register_weighted_type
from .tuples import StreamTuple

__all__ = ["ColumnarBlock"]


def _as_column(values: list) -> "np.ndarray | list":
    """Pack a payload column, preserving exact value types on round-trip.

    ``bool`` is excluded from the int fast path (it is an ``int`` subclass
    but must round-trip as ``bool``); ints beyond int64 fall back to a
    plain list instead of overflowing.
    """
    first = values[0]
    if type(first) is float:
        for v in values:
            if type(v) is not float:
                return values
        return np.asarray(values, dtype=np.float64)
    if type(first) is int:
        for v in values:
            if type(v) is not int:
                return values
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            return values
    return values


def _take_list(values: list, indices: list[int]) -> list:
    return [values[i] for i in indices]


class ColumnarBlock:
    """A run of data tuples stored column-wise (struct-of-arrays)."""

    __slots__ = (
        "tau",
        "job",
        "layer",
        "specimen",
        "portion",
        "ingest_time",
        "trace_id",
        "columns",
    )

    #: streams account a block's weight as its row count (see item_weight)
    _is_columnar_block = True

    def __init__(
        self,
        tau: np.ndarray,
        job: list,
        layer: np.ndarray,
        specimen: list,
        portion: list,
        ingest_time: np.ndarray,
        trace_id: list,
        columns: dict[str, "np.ndarray | list"],
    ) -> None:
        self.tau = tau
        self.job = job
        self.layer = layer
        self.specimen = specimen
        self.portion = portion
        self.ingest_time = ingest_time
        self.trace_id = trace_id
        self.columns = columns

    @classmethod
    def from_tuples(cls, tuples: Sequence[StreamTuple]) -> "ColumnarBlock":
        """Build a block from a non-empty run of same-schema data tuples."""
        if not tuples:
            raise ValueError("cannot build a ColumnarBlock from zero tuples")
        keys = tuples[0].payload.keys()
        for t in tuples:
            if t.payload.keys() != keys:
                raise ValueError(
                    "ColumnarBlock requires a uniform payload schema; got "
                    f"{sorted(keys)} and {sorted(t.payload.keys())}"
                )
        columns: dict[str, np.ndarray | list] = {}
        for key in keys:
            columns[key] = _as_column([t.payload[key] for t in tuples])
        return cls(
            tau=np.array([t.tau for t in tuples], dtype=np.float64),
            job=[t.job for t in tuples],
            layer=np.array([t.layer for t in tuples], dtype=np.int64),
            specimen=[t.specimen for t in tuples],
            portion=[t.portion for t in tuples],
            ingest_time=np.array([t.ingest_time for t in tuples], dtype=np.float64),
            trace_id=[t.trace_id for t in tuples],
            columns=columns,
        )

    def to_tuples(self) -> TupleBatch:
        """Materialize the rows back into stream tuples (lossless).

        Array columns go through ``tolist()`` so payload values come back
        as plain Python floats/ints — bit-identical to the originals.
        """
        cols = [
            (key, col.tolist() if isinstance(col, np.ndarray) else col)
            for key, col in self.columns.items()
        ]
        taus = self.tau.tolist()
        layers = self.layer.tolist()
        ingests = self.ingest_time.tolist()
        jobs = self.job
        specimens = self.specimen
        portions = self.portion
        trace_ids = self.trace_id
        out = TupleBatch()
        append = out.append
        for i in range(len(taus)):
            t = StreamTuple.__new__(StreamTuple)
            t.tau = taus[i]
            t.job = jobs[i]
            t.layer = layers[i]
            t.specimen = specimens[i]
            t.portion = portions[i]
            t.payload = {key: col[i] for key, col in cols}
            t.ingest_time = ingests[i]
            t.trace_id = trace_ids[i]
            append(t)
        return out

    def take(self, indices: "np.ndarray | Iterable[int]") -> "ColumnarBlock":
        """New block with the rows at ``indices``, in the given order."""
        idx = np.asarray(indices, dtype=np.intp)
        idx_list = idx.tolist()
        return ColumnarBlock(
            tau=self.tau[idx],
            job=_take_list(self.job, idx_list),
            layer=self.layer[idx],
            specimen=_take_list(self.specimen, idx_list),
            portion=_take_list(self.portion, idx_list),
            ingest_time=self.ingest_time[idx],
            trace_id=_take_list(self.trace_id, idx_list),
            columns={
                key: col[idx] if isinstance(col, np.ndarray) else _take_list(col, idx_list)
                for key, col in self.columns.items()
            },
        )

    def select(self, mask: np.ndarray) -> "ColumnarBlock":
        """New block with the rows where boolean ``mask`` is true."""
        return self.take(np.nonzero(np.asarray(mask, dtype=bool))[0])

    def with_columns(self, **extra: Any) -> "ColumnarBlock":
        """New block sharing this block's metadata with columns added."""
        columns = dict(self.columns)
        columns.update(extra)
        return ColumnarBlock(
            tau=self.tau,
            job=self.job,
            layer=self.layer,
            specimen=self.specimen,
            portion=self.portion,
            ingest_time=self.ingest_time,
            trace_id=self.trace_id,
            columns=columns,
        )

    def __len__(self) -> int:
        return len(self.tau)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ColumnarBlock(rows={len(self)}, "
            f"columns={sorted(self.columns)})"
        )


register_weighted_type(ColumnarBlock)
