"""Continuous queries: directed acyclic graphs of sources, operators, sinks.

A :class:`Query` is assembled declaratively (``add_source`` /
``add_operator`` / ``add_sink`` naming upstream nodes), validated, and then
*built*: building materializes one :class:`~repro.spe.stream.Stream` per
(upstream node, downstream input) edge and resolves operator parallelism.

Parallelism follows the paper's disjoint-analysis design (§4): an operator
declared with ``parallelism=N`` becomes a hash router plus N independent
replicas keyed by ``key_fn`` (default: ``(job, specimen, portion)``), whose
outputs merge into each downstream input stream.
"""

from __future__ import annotations

from typing import Callable, Hashable

from .errors import QueryValidationError
from .operators.base import Operator
from .operators.router import HashRouter, partition_key
from .operators.union import UnionOperator
from .sink import Sink
from .source import Source
from .stream import Stream
from .tuples import StreamTuple

KeyFunction = Callable[[StreamTuple], Hashable]
OperatorFactory = Callable[[], Operator]


class _RouterOperator(Operator):
    """Identity operator whose node routes outputs by key hash."""

    num_inputs = 1

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        return [t]


class Node:
    """A materialized query-graph vertex with its connecting streams.

    ``base_name`` is the *logical* name a node snapshots/restores under:
    replicas of a replicated stage share the base name of the stage they
    clone, and fused nodes (see :mod:`repro.spe.plan`) keep each
    constituent's base name, so recovery manifests stay portable across
    plan shapes. ``factory``/``key_fn``/``replicable`` are plan-compiler
    metadata: a node the replication pass may clone behind a hash router.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        source: Source | None = None,
        operator: Operator | None = None,
        sink: Sink | None = None,
        router: HashRouter | None = None,
        base_name: str | None = None,
    ) -> None:
        self.name = name
        self.kind = kind  # "source" | "operator" | "sink"
        self.source = source
        self.operator = operator
        self.sink = sink
        self.router = router  # non-None => hash-route outputs instead of broadcast
        self.base_name = base_name if base_name is not None else name
        self.factory: OperatorFactory | None = None
        self.key_fn: KeyFunction | None = None
        self.replicable = False
        # Set on router nodes of keyed-replicated groups: the recipe the
        # elastic controller uses to rebuild the group at a new replica
        # count (see repro.spe.plan.ReplicaGroupMeta).
        self.rescale_meta = None
        self.inputs: list[Stream] = []
        self.outputs: list[Stream] = []

    def route(self, t: StreamTuple) -> list[Stream]:
        """Streams this tuple should be written to."""
        if self.router is None:
            return self.outputs
        return [self.outputs[self.router.route(t)]]

    def checkpoint_names(self) -> list[str]:
        """Names this node snapshots under (fused nodes: one per part)."""
        if self.kind == "operator" and hasattr(self.operator, "snapshot_parts"):
            return list(self.operator.part_names())
        return [self.name]

    def restore_state_for(self, name: str, state: dict) -> bool:
        """Restore manifest entry ``name`` into this node if it covers it.

        Matches the exact node name, the logical ``base_name`` (so a
        manifest from an unreplicated run restores into every replica),
        or any constituent of a fused node. Returns True on a match.
        """
        if self.kind == "source":
            return False
        if self.kind == "sink":
            if name not in (self.name, self.base_name):
                return False
            self.sink.restore_state(state)
            return True
        if hasattr(self.operator, "restore_part"):
            return self.operator.restore_part(name, state)
        if name not in (self.name, self.base_name):
            return False
        self.operator.restore_state(state)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"Node({self.name!r}, {self.kind})"


class _Declared:
    """One user-declared vertex, before materialization."""

    def __init__(
        self,
        name: str,
        kind: str,
        upstreams: list[str],
        source: Source | None = None,
        operator: Operator | None = None,
        factory: OperatorFactory | None = None,
        sink: Sink | None = None,
        parallelism: int = 1,
        key_fn: KeyFunction | None = None,
        replicable: bool = False,
    ) -> None:
        self.name = name
        self.kind = kind
        self.upstreams = upstreams
        self.source = source
        self.operator = operator
        self.factory = factory
        self.sink = sink
        self.parallelism = parallelism
        self.key_fn = key_fn
        self.replicable = replicable


class Query:
    """Declarative builder for one continuous query."""

    def __init__(self, name: str = "query", default_capacity: int | None = 10_000) -> None:
        self.name = name
        self._default_capacity = default_capacity
        self._declared: dict[str, _Declared] = {}
        self._order: list[str] = []

    # -- declaration -------------------------------------------------------

    def _declare(self, decl: _Declared) -> None:
        if decl.name in self._declared:
            raise QueryValidationError(f"duplicate node name {decl.name!r}")
        for upstream in decl.upstreams:
            if upstream not in self._declared:
                raise QueryValidationError(
                    f"node {decl.name!r} references unknown upstream {upstream!r}"
                )
        self._declared[decl.name] = decl
        self._order.append(decl.name)

    def add_source(self, name: str, source: Source) -> "Query":
        """Register a tuple producer."""
        self._declare(_Declared(name, "source", [], source=source))
        return self

    def add_operator(
        self,
        name: str,
        operator: Operator | OperatorFactory,
        upstreams: list[str] | str,
        parallelism: int = 1,
        key_fn: KeyFunction | None = None,
        replicable: bool = False,
    ) -> "Query":
        """Register an operator consuming from ``upstreams``.

        With ``parallelism > 1`` pass a zero-argument *factory* so each
        replica gets independent state; a bare instance is accepted only
        for ``parallelism == 1``. ``replicable=True`` (requires a factory)
        marks the stage as safe for the plan compiler's replication pass:
        its state is keyed by ``key_fn`` so disjoint key ranges can be
        processed by independent replicas behind a hash router.
        """
        if isinstance(upstreams, str):
            upstreams = [upstreams]
        if parallelism < 1:
            raise QueryValidationError("parallelism must be >= 1")
        if parallelism > 1 and isinstance(operator, Operator):
            raise QueryValidationError(
                "parallel operators need a factory (each replica needs its own state)"
            )
        if replicable and isinstance(operator, Operator):
            raise QueryValidationError(
                "replicable operators need a factory (each replica needs its own state)"
            )
        decl = _Declared(
            name,
            "operator",
            list(upstreams),
            operator=operator if isinstance(operator, Operator) else None,
            factory=None if isinstance(operator, Operator) else operator,
            parallelism=parallelism,
            key_fn=key_fn,
            replicable=replicable,
        )
        self._declare(decl)
        return self

    def add_sink(self, name: str, sink: Sink, upstreams: list[str] | str) -> "Query":
        """Register a result consumer."""
        if isinstance(upstreams, str):
            upstreams = [upstreams]
        self._declare(_Declared(name, "sink", list(upstreams), sink=sink))
        return self

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check the declared graph is a sensible DAG."""
        if not self._declared:
            raise QueryValidationError("query has no nodes")
        kinds = {d.kind for d in self._declared.values()}
        if "source" not in kinds:
            raise QueryValidationError("query has no sources")
        if "sink" not in kinds:
            raise QueryValidationError("query has no sinks")
        # Declaration order already forbids forward references, hence cycles;
        # still verify expected input arity for multi-input operators.
        for decl in self._declared.values():
            if decl.kind != "operator":
                continue
            op = decl.operator if decl.operator is not None else decl.factory()
            if op.num_inputs != len(decl.upstreams):
                raise QueryValidationError(
                    f"operator {decl.name!r} expects {op.num_inputs} inputs, "
                    f"got {len(decl.upstreams)} upstreams"
                )
        # every non-sink node must be consumed by someone
        consumed = {u for d in self._declared.values() for u in d.upstreams}
        for decl in self._declared.values():
            if decl.kind != "sink" and decl.name not in consumed:
                raise QueryValidationError(f"node {decl.name!r} has no consumer")

    # -- materialization -----------------------------------------------------

    def build(self, capacity: int | None = None) -> list[Node]:
        """Materialize nodes and streams; returns nodes in topological order."""
        self.validate()
        if capacity is None:
            capacity = self._default_capacity
        nodes: list[Node] = []
        # declared name -> list of terminal nodes whose outputs carry its stream
        producers: dict[str, list[Node]] = {}
        for name in self._order:
            decl = self._declared[name]
            if decl.kind == "source":
                node = Node(name, "source", source=decl.source)
                nodes.append(node)
                producers[name] = [node]
            elif decl.kind == "operator":
                built = self._build_operator(decl, producers, nodes, capacity)
                producers[name] = built
            else:
                node = Node(name, "sink", sink=decl.sink)
                nodes.append(node)
                self._connect(decl.upstreams, node, producers, capacity)
        return nodes

    def _build_operator(
        self,
        decl: _Declared,
        producers: dict[str, list[Node]],
        nodes: list[Node],
        capacity: int | None,
    ) -> list[Node]:
        if decl.parallelism == 1:
            op = decl.operator if decl.operator is not None else decl.factory()
            node = Node(decl.name, "operator", operator=op)
            if decl.factory is not None:
                node.factory = decl.factory
                node.key_fn = decl.key_fn
                node.replicable = decl.replicable
            nodes.append(node)
            self._connect(decl.upstreams, node, producers, capacity)
            return [node]
        # parallel: router -> N replicas -> union merge. The explicit Union
        # keeps every replica edge single-producer, so checkpoint barriers
        # align exactly downstream of the replicated stage.
        effective_key_fn = decl.key_fn or partition_key
        router = Node(
            f"{decl.name}::router",
            "operator",
            operator=_RouterOperator(f"{decl.name}::router"),
            router=HashRouter(decl.parallelism, effective_key_fn),
        )
        # Same recipe shape the plan compiler's replication pass records,
        # so declaration-parallel groups are rescalable too.
        from .plan import ReplicaGroupMeta  # local import: plan imports query

        router.rescale_meta = ReplicaGroupMeta(
            members=[decl.name],
            factories=[decl.factory],
            key_fn=effective_key_fn,
            router_name=router.name,
            merge_name=f"{decl.name}::merge",
            member_capacities=[_cap(capacity)],
            out_capacity=_cap(capacity),
        )
        nodes.append(router)
        self._connect(decl.upstreams, router, producers, capacity)
        merge_name = f"{decl.name}::merge"
        merge = Node(
            merge_name,
            "operator",
            operator=UnionOperator(merge_name, num_inputs=decl.parallelism),
        )
        for i in range(decl.parallelism):
            op = decl.factory()
            if op.num_inputs != 1:
                raise QueryValidationError(
                    f"parallel operator {decl.name!r} must be single-input "
                    f"(got num_inputs={op.num_inputs})"
                )
            replica = Node(f"{decl.name}::{i}", "operator", operator=op, base_name=decl.name)
            stream = Stream(f"{router.name}->{replica.name}", _cap(capacity))
            router.outputs.append(stream)
            replica.inputs.append(stream)
            merge_stream = Stream(f"{replica.name}->{merge.name}", _cap(capacity))
            replica.outputs.append(merge_stream)
            merge.inputs.append(merge_stream)
            nodes.append(replica)
        nodes.append(merge)
        return [merge]

    @staticmethod
    def _connect(
        upstreams: list[str],
        node: Node,
        producers: dict[str, list[Node]],
        capacity: int | None,
    ) -> None:
        for upstream_name in upstreams:
            ups = producers[upstream_name]
            stream = Stream(f"{upstream_name}->{node.name}", _cap(capacity))
            stream.set_num_producers(len(ups))
            for up in ups:
                up.outputs.append(stream)
            node.inputs.append(stream)


def _cap(capacity: int | None) -> int:
    # "Unbounded" capacity for the synchronous scheduler: a single-threaded
    # drain can never block on put, so use a huge bound instead of a real
    # infinity to keep the Stream invariants simple.
    return capacity if capacity is not None else 2**31
