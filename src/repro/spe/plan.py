"""Query-plan compiler: rewrite a materialized node graph before scheduling.

The declarative :class:`~repro.spe.query.Query` builds a graph where every
operator owns a thread and every edge is a bounded queue with per-tuple
lock/condvar traffic. That is faithful to Liebre's execution model but
dominates end-to-end latency long before the analytics do. Native SPEs
close this gap with plan-level optimization — Flink's operator chaining,
Strider's runtime plan adaptation — and this module reproduces the same
idea with three passes over the *materialized* node list:

* **replication** — clone maximal runs of keyed, factory-built stages
  (``partition`` / ``detectEvent`` / ``correlateEvents``) N ways behind a
  hash router, merging through an explicit Union so every replica edge
  stays single-producer and checkpoint barriers align exactly;
* **fusion** — collapse linear chains of single-input/single-output
  operators into one :class:`FusedOperator` that executes by direct
  function composition: no intermediate stream, queue, or thread hop;
* **batched edge transport** — not a graph rewrite: the plan carries an
  edge batch size that :class:`~repro.spe.scheduler.ThreadedScheduler`
  uses to move :class:`~repro.spe.stream.TupleBatch` entries through the
  remaining queues, amortizing synchronization.

Fusion is checkpoint-transparent. A fused node aligns and forwards
barriers exactly like the chain head did, and snapshots composite state
*keyed by each constituent operator's original node name* (via
``snapshot_parts``), so the recovery manifest written by a fused run is
byte-compatible with one written by an unfused run — a checkpoint taken
under either plan shape restores into the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .errors import PlanError
from .operators.base import Operator
from .operators.router import HashRouter
from .operators.union import UnionOperator
from .query import KeyFunction, Node, _RouterOperator
from .stream import Stream
from .tuples import StreamTuple


@dataclass(frozen=True)
class PlanConfig:
    """Knobs for the plan compiler and the batched transport layer.

    ``fusion``           enable the chain-fusion pass.
    ``edge_batch_size``  tuples moved per queue entry on threaded edges
                         (1 = unbatched transport).
    ``parallelism``      replica count for the keyed-replication pass
                         (1 = pass disabled).
    ``linger_s``         max time a partially filled batch may wait before
                         being flushed to its edge.
    ``vectorize``        emit :class:`VectorizedFusedOperator` for fused
                         chains with at least one block-capable member, so
                         kernel-compatible stages run array-at-a-time.
    """

    fusion: bool = True
    edge_batch_size: int = 32
    parallelism: int = 1
    linger_s: float = 0.005
    vectorize: bool = True

    def __post_init__(self) -> None:
        if self.edge_batch_size < 1:
            raise ValueError("edge_batch_size must be >= 1")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.linger_s < 0:
            raise ValueError("linger_s must be non-negative")

    @classmethod
    def resolve(cls, optimize: "PlanConfig | bool | None") -> "PlanConfig | None":
        """Normalize the ``optimize=`` argument of user-facing APIs."""
        if optimize is None or optimize is False:
            return None
        if optimize is True:
            return cls()
        if isinstance(optimize, cls):
            return optimize
        raise TypeError(f"optimize must be bool, None or PlanConfig, got {optimize!r}")

    def describe(self) -> str:
        parts = [
            f"fusion={'on' if self.fusion else 'off'}",
            f"batch={self.edge_batch_size}",
            f"parallelism={self.parallelism}",
            f"vectorize={'on' if self.vectorize else 'off'}",
        ]
        return ", ".join(parts)


class _FusedPart:
    """One constituent operator of a fused chain, with its logical names."""

    __slots__ = ("name", "base_name", "operator")

    def __init__(self, name: str, base_name: str, operator: Operator) -> None:
        self.name = name
        self.base_name = base_name
        self.operator = operator


class FusedOperator(Operator):
    """A linear operator chain executed by direct function composition.

    ``process`` cascades each tuple through every constituent in order —
    the work four threads and three queues used to do happens as plain
    nested function calls. End-of-stream is cascaded stage by stage so
    flush ordering is identical to the unfused plan: when stage *i*
    closes, its ``on_input_closed``/``on_close`` output flows through
    stages *i+1..n* before stage *i+1* itself is closed.
    """

    num_inputs = 1

    #: how this chain executes tuples; read by explain()/obs/top
    execution_mode = "scalar"

    def __init__(self, name: str, parts: Iterable[_FusedPart]) -> None:
        super().__init__(name)
        self._parts = list(parts)
        if len(self._parts) < 2:
            raise ValueError("fusing fewer than two operators is pointless")
        for part in self._parts:
            if part.operator.num_inputs != 1:
                raise ValueError(
                    f"fused constituent {part.name!r} must be single-input"
                )
        # bound process methods, resolved once: the cascade loop runs per
        # tuple per stage and attribute lookups there are measurable
        self._processes = [part.operator.process for part in self._parts]
        # bulk per-stage methods where a member offers one (used whenever a
        # whole run of tuples traverses the chain at once)
        self._manys = [
            getattr(part.operator, "process_many", None) for part in self._parts
        ]
        # per-constituent (tuples_in, tuples_out), populated only when
        # observability asks for member-level stats
        self._member_counts: list[list[int]] | None = None

    @property
    def parts(self) -> list[_FusedPart]:
        return list(self._parts)

    def part_names(self) -> list[str]:
        """Original node names, the keys fused state snapshots under."""
        return [part.name for part in self._parts]

    def _cascade(self, tuples: list[StreamTuple], start: int) -> list[StreamTuple]:
        """Push tuples through constituents ``start..n-1``."""
        for i in range(start, len(self._processes)):
            if not tuples:
                return tuples
            if len(tuples) == 1:
                tuples = self._processes[i](0, tuples[0])
                continue
            many = self._manys[i]
            if many is not None:
                tuples = many(tuples)
                continue
            process = self._processes[i]
            nxt: list[StreamTuple] = []
            extend = nxt.extend
            for t in tuples:
                out = process(0, t)
                if out:
                    extend(out)
            tuples = nxt
        return tuples

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        return self._cascade([t], 0)

    def process_many(self, tuples: list[StreamTuple]) -> list[StreamTuple]:
        """Batch counterpart of :meth:`process`: cascade a whole run.

        Equivalent to processing the run tuple by tuple and concatenating
        (each stage preserves its input order), but members that offer a
        bulk method handle the run in one call.
        """
        return self._cascade(tuples, 0)

    # -- member-level observability ---------------------------------------

    def enable_member_stats(self) -> None:
        """Count tuples in/out per constituent (repro.obs; idempotent).

        Swaps the cascade for a counting variant on this *instance* only,
        so un-observed pipelines keep the zero-overhead loop.
        """
        if self._member_counts is None:
            self._member_counts = [[0, 0] for _ in self._parts]
            self._cascade = self._cascade_counted  # type: ignore[method-assign]

    def member_stats(self) -> dict[str, tuple[int, int]] | None:
        """Per-constituent (tuples_in, tuples_out), keyed by original name."""
        if self._member_counts is None:
            return None
        return {
            part.name: (counts[0], counts[1])
            for part, counts in zip(self._parts, self._member_counts)
        }

    def _cascade_counted(
        self, tuples: list[StreamTuple], start: int
    ) -> list[StreamTuple]:
        member_counts = self._member_counts
        for i in range(start, len(self._processes)):
            if not tuples:
                return tuples
            counts = member_counts[i]
            counts[0] += len(tuples)
            many = self._manys[i]
            if many is not None and len(tuples) > 1:
                tuples = many(tuples)
                counts[1] += len(tuples)
                continue
            process = self._processes[i]
            nxt: list[StreamTuple] = []
            extend = nxt.extend
            for t in tuples:
                out = process(0, t)
                if out:
                    extend(out)
            counts[1] += len(nxt)
            tuples = nxt
        return tuples

    def on_input_closed(self, input_index: int) -> list[StreamTuple]:
        # Only the chain head observes the node's real input closing; what
        # it releases still flows through the rest of the chain.
        return self._cascade(self._parts[0].operator.on_input_closed(0), 1)

    def on_close(self) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        for i, part in enumerate(self._parts):
            if i > 0:
                # the upstream constituent just emitted its last tuple, so
                # this constituent's (single) input is now closed
                out.extend(self._cascade(part.operator.on_input_closed(0), i + 1))
            out.extend(self._cascade(part.operator.on_close(), i + 1))
        return out

    # -- checkpointing ----------------------------------------------------

    def snapshot_parts(self) -> dict[str, Any]:
        """Per-constituent snapshots keyed by original node name."""
        return {part.name: part.operator.snapshot_state() for part in self._parts}

    def restore_part(self, name: str, state: dict[str, Any]) -> bool:
        """Restore one manifest entry into the matching constituent(s)."""
        hit = False
        for part in self._parts:
            if name in (part.name, part.base_name):
                part.operator.restore_state(state)
                hit = True
        return hit

    def snapshot_state(self) -> dict[str, Any] | None:
        # Fused nodes checkpoint through snapshot_parts (one manifest entry
        # per constituent); the whole-node form exists for completeness.
        parts = {k: v for k, v in self.snapshot_parts().items() if v is not None}
        return parts or None

    def restore_state(self, state: dict[str, Any]) -> None:
        for name, part_state in state.items():
            if not self.restore_part(name, part_state):
                raise KeyError(f"no fused constituent named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"FusedOperator({' + '.join(self.part_names())})"


class VectorizedFusedOperator(FusedOperator):
    """A fused chain whose kernel-compatible stages run array-at-a-time.

    Single tuples still take the inherited scalar cascade (a one-row block
    costs more than it saves); when a run arrives — a
    :class:`~repro.spe.stream.TupleBatch` from a batched edge — maximal
    groups of consecutive *block-capable* members execute block-to-block:
    the run converts to a :class:`~repro.spe.columnar.ColumnarBlock` once
    at the group's entry, each member's ``process_block`` transforms it
    column-wise, and rows convert back to tuples only at the group's exit.
    Members without a block variant (and rows a member declares
    ineligible: punctuation, specimen-less tuples) run the scalar path at
    their exact stream position, so ordering, punctuation semantics, and
    every counter are identical to the scalar chain.

    Eligibility is decided at group entry; block kernels must preserve the
    eligibility invariants downstream stages rely on (they may filter or
    fan out rows but never clear a specimen or mint punctuation — both
    use-case kernels satisfy this by construction). Blocks additionally
    split on payload-schema changes, since a block holds one column set.

    Checkpointing, end-of-stream cascades, and member naming are inherited
    unchanged, so snapshots and recovery manifests written under this
    operator are byte-compatible with scalar fused and unfused plans.
    """

    execution_mode = "vectorized"

    def __init__(self, name: str, parts: Iterable[_FusedPart]) -> None:
        super().__init__(name, parts)
        self._block_capable = [
            bool(getattr(part.operator, "supports_block", False))
            for part in self._parts
        ]
        self._block_processes = [
            getattr(part.operator, "process_block", None) for part in self._parts
        ]
        self._eligibles = [
            getattr(part.operator, "block_eligible", None) for part in self._parts
        ]
        # columnar transport counters (block fill ratio in repro.obs)
        self.blocks_in = 0
        self.block_rows_in = 0

    def member_modes(self) -> dict[str, str]:
        """Execution mode per constituent, keyed by original node name."""
        return {
            part.name: "block" if capable else "scalar"
            for part, capable in zip(self._parts, self._block_capable)
        }

    def process_many(self, tuples: list[StreamTuple]) -> list[StreamTuple]:
        items = list(tuples)
        n = len(self._parts)
        i = 0
        while i < n:
            if not items:
                return items
            if not self._block_capable[i]:
                items = self._apply_scalar(items, i)
                i += 1
                continue
            j = i + 1
            while j < n and self._block_capable[j]:
                j += 1
            items = self._run_block_group(items, i, j)
            i = j
        return items

    def _apply_scalar(self, tuples: list[StreamTuple], i: int) -> list[StreamTuple]:
        """One scalar stage over a run (member stats included when on)."""
        counts = self._member_counts[i] if self._member_counts is not None else None
        if counts is not None:
            counts[0] += len(tuples)
        many = self._manys[i]
        if many is not None:
            out = many(tuples)
        else:
            process = self._processes[i]
            out = []
            extend = out.extend
            for t in tuples:
                got = process(0, t)
                if got:
                    extend(got)
        if counts is not None:
            counts[1] += len(out)
        return out

    def _run_block_group(
        self, items: list[StreamTuple], i: int, j: int
    ) -> list[StreamTuple]:
        """Stages ``i..j-1`` (all block-capable) over one run of tuples."""
        eligibles = [e for e in self._eligibles[i:j] if e is not None]
        out: list[StreamTuple] = []
        extend = out.extend
        run: list[StreamTuple] = []
        run_keys = None
        for t in items:
            eligible = True
            for is_eligible in eligibles:
                if not is_eligible(t):
                    eligible = False
                    break
            if eligible:
                keys = t.payload.keys()
                if run and keys != run_keys:
                    self._flush_block_run(run, i, j, extend)
                    run = []
                run_keys = keys
                run.append(t)
                continue
            if run:
                self._flush_block_run(run, i, j, extend)
                run = []
            # ineligible row: scalar through these stages, in stream order
            seq = [t]
            for k in range(i, j):
                seq = self._apply_scalar(seq, k)
                if not seq:
                    break
            if seq:
                extend(seq)
        if run:
            self._flush_block_run(run, i, j, extend)
        return out

    def _flush_block_run(self, run: list[StreamTuple], i: int, j: int, extend) -> None:
        from .columnar import ColumnarBlock

        block = ColumnarBlock.from_tuples(run)
        self.blocks_in += 1
        self.block_rows_in += len(run)
        member_counts = self._member_counts
        for k in range(i, j):
            if member_counts is not None:
                member_counts[k][0] += len(block)
            block = self._block_processes[k](block)
            if member_counts is not None:
                member_counts[k][1] += len(block)
            if not len(block):
                return
        extend(block.to_tuples())

    def __repr__(self) -> str:  # pragma: no cover
        return f"VectorizedFusedOperator({' + '.join(self.part_names())})"


# -- fusion pass -----------------------------------------------------------


def _consumer_map(nodes: list[Node]) -> dict[int, Node]:
    return {id(s): n for n in nodes for s in n.inputs}


def fuse_linear_chains(nodes: list[Node], vectorize: bool = False) -> list[Node]:
    """Collapse linear operator chains into :class:`FusedOperator` nodes.

    A chain grows from a single-input operator node across edges that are
    single-producer *and* single-consumer; it extends past a member only
    while that member broadcasts to exactly one output stream and does not
    hash-route (a router node may only terminate a chain, so the fused
    node keeps its routing table). Sources and sinks never fuse — they are
    the measurement boundaries for ingest/latency accounting. The router
    and merge of a rescalable replica group never fuse either: the elastic
    controller must be able to retire and resplice them by name.

    With ``vectorize``, a chain containing at least one block-capable
    member (the operator advertises ``supports_block``) becomes a
    :class:`VectorizedFusedOperator`; otherwise (or when every member is
    scalar-only) a plain :class:`FusedOperator` is emitted. The decision
    and its reason are recorded on the fused node (``execution_mode`` /
    ``mode_reason``) for ``explain()``.
    """
    protected: set[str] = set()
    for node in nodes:
        meta = getattr(node, "rescale_meta", None)
        if meta is not None:
            protected.add(node.name)
            protected.add(meta.merge_name)
    consumer_of = _consumer_map(nodes)
    absorbed: set[int] = set()
    fused_for_head: dict[int, Node] = {}
    for node in nodes:
        if id(node) in absorbed:
            continue
        if node.kind != "operator" or len(node.inputs) != 1:
            continue
        if node.name in protected:
            continue
        chain = [node]
        while True:
            last = chain[-1]
            if last.router is not None or len(last.outputs) != 1:
                break
            stream = last.outputs[0]
            if stream.num_producers != 1:
                break
            nxt = consumer_of.get(id(stream))
            if nxt is None or nxt.kind != "operator" or len(nxt.inputs) != 1:
                break
            if id(nxt) in absorbed or nxt.name in protected:
                break
            chain.append(nxt)
        if len(chain) < 2:
            continue
        for member in chain:
            absorbed.add(id(member))
        name = "fused[" + "+".join(m.name for m in chain) + "]"
        parts = [_FusedPart(m.name, m.base_name, m.operator) for m in chain]
        capable = [
            bool(getattr(m.operator, "supports_block", False)) for m in chain
        ]
        if vectorize and any(capable):
            operator: FusedOperator = VectorizedFusedOperator(name, parts)
            scalar_members = [m.name for m, c in zip(chain, capable) if not c]
            reason = (
                "scalar members: " + ", ".join(scalar_members)
                if scalar_members
                else None
            )
        else:
            operator = FusedOperator(name, parts)
            if not vectorize:
                reason = "vectorize=off"
            else:
                reason = "no member provides a block variant"
        fused = Node(
            name, "operator", operator=operator, router=chain[-1].router
        )
        fused.mode_reason = reason
        fused.inputs = list(chain[0].inputs)
        fused.outputs = list(chain[-1].outputs)
        fused_for_head[id(chain[0])] = fused
    out: list[Node] = []
    for node in nodes:
        if id(node) in fused_for_head:
            out.append(fused_for_head[id(node)])
        elif id(node) not in absorbed:
            out.append(node)
    return out


# -- replication pass ------------------------------------------------------


@dataclass
class ReplicaGroupMeta:
    """Recipe for (re)building one keyed-replicated operator group.

    Captured when the replication pass first rewrites a group and attached
    to the router node (``node.rescale_meta``); the elastic controller
    replays the recipe at a different replica count mid-run. Capacities are
    remembered per member so respliced edges keep the original bounds.
    """

    members: list[str]
    factories: list[Callable[[], Operator]]
    key_fn: KeyFunction
    router_name: str
    merge_name: str
    member_capacities: list[int | None] = field(default_factory=list)
    out_capacity: int | None = None


def build_replicated_group(
    meta: ReplicaGroupMeta,
    parallelism: int,
    inputs: list[Stream],
    outputs: list[Stream],
) -> tuple[list[Node], dict[str, Operator]]:
    """Materialize one replica group at ``parallelism`` from its recipe.

    Returns the new nodes (router, clone chains, merge) plus the fresh
    clone operators keyed by shard name (``member::i``) so callers can
    restore re-sharded state into them *before* the chains are fused.
    """
    if parallelism < 1:
        raise PlanError("replica group parallelism must be >= 1")
    router = Node(
        meta.router_name,
        "operator",
        operator=_RouterOperator(meta.router_name),
        router=HashRouter(parallelism, meta.key_fn),
    )
    router.rescale_meta = meta
    router.inputs = list(inputs)
    merge = Node(
        meta.merge_name,
        "operator",
        operator=UnionOperator(meta.merge_name, num_inputs=parallelism),
    )
    merge.outputs = list(outputs)
    built: list[Node] = [router]
    clone_ops: dict[str, Operator] = {}
    for i in range(parallelism):
        prev = router
        for member_name, factory, capacity in zip(
            meta.members, meta.factories, meta.member_capacities
        ):
            operator = factory()
            clone = Node(
                f"{member_name}::{i}", "operator", operator=operator,
                base_name=member_name,
            )
            clone_ops[clone.name] = operator
            stream = Stream(f"{prev.name}->{clone.name}", capacity)
            prev.outputs.append(stream)
            clone.inputs.append(stream)
            built.append(clone)
            prev = clone
        stream = Stream(f"{prev.name}->{merge.name}", meta.out_capacity)
        prev.outputs.append(stream)
        merge.inputs.append(stream)
    built.append(merge)
    return built, clone_ops


def replicate_keyed_stages(
    nodes: list[Node], parallelism: int, wrap_single: bool = False
) -> list[Node]:
    """Replicate runs of keyed stages N ways behind a hash router.

    Finds maximal consecutive runs of ``replicable`` nodes (factory-built,
    keyed state) sharing one key function, connected by single-producer /
    single-consumer edges, and rewrites each run to::

        router --> run-clone 0 --> \\
               --> run-clone 1 -->  union --> (original downstream)
               --> run-clone N -->

    Each clone chain is built from fresh operators (every replica owns its
    own state) and keeps the original node names as ``base_name`` so
    recovery manifests keep restoring across plan shapes. The fusion pass
    then collapses every clone chain into a single node, so replication
    costs two extra hops (router, union) regardless of run length.

    With ``wrap_single`` the rewrite also runs at ``parallelism == 1``,
    wrapping each group in a one-way router/merge pair — the scaffolding
    the elastic controller needs to rescale the group later.
    """
    if parallelism <= 1 and not wrap_single:
        return nodes
    parallelism = max(1, parallelism)
    consumer_of = _consumer_map(nodes)
    grouped: set[int] = set()
    groups_by_head: dict[int, list[Node]] = {}
    for node in nodes:
        if id(node) in grouped:
            continue
        if not node.replicable or node.factory is None or len(node.inputs) != 1:
            continue
        group = [node]
        grouped.add(id(node))
        while True:
            last = group[-1]
            if last.router is not None or len(last.outputs) != 1:
                break
            stream = last.outputs[0]
            if stream.num_producers != 1:
                break
            nxt = consumer_of.get(id(stream))
            if (
                nxt is None
                or id(nxt) in grouped
                or not nxt.replicable
                or nxt.factory is None
                or len(nxt.inputs) != 1
                or nxt.key_fn is not group[0].key_fn
            ):
                break
            group.append(nxt)
            grouped.add(id(nxt))
        groups_by_head[id(node)] = group
    if not groups_by_head:
        return nodes

    member_ids = {id(m) for g in groups_by_head.values() for m in g}
    out: list[Node] = []
    for node in nodes:
        if id(node) in groups_by_head:
            out.extend(_replicate_group(groups_by_head[id(node)], parallelism))
        elif id(node) not in member_ids:
            out.append(node)
    return out


def _replicate_group(group: list[Node], parallelism: int) -> list[Node]:
    head, tail = group[0], group[-1]
    if head.key_fn is None:
        raise PlanError(
            f"cannot replicate keyed stage group headed by {head.name!r}: "
            f"the operator is marked replicable but declares no key "
            f"function; pass key_fn= when adding it to the query"
        )
    meta = ReplicaGroupMeta(
        members=[m.name for m in group],
        factories=[m.factory for m in group],
        key_fn=head.key_fn,
        router_name=f"{head.name}::router",
        merge_name=f"{tail.name}::merge",
        member_capacities=[m.inputs[0].capacity for m in group],
        out_capacity=tail.outputs[0].capacity,
    )
    built, _ = build_replicated_group(
        meta, parallelism, inputs=head.inputs, outputs=tail.outputs
    )
    return built


# -- driver ----------------------------------------------------------------


def compile_plan(
    nodes: list[Node], config: PlanConfig | None, force_replication: bool = False
) -> list[Node]:
    """Apply the enabled passes; ``None`` config returns the graph as-is.

    ``force_replication`` runs the replication pass even at
    ``parallelism == 1`` (wrapping groups in a one-way router/merge) so an
    elastic deployment can rescale them later.
    """
    if config is None:
        return nodes
    if config.parallelism > 1 or force_replication:
        nodes = replicate_keyed_stages(
            nodes, config.parallelism, wrap_single=force_replication
        )
    if config.fusion:
        nodes = fuse_linear_chains(nodes, vectorize=config.vectorize)
    return nodes


def render_plan(
    nodes: list[Node], title: str = "plan", config: PlanConfig | None = None
) -> str:
    """Human-readable plan listing, the output of ``explain()``."""
    lines = [f"== {title} =="]
    if config is not None:
        lines.append(f"   optimizer: {config.describe()}")
    else:
        lines.append("   optimizer: off")
    n_streams = 0
    for node in nodes:
        n_streams += len(node.outputs)
        if node.kind == "source":
            desc = f"source[{type(node.source).__name__}]"
        elif node.kind == "sink":
            desc = f"sink[{type(node.sink).__name__}]"
        elif isinstance(node.operator, FusedOperator):
            desc = "fused(" + " -> ".join(node.operator.part_names()) + ")"
        else:
            desc = type(node.operator).__name__
        if node.router is not None:
            desc += f" x{node.router.num_shards} by key-hash"
        line = f"  {node.name}  [{desc}]"
        if node.kind == "operator" and isinstance(node.operator, FusedOperator):
            line += f"  mode={node.operator.execution_mode}"
            reason = getattr(node, "mode_reason", None)
            if reason:
                line += f" ({reason})"
        if node.inputs:
            line += "  <- " + ", ".join(s.name for s in node.inputs)
        lines.append(line)
    fused_nodes = [
        n for n in nodes if n.kind == "operator" and isinstance(n.operator, FusedOperator)
    ]
    fused = len(fused_nodes)
    vectorized = sum(
        1 for n in fused_nodes if isinstance(n.operator, VectorizedFusedOperator)
    )
    summary = f"   {len(nodes)} nodes / {n_streams} streams"
    if fused:
        summary += f" ({fused} fused chain{'s' if fused != 1 else ''}"
        if vectorized:
            summary += f", {vectorized} vectorized"
        summary += ")"
    lines.append(summary)
    return "\n".join(lines)
