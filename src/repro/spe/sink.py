"""Sinks: where query results leave the system.

Sinks deliver results to the expert (§2) and are also the measurement
point for end-to-end latency: each accepted tuple's ``ingest_time`` marks
when all of its contributing data was available, so the sink records
``now - ingest_time`` per result — the paper's latency definition (§3).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import Callable

from .metrics import LatencyRecorder, ThroughputMeter
from .tuples import StreamTuple


class Sink(ABC):
    """Base class for result consumers.

    ``latency_capacity`` bounds the latency-sample memory via reservoir
    sampling (see :class:`~repro.spe.metrics.LatencyRecorder`); ``None``
    keeps every sample, appropriate for finite replays.
    """

    def __init__(self, name: str, latency_capacity: int | None = None) -> None:
        self.name = name
        self.latency = LatencyRecorder(capacity=latency_capacity)
        self.throughput = ThroughputMeter()
        # optional (sink, tuple, latency_s) callback; repro.obs installs the
        # QoS watchdog here so every delivered result is deadline-checked
        self.observer: Callable[["Sink", StreamTuple, float], None] | None = None

    def accept(self, t: StreamTuple) -> None:
        """Record metrics, then hand the tuple to the concrete sink."""
        latency_s = t.latency_from(time.monotonic())
        self.latency.record(latency_s)
        self.throughput.add()
        if self.observer is not None:
            self.observer(self, t, latency_s)
        self.consume(t)

    @abstractmethod
    def consume(self, t: StreamTuple) -> None:
        """Deliver one result tuple."""

    def snapshot_state(self) -> dict[str, object] | None:
        """Checkpointable sink state; the base captures latency samples."""
        return {"latency": self.latency.snapshot()}

    def restore_state(self, state: dict[str, object]) -> None:
        self.latency.restore(state["latency"])

    def on_close(self) -> None:
        """Called when the query finished feeding this sink."""
        self.throughput.stop()


class CollectingSink(Sink):
    """Buffers every result for later inspection (tests, benches)."""

    def __init__(self, name: str = "collect", latency_capacity: int | None = None) -> None:
        super().__init__(name, latency_capacity=latency_capacity)
        self._results: list[StreamTuple] = []
        self._lock = threading.Lock()

    def consume(self, t: StreamTuple) -> None:
        with self._lock:
            self._results.append(t)

    @property
    def results(self) -> list[StreamTuple]:
        with self._lock:
            return list(self._results)

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def snapshot_state(self) -> dict[str, object]:
        base = super().snapshot_state() or {}
        with self._lock:
            base["results"] = list(self._results)
        return base

    def restore_state(self, state: dict[str, object]) -> None:
        super().restore_state(state)
        with self._lock:
            self._results = list(state["results"])


class CallbackSink(Sink):
    """Invokes a user callback per result (the 'expert' integration point)."""

    def __init__(
        self,
        name: str,
        fn: Callable[[StreamTuple], None],
        latency_capacity: int | None = None,
    ) -> None:
        super().__init__(name, latency_capacity=latency_capacity)
        self._fn = fn

    def consume(self, t: StreamTuple) -> None:
        self._fn(t)


class NullSink(Sink):
    """Discards results but still records metrics (pure benchmarking)."""

    def __init__(self, name: str = "null", latency_capacity: int | None = None) -> None:
        super().__init__(name, latency_capacity=latency_capacity)

    def consume(self, t: StreamTuple) -> None:
        return None


class DeadlineSink(Sink):
    """Decorates another sink with a QoS deadline check.

    §3 notes that "there might be strict QoS deadlines indicating the
    maximum latency tolerated in producing a certain result" — for PBF-LB,
    the ~3 s recoat gap. Every result whose end-to-end latency exceeds
    ``qos_seconds`` is counted and reported to ``on_violation`` (with the
    offending tuple and its latency) before being forwarded to the inner
    sink, so an operator console can alarm on missed deadlines.
    """

    def __init__(
        self,
        inner: Sink,
        qos_seconds: float,
        on_violation: Callable[[StreamTuple, float], None] | None = None,
        latency_capacity: int | None = None,
    ) -> None:
        if qos_seconds <= 0:
            raise ValueError("qos_seconds must be positive")
        super().__init__(f"qos[{inner.name}]", latency_capacity=latency_capacity)
        self._inner = inner
        self._qos = qos_seconds
        self._on_violation = on_violation
        self.violations = 0
        self.delivered = 0

    @property
    def inner(self) -> Sink:
        return self._inner

    @property
    def violation_rate(self) -> float:
        return self.violations / self.delivered if self.delivered else 0.0

    def consume(self, t: StreamTuple) -> None:
        latency = t.latency_from(time.monotonic())
        self.delivered += 1
        if latency > self._qos:
            self.violations += 1
            if self._on_violation is not None:
                self._on_violation(t, latency)
        self._inner.accept(t)

    def snapshot_state(self) -> dict[str, object]:
        base = super().snapshot_state() or {}
        base["violations"] = self.violations
        base["delivered"] = self.delivered
        inner_state = self._inner.snapshot_state()
        if inner_state is not None:
            base["inner"] = inner_state
        return base

    def restore_state(self, state: dict[str, object]) -> None:
        super().restore_state(state)
        self.violations = int(state["violations"])
        self.delivered = int(state["delivered"])
        if "inner" in state:
            self._inner.restore_state(state["inner"])

    def on_close(self) -> None:
        self._inner.on_close()
        super().on_close()
