"""Schedulers: drive a materialized query graph to completion.

Two execution strategies, one node semantics:

* :class:`ThreadedScheduler` — one thread per node with bounded blocking
  queues, the Liebre execution model; used for all latency/throughput
  measurements because tuples flow as soon as they are produced.
* :class:`SynchronousScheduler` — a deterministic single-threaded
  topological drain; used by tests and anywhere reproducibility matters
  more than timing fidelity.

Both share :class:`NodeExecutor`, which implements the per-node protocol:
process data items, react to per-input end-of-stream, flush on full close,
and propagate the end-of-stream marker downstream exactly once.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .barrier import CheckpointBarrier, RescaleBarrier, is_barrier
from .columnar import ColumnarBlock
from .errors import OperatorError
from .metrics import OperatorStats
from .query import Node
from .stream import END_OF_STREAM, Stream, TupleBatch
from .tuples import StreamTuple

# (node_name, epoch, state-or-None) — invoked once a node snapshots at an
# aligned barrier. ``None`` state means the node is stateless but did align.
CheckpointListener = Callable[[str, int, "dict | None"], None]


class NodeExecutor:
    """Uniform execution wrapper around one query node."""

    def __init__(
        self,
        node: Node,
        stop_event: threading.Event | None = None,
        checkpoint_listener: CheckpointListener | None = None,
        edge_batch_size: int = 1,
        linger_s: float = 0.005,
        obs=None,
        blocking_puts: bool = True,
    ) -> None:
        self.node = node
        self.stats = OperatorStats(node.name)
        # Observability (repro.obs.ObsContext, duck-typed): when attached,
        # the per-tuple extra cost is one None check plus a few attribute
        # writes; when absent it is a single None check.
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            obs.attach_executor(self)
        self._closed_inputs: set[int] = set()
        self._finalized = False
        self._stop_event = stop_event
        # Single-threaded schedulers must never block on a full output
        # stream — there is no concurrent consumer to drain it, so a
        # blocking put is a self-deadlock (see Stream.put_unbounded).
        self._blocking_puts = blocking_puts
        self._checkpoint_listener = checkpoint_listener
        # Batched edge transport: with edge_batch_size > 1, emitted data
        # tuples are buffered per output stream and shipped as one
        # TupleBatch queue entry. Buffers are touched only by the thread
        # driving this executor, so they need no locking; control items
        # (barriers, EOS) always flush first, preserving in-band ordering.
        self._edge_batch = max(1, edge_batch_size)
        self._linger_s = linger_s
        # Buffers are always allocated so batching can be switched on at
        # runtime (adaptive tuning); _emit fast-paths on _edge_batch <= 1.
        self._buffers: dict[int, tuple[Stream, list]] = {
            id(s): (s, []) for s in node.outputs
        }
        self._last_flush = time.monotonic()
        # Chandy–Lamport alignment: epoch -> input_index -> barriers seen.
        # An input is aligned for an epoch once it delivered one barrier per
        # producer feeding it (or closed); while aligned-but-waiting it is
        # *blocked* so no post-barrier tuple sneaks into the snapshot.
        self._barrier_seen: dict[int, dict[int, int]] = {}
        # epoch -> the barrier object that opened it. Needed because rescale
        # barriers carry identity (scope, snapshot sink) and must be
        # forwarded as the same object, unlike plain checkpoint barriers.
        self._barriers: dict[int, CheckpointBarrier] = {}
        # A retired executor belongs to a replica group that was drained by
        # a rescale barrier; its thread exits without finalizing (no EOS).
        self._retired = False
        # Bulk fast path: operators that can take a whole TupleBatch in
        # one call (fused chains, columnar execution). Resolved once — the
        # operator never changes after construction.
        self._process_many = (
            getattr(node.operator, "process_many", None)
            if node.kind == "operator"
            else None
        )

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def edge_batch_size(self) -> int:
        return self._edge_batch

    def set_batching(self, batch_size: int, linger_s: float | None = None) -> None:
        """Retune edge batching at runtime (adaptive controller hook).

        Safe to call from any thread: both knobs are atomic scalar writes;
        the buffers themselves stay owner-thread-only. Leftover tuples in a
        shrunken buffer ship on the owner's next flush or linger expiry.
        """
        self._edge_batch = max(1, int(batch_size))
        if linger_s is not None:
            self._linger_s = max(0.0, float(linger_s))

    @property
    def open_inputs(self) -> list[int]:
        return [
            i for i in range(len(self.node.inputs)) if i not in self._closed_inputs
        ]

    @property
    def ready_inputs(self) -> list[int]:
        """Open inputs a scheduler may consume from right now.

        Inputs already aligned for the oldest in-flight barrier epoch are
        excluded until every input catches up (barrier alignment).
        """
        if not self._barrier_seen:
            return self.open_inputs
        epoch = min(self._barrier_seen)
        return [
            i for i in self.open_inputs if not self._input_aligned(epoch, i)
        ]

    def input_blocked(self, input_index: int) -> bool:
        """True when barrier alignment currently blocks this input."""
        if not self._barrier_seen:
            return False
        return self._input_aligned(min(self._barrier_seen), input_index)

    def _input_aligned(self, epoch: int, input_index: int) -> bool:
        if input_index in self._closed_inputs:
            return True
        seen = self._barrier_seen.get(epoch, {}).get(input_index, 0)
        return seen >= self.node.inputs[input_index].num_producers

    def _emit(self, tuples: list[StreamTuple]) -> None:
        buffers = self._buffers
        for t in tuples:
            self.stats.tuples_out += 1
            for stream in self.node.route(t):
                if self._edge_batch <= 1:
                    self._put(stream, t)
                    continue
                buf = buffers[id(stream)][1]
                buf.append(t)
                if len(buf) >= self._edge_batch:
                    self._flush_stream(stream, buf)

    def _flush_stream(self, stream: Stream, buf: list) -> None:
        if not buf:
            return
        stats = self.stats
        stats.batches_out += 1
        stats.batch_tuples_out += len(buf)
        item = buf[0] if len(buf) == 1 else TupleBatch(buf)
        buf.clear()
        self._put(stream, item)

    def flush_outputs(self) -> None:
        """Ship every partially filled output batch now."""
        for stream, buf in self._buffers.values():
            self._flush_stream(stream, buf)
        self._last_flush = time.monotonic()

    def maybe_flush(self, now: float) -> None:
        """Flush buffered batches older than the linger deadline."""
        if now - self._last_flush >= self._linger_s:
            self.flush_outputs()

    def _put(self, stream: Stream, item: object) -> None:
        if not self._blocking_puts:
            stream.put_unbounded(item)
            return
        if self._stop_event is None:
            stream.put(item)
            return
        # Cooperative shutdown: a downstream consumer may already
        # have exited without draining; never block forever on a
        # full queue once stop was requested — drop instead.
        while not stream.put(item, timeout=0.1):
            if self._stop_event.is_set():
                break

    def handle(self, input_index: int, item: object) -> None:
        """Process one item (data tuple, batch, barrier, or EOS) from one input."""
        node = self.node
        if type(item) is TupleBatch:
            # Bulk fast path: hand the whole run to the operator in one
            # call when it can take one. Per-tuple tracing needs the
            # tuple-at-a-time loop, so the path only engages untraced.
            if (
                len(item) > 0
                and self._process_many is not None
                and self._tracer is None
            ):
                self._handle_batch(item)
                return
            # Unbatch transparently: batches carry only data tuples, so no
            # control transition can occur mid-batch.
            for t in item:
                self.handle(input_index, t)
            return
        if type(item) is ColumnarBlock:
            # Blocks normally live *inside* a vectorized fused node; one
            # crossing an edge re-enters as the equivalent tuple run.
            self.handle(input_index, item.to_tuples())
            return
        if item is END_OF_STREAM:
            if input_index in self._closed_inputs:
                return
            self._closed_inputs.add(input_index)
            if node.kind == "operator":
                self._run_operator(node.operator.on_input_closed, input_index)
            # A closed input can never deliver its barrier; it counts as
            # aligned so in-flight epochs still complete during shutdown.
            self._recheck_alignment()
            if len(self._closed_inputs) == len(node.inputs):
                self.finalize()
            return
        if is_barrier(item):
            self._on_barrier(input_index, item)
            return
        stats = self.stats
        stats.tuples_in += 1
        started = time.perf_counter()
        if node.kind == "operator":
            self._run_operator(node.operator.process, input_index, item)
        elif node.kind == "sink":
            node.sink.accept(item)
        duration = time.perf_counter() - started
        stats.processing_seconds += duration
        if self._obs is not None:
            stats.last_tau = item.tau
            if stats.timing_counts is not None:
                stats.record_time(duration)
            tracer = self._tracer
            if tracer is not None and item.trace_id is not None:
                tracer.record(item.trace_id, node.name, node.kind, duration, item)

    def _handle_batch(self, batch: TupleBatch) -> None:
        """Run one TupleBatch through the operator's bulk method.

        Counters advance exactly as the per-tuple loop would advance them;
        processing time is attributed evenly across the run's tuples for
        the per-tuple timing histogram.
        """
        stats = self.stats
        n = len(batch)
        stats.tuples_in += n
        started = time.perf_counter()
        try:
            outputs = self._process_many(batch)
        except Exception as exc:
            raise OperatorError(self.node.name, exc) from exc
        if outputs:
            self._emit(outputs)
        duration = time.perf_counter() - started
        stats.processing_seconds += duration
        if self._obs is not None:
            stats.last_tau = batch[-1].tau
            if stats.timing_counts is not None:
                stats.record_time_bulk(duration / n, n)

    def _run_operator(self, fn, *args: object) -> None:
        try:
            outputs = fn(*args)
        except Exception as exc:
            raise OperatorError(self.node.name, exc) from exc
        if outputs:
            self._emit(outputs)

    def _on_barrier(self, input_index: int, barrier: CheckpointBarrier) -> None:
        counts = self._barrier_seen.setdefault(barrier.epoch, {})
        counts[input_index] = counts.get(input_index, 0) + 1
        self._barriers.setdefault(barrier.epoch, barrier)
        self._check_alignment(barrier.epoch)

    def _recheck_alignment(self) -> None:
        for epoch in sorted(self._barrier_seen):
            self._check_alignment(epoch)

    def _check_alignment(self, epoch: int) -> None:
        if epoch not in self._barrier_seen:
            return
        if not all(
            self._input_aligned(epoch, i) for i in range(len(self.node.inputs))
        ):
            return
        del self._barrier_seen[epoch]
        barrier = self._barriers.pop(epoch, None) or CheckpointBarrier(epoch)
        if isinstance(barrier, RescaleBarrier):
            self._complete_rescale(barrier)
        else:
            self._complete_checkpoint(epoch)

    def _snapshot_into(self, listener, epoch: int) -> None:
        """Deliver this node's aligned-cut state to ``listener(name, epoch, state)``."""
        node = self.node
        if node.kind == "operator" and hasattr(node.operator, "snapshot_parts"):
            # Fused node: one manifest entry per constituent, under its
            # original node name, so manifests stay portable between
            # fused and unfused plan shapes.
            for part_name, state in node.operator.snapshot_parts().items():
                listener(part_name, epoch, state)
        else:
            state: dict | None = None
            if node.kind == "operator":
                state = node.operator.snapshot_state()
            elif node.kind == "sink":
                state = node.sink.snapshot_state()
            listener(node.name, epoch, state)

    def _complete_checkpoint(self, epoch: int) -> None:
        """Snapshot at the aligned cut, then forward the barrier downstream."""
        if self._checkpoint_listener is not None:
            self._snapshot_into(self._checkpoint_listener, epoch)
        # Pre-barrier data must precede the barrier in every output queue.
        self.flush_outputs()
        # Broadcast to every output stream (bypassing any hash router: a
        # barrier belongs to all replicas, not one key's partition).
        barrier = CheckpointBarrier(epoch)
        for stream in self.node.outputs:
            self._put(stream, barrier)

    def _complete_rescale(self, barrier: RescaleBarrier) -> None:
        """Drain protocol for one node inside a rescaling replica group.

        A scope node retires: it snapshots its drained state into the
        barrier, flushes, and forwards the *same* barrier object. The merge
        node (``absorb_at``) absorbs the barrier instead — by then every
        scope node upstream of it has retired (alignment guarantees their
        pre-barrier output was fully consumed), so absorbing doubles as the
        group-drained signal. Nodes outside the scope (possible only if a
        barrier escapes, which the merge prevents) forward it unchanged.
        """
        node = self.node
        in_scope = node.name in barrier.scope
        if in_scope:
            # Retire *before* forwarding: once the barrier leaves this node
            # the controller may observe the merge absorbing it, and by then
            # every scope node must already be out of the dataflow.
            self._retired = True
            self._snapshot_into(
                lambda name, _epoch, state: barrier.on_snapshot(name, state),
                barrier.epoch,
            )
        self.flush_outputs()
        if node.name == barrier.absorb_at:
            barrier.notify_absorbed()
            return
        for stream in node.outputs:
            self._put(stream, barrier)

    def finalize(self) -> None:
        """Flush remaining state and propagate EOS downstream (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        # Epochs still aligning at shutdown are abandoned: the coordinator
        # never sees their manifest, so recovery ignores them.
        self._barrier_seen.clear()
        self._barriers.clear()
        node = self.node
        if node.kind == "operator":
            self._run_operator(node.operator.on_close)
        elif node.kind == "sink":
            node.sink.on_close()
        self.flush_outputs()
        for stream in node.outputs:
            stream.put(END_OF_STREAM)


class SynchronousScheduler:
    """Deterministic single-threaded drain in topological order."""

    def __init__(
        self,
        batch_size: int = 256,
        checkpoint_listener: CheckpointListener | None = None,
        obs=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._batch_size = batch_size
        self._checkpoint_listener = checkpoint_listener
        self._obs = obs

    def run(self, nodes: list[Node]) -> dict[str, OperatorStats]:
        executors = [
            NodeExecutor(
                node,
                checkpoint_listener=self._checkpoint_listener,
                obs=self._obs,
                blocking_puts=False,
            )
            for node in nodes
        ]
        source_iters = {
            ex.node.name: iter(ex.node.source)
            for ex in executors
            if ex.node.kind == "source"
        }
        while True:
            progressed = False
            for ex in executors:
                if ex.finalized:
                    continue
                if ex.node.kind == "source":
                    progressed |= self._step_source(ex, source_iters)
                else:
                    progressed |= self._step_consumer(ex)
            if not progressed and all(ex.finalized for ex in executors):
                return {ex.node.name: ex.stats for ex in executors}
            if not progressed:
                # No data moved but someone is unfinalized: only possible if
                # an upstream EOS has not been consumed yet; loop once more.
                if not any(self._step_consumer(ex) for ex in executors if not ex.finalized):
                    unfinished = [ex.node.name for ex in executors if not ex.finalized]
                    if unfinished and all(
                        ex.node.kind != "source" for ex in executors if not ex.finalized
                    ):
                        raise RuntimeError(f"query stalled; unfinished nodes: {unfinished}")

    def _step_source(self, ex: NodeExecutor, source_iters: dict) -> bool:
        iterator = source_iters[ex.node.name]
        tracer = ex._tracer
        obs_on = ex._obs is not None
        progressed = False
        for _ in range(self._batch_size):
            t = next(iterator, None)
            if t is None:
                ex.finalize()
                return True
            if is_barrier(t):
                # Barriers go to every output, ignoring hash routers.
                for stream in ex.node.outputs:
                    stream.put_unbounded(t)
                progressed = True
                continue
            ex.stats.tuples_out += 1
            if obs_on:
                ex.stats.last_tau = t.tau
                if tracer is not None:
                    tracer.at_source(ex.node.name, t)
            for stream in ex.node.route(t):
                stream.put_unbounded(t)
            progressed = True
        return progressed

    def _step_consumer(self, ex: NodeExecutor) -> bool:
        progressed = False
        for index in list(ex.ready_inputs):
            stream = ex.node.inputs[index]
            for _ in range(self._batch_size):
                item = stream.try_get()
                if item is None:
                    break
                ex.handle(index, item)
                progressed = True
                if item is END_OF_STREAM or ex.input_blocked(index):
                    break
        return progressed


class ThreadedScheduler:
    """Liebre-style execution: one thread per node, blocking bounded queues."""

    def __init__(
        self,
        poll_timeout: float = 0.02,
        checkpoint_listener: CheckpointListener | None = None,
        edge_batch_size: int = 1,
        drain_batch: int = 64,
        linger_s: float = 0.005,
        obs=None,
    ) -> None:
        if drain_batch < 1:
            raise ValueError("drain_batch must be positive")
        self._poll_timeout = poll_timeout
        self._checkpoint_listener = checkpoint_listener
        self._edge_batch_size = max(1, edge_batch_size)
        self._drain_batch = drain_batch
        self._linger_s = linger_s
        self._obs = obs
        self._threads: list[threading.Thread] = []
        self._threads_lock = threading.Lock()
        self._executors: list[NodeExecutor] = []
        self._stop = threading.Event()
        self._error: list[BaseException] = []
        self._error_lock = threading.Lock()

    @property
    def executors(self) -> list[NodeExecutor]:
        """Live executors, including any spliced in by a rescale."""
        with self._threads_lock:
            return list(self._executors)

    def run(self, nodes: list[Node]) -> dict[str, OperatorStats]:
        """Run to completion (all sources exhausted, all sinks closed)."""
        self.start(nodes)
        self.join()
        return {ex.node.name: ex.stats for ex in self.executors}

    def start(self, nodes: list[Node]) -> list[NodeExecutor]:
        """Launch node threads; returns executors for metric access."""
        self._stop.clear()
        executors = [self._make_executor(node) for node in nodes]
        for ex in executors:
            self._launch(ex)
        return executors

    def _make_executor(self, node: Node) -> NodeExecutor:
        return NodeExecutor(
            node,
            stop_event=self._stop,
            checkpoint_listener=self._checkpoint_listener,
            edge_batch_size=self._edge_batch_size if node.kind != "source" else 1,
            linger_s=self._linger_s,
            obs=self._obs,
        )

    def _launch(self, ex: NodeExecutor) -> None:
        target = self._source_loop if ex.node.kind == "source" else self._consumer_loop
        thread = threading.Thread(
            target=self._guarded, args=(target, ex), name=f"spe-{ex.node.name}", daemon=True
        )
        with self._threads_lock:
            self._threads.append(thread)
            self._executors.append(ex)
        thread.start()

    def splice(self, nodes: list[Node]) -> list[NodeExecutor]:
        """Add freshly built nodes to the running dataflow (rescale).

        Retired executors stay in the registry (their stats remain
        readable) but their threads have exited; the new nodes' threads
        start consuming from the streams the retired group abandoned.
        """
        executors = [self._make_executor(node) for node in nodes]
        for ex in executors:
            self._launch(ex)
        return executors

    def _guarded(self, target, ex: NodeExecutor) -> None:
        try:
            target(ex)
        except BaseException as exc:  # propagate to join()
            with self._error_lock:
                self._error.append(exc)
            self._stop.set()

    def _source_loop(self, ex: NodeExecutor) -> None:
        tracer = ex._tracer
        obs_on = ex._obs is not None
        for t in ex.node.source:
            if self._stop.is_set():
                break
            if is_barrier(t):
                # Barriers go to every output, ignoring hash routers.
                for stream in ex.node.outputs:
                    while not stream.put(t, timeout=0.2):
                        if self._stop.is_set():
                            return
                continue
            ex.stats.tuples_out += 1
            if obs_on:
                ex.stats.last_tau = t.tau
                if tracer is not None:
                    tracer.at_source(ex.node.name, t)
            for stream in ex.node.route(t):
                while not stream.put(t, timeout=0.2):
                    if self._stop.is_set():
                        return
        ex.finalize()

    def _consumer_loop(self, ex: NodeExecutor) -> None:
        while not ex.finalized and not ex.retired and not self._stop.is_set():
            moved = False
            for index in list(ex.ready_inputs):
                stream = ex.node.inputs[index]
                # Bulk-drain queued data entries under one lock acquisition;
                # drain() stops before control items (EOS, barriers), which
                # the try_get fallback then delivers one at a time.
                items = stream.drain(self._drain_batch)
                if not items:
                    item = stream.try_get()
                    if item is None:
                        continue
                    ex.handle(index, item)
                    moved = True
                    if ex.retired:
                        break
                    continue
                for item in items:
                    ex.handle(index, item)
                moved = True
                if ex.retired:
                    break
            if ex.retired:
                break
            if moved:
                ex.maybe_flush(time.monotonic())
            elif not ex.finalized:
                # Going idle: ship partially filled output batches so
                # downstream latency is bounded by the blocking timeout,
                # not by how long this node stays starved.
                ex.flush_outputs()
                self._block_on_any_input(ex)
        if self._stop.is_set() and not ex.finalized and not ex.retired:
            # Cooperative shutdown: propagate EOS so downstream exits too.
            ex.finalize()
        # A retired executor exits silently: no finalize, no EOS — its
        # replacement (spliced in by the elastic controller) takes over
        # the very streams this node stopped consuming.

    def _block_on_any_input(self, ex: NodeExecutor) -> None:
        ready = ex.ready_inputs
        if not ready:
            # Every open input is barrier-blocked: wait for the laggards'
            # barriers to arrive (delivered by other node threads).
            if ex.open_inputs:
                time.sleep(self._poll_timeout)
            return
        # Block briefly on the first ready input; the timeout bounds how
        # long we ignore the other inputs and the stop flag.
        stream = ex.node.inputs[ready[0]]
        item = stream.get(timeout=self._poll_timeout)
        if item is None:
            return
        ex.handle(ready[0], item)
        if ex.finalized or ex.retired or ex.input_blocked(ready[0]):
            return
        # Opportunistic drain: whatever queued up behind the item we just
        # waited for is consumed in the same wake-up, one lock acquisition
        # for the whole run instead of one per item.
        for extra in stream.drain(self._drain_batch):
            ex.handle(ready[0], extra)
            if ex.retired:
                return

    def stop(self) -> None:
        """Request cooperative shutdown of all node threads."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        """True once cooperative shutdown has been requested."""
        return self._stop.is_set()

    def alive(self) -> bool:
        """True while at least one node thread is still running."""
        with self._threads_lock:
            threads = list(self._threads)
        return any(t.is_alive() for t in threads)

    def join(self, timeout: float | None = None) -> None:
        """Wait for every node thread; re-raise the first node error.

        Polls the thread list because a rescale may splice new threads in
        while we wait; joining is done only when a full pass over the
        current list finds every thread finished.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._threads_lock:
                threads = list(self._threads)
            for thread in threads:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
            with self._threads_lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                done = not self._threads
            if done or (deadline is not None and time.monotonic() >= deadline):
                break
        with self._error_lock:
            if self._error:
                raise self._error[0]
