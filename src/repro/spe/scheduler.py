"""Schedulers: drive a materialized query graph to completion.

Two execution strategies, one node semantics:

* :class:`ThreadedScheduler` — one thread per node with bounded blocking
  queues, the Liebre execution model; used for all latency/throughput
  measurements because tuples flow as soon as they are produced.
* :class:`SynchronousScheduler` — a deterministic single-threaded
  topological drain; used by tests and anywhere reproducibility matters
  more than timing fidelity.

Both share :class:`NodeExecutor`, which implements the per-node protocol:
process data items, react to per-input end-of-stream, flush on full close,
and propagate the end-of-stream marker downstream exactly once.
"""

from __future__ import annotations

import threading
import time

from .errors import OperatorError
from .metrics import OperatorStats
from .query import Node
from .stream import END_OF_STREAM, Stream
from .tuples import StreamTuple


class NodeExecutor:
    """Uniform execution wrapper around one query node."""

    def __init__(self, node: Node, stop_event: threading.Event | None = None) -> None:
        self.node = node
        self.stats = OperatorStats(node.name)
        self._closed_inputs: set[int] = set()
        self._finalized = False
        self._stop_event = stop_event

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def open_inputs(self) -> list[int]:
        return [
            i for i in range(len(self.node.inputs)) if i not in self._closed_inputs
        ]

    def _emit(self, tuples: list[StreamTuple]) -> None:
        for t in tuples:
            self.stats.tuples_out += 1
            for stream in self.node.route(t):
                if self._stop_event is None:
                    stream.put(t)
                    continue
                # Cooperative shutdown: a downstream consumer may already
                # have exited without draining; never block forever on a
                # full queue once stop was requested — drop instead.
                while not stream.put(t, timeout=0.1):
                    if self._stop_event.is_set():
                        break

    def handle(self, input_index: int, item: object) -> None:
        """Process one item (data tuple or EOS marker) from one input."""
        node = self.node
        if item is END_OF_STREAM:
            if input_index in self._closed_inputs:
                return
            self._closed_inputs.add(input_index)
            if node.kind == "operator":
                self._run_operator(node.operator.on_input_closed, input_index)
            if len(self._closed_inputs) == len(node.inputs):
                self.finalize()
            return
        self.stats.tuples_in += 1
        started = time.perf_counter()
        if node.kind == "operator":
            self._run_operator(node.operator.process, input_index, item)
        elif node.kind == "sink":
            node.sink.accept(item)
        self.stats.processing_seconds += time.perf_counter() - started

    def _run_operator(self, fn, *args: object) -> None:
        try:
            outputs = fn(*args)
        except Exception as exc:
            raise OperatorError(self.node.name, exc) from exc
        if outputs:
            self._emit(outputs)

    def finalize(self) -> None:
        """Flush remaining state and propagate EOS downstream (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        node = self.node
        if node.kind == "operator":
            self._run_operator(node.operator.on_close)
        elif node.kind == "sink":
            node.sink.on_close()
        for stream in node.outputs:
            stream.put(END_OF_STREAM)


class SynchronousScheduler:
    """Deterministic single-threaded drain in topological order."""

    def __init__(self, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._batch_size = batch_size

    def run(self, nodes: list[Node]) -> dict[str, OperatorStats]:
        executors = [NodeExecutor(node) for node in nodes]
        source_iters = {
            ex.node.name: iter(ex.node.source)
            for ex in executors
            if ex.node.kind == "source"
        }
        while True:
            progressed = False
            for ex in executors:
                if ex.finalized:
                    continue
                if ex.node.kind == "source":
                    progressed |= self._step_source(ex, source_iters)
                else:
                    progressed |= self._step_consumer(ex)
            if not progressed and all(ex.finalized for ex in executors):
                return {ex.node.name: ex.stats for ex in executors}
            if not progressed:
                # No data moved but someone is unfinalized: only possible if
                # an upstream EOS has not been consumed yet; loop once more.
                if not any(self._step_consumer(ex) for ex in executors if not ex.finalized):
                    unfinished = [ex.node.name for ex in executors if not ex.finalized]
                    if unfinished and all(
                        ex.node.kind != "source" for ex in executors if not ex.finalized
                    ):
                        raise RuntimeError(f"query stalled; unfinished nodes: {unfinished}")

    def _step_source(self, ex: NodeExecutor, source_iters: dict) -> bool:
        iterator = source_iters[ex.node.name]
        progressed = False
        for _ in range(self._batch_size):
            t = next(iterator, None)
            if t is None:
                ex.finalize()
                return True
            ex.stats.tuples_out += 1
            for stream in ex.node.route(t):
                stream.put(t)
            progressed = True
        return progressed

    def _step_consumer(self, ex: NodeExecutor) -> bool:
        progressed = False
        for index in list(ex.open_inputs):
            stream = ex.node.inputs[index]
            for _ in range(self._batch_size):
                item = stream.try_get()
                if item is None:
                    break
                ex.handle(index, item)
                progressed = True
                if item is END_OF_STREAM:
                    break
        return progressed


class ThreadedScheduler:
    """Liebre-style execution: one thread per node, blocking bounded queues."""

    def __init__(self, poll_timeout: float = 0.02) -> None:
        self._poll_timeout = poll_timeout
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._error: list[BaseException] = []
        self._error_lock = threading.Lock()

    def run(self, nodes: list[Node]) -> dict[str, OperatorStats]:
        """Run to completion (all sources exhausted, all sinks closed)."""
        executors = self.start(nodes)
        self.join()
        return {ex.node.name: ex.stats for ex in executors}

    def start(self, nodes: list[Node]) -> list[NodeExecutor]:
        """Launch node threads; returns executors for metric access."""
        self._stop.clear()
        executors = [NodeExecutor(node, stop_event=self._stop) for node in nodes]
        for ex in executors:
            target = self._source_loop if ex.node.kind == "source" else self._consumer_loop
            thread = threading.Thread(
                target=self._guarded, args=(target, ex), name=f"spe-{ex.node.name}", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return executors

    def _guarded(self, target, ex: NodeExecutor) -> None:
        try:
            target(ex)
        except BaseException as exc:  # propagate to join()
            with self._error_lock:
                self._error.append(exc)
            self._stop.set()

    def _source_loop(self, ex: NodeExecutor) -> None:
        for t in ex.node.source:
            if self._stop.is_set():
                break
            ex.stats.tuples_out += 1
            for stream in ex.node.route(t):
                while not stream.put(t, timeout=0.2):
                    if self._stop.is_set():
                        return
        ex.finalize()

    def _consumer_loop(self, ex: NodeExecutor) -> None:
        while not ex.finalized and not self._stop.is_set():
            moved = False
            for index in list(ex.open_inputs):
                stream = ex.node.inputs[index]
                item = stream.try_get()
                if item is None:
                    continue
                ex.handle(index, item)
                moved = True
            if not moved and not ex.finalized:
                self._block_on_any_input(ex)
        if self._stop.is_set() and not ex.finalized:
            # Cooperative shutdown: propagate EOS so downstream exits too.
            ex.finalize()

    def _block_on_any_input(self, ex: NodeExecutor) -> None:
        open_inputs = ex.open_inputs
        if not open_inputs:
            return
        # Block briefly on the first open input; the timeout bounds how long
        # we ignore the other inputs and the stop flag.
        stream = ex.node.inputs[open_inputs[0]]
        item = stream.get(timeout=self._poll_timeout)
        if item is not None:
            ex.handle(open_inputs[0], item)

    def stop(self) -> None:
        """Request cooperative shutdown of all node threads."""
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        """Wait for every node thread; re-raise the first node error."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]
        with self._error_lock:
            if self._error:
                raise self._error[0]
