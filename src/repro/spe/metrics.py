"""Latency and throughput instrumentation.

The paper evaluates STRATA on two metrics (§3, §5): *latency* — the time
from when all data leading to a result became available until the result is
produced — and *throughput* — tuples ingested per time unit. Sinks record
per-result latency samples; counters track throughput over the run.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass

from .errors import MetricsError


@dataclass(frozen=True)
class FiveNumberSummary:
    """Boxplot statistics, matching the figures in the paper.

    Extended with the tail percentiles (p95/p99) that QoS analysis needs:
    the recoat-gap deadline is a guarantee about the *worst* results, which
    the inter-quartile box hides.
    """

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    p95: float = math.nan
    p99: float = math.nan

    def as_row(self, scale: float = 1.0) -> dict[str, float]:
        """Render as a dict with values multiplied by ``scale``."""
        return {
            "count": self.count,
            "min": self.minimum * scale,
            "q1": self.q1 * scale,
            "median": self.median * scale,
            "q3": self.q3 * scale,
            "max": self.maximum * scale,
            "mean": self.mean * scale,
            "p95": self.p95 * scale,
            "p99": self.p99 * scale,
        }


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile over pre-sorted data."""
    if not sorted_values:
        raise MetricsError("cannot take a quantile of no samples")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    frac = position - low
    value = sorted_values[low] * (1 - frac) + sorted_values[high] * frac
    # Interpolating can round outside the bracket for subnormal inputs
    # (e.g. 5e-324 * 0.5 rounds to 0.0); clamp to keep quantiles monotone.
    return min(max(value, sorted_values[low]), sorted_values[high])


def summarize(
    samples: list[float], observed_count: int | None = None
) -> FiveNumberSummary:
    """Five-number summary plus mean and tail percentiles of a sample list.

    ``observed_count`` overrides the reported ``count`` when ``samples`` is
    a reservoir standing in for a larger population (statistics come from
    the reservoir, the count from the full stream of observations).
    """
    if not samples:
        raise MetricsError("cannot summarize zero samples")
    ordered = sorted(samples)
    return FiveNumberSummary(
        count=observed_count if observed_count is not None else len(ordered),
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
        p95=_quantile(ordered, 0.95),
        p99=_quantile(ordered, 0.99),
    )


class LatencyRecorder:
    """Thread-safe collector of latency samples (seconds).

    With ``capacity=None`` (the default) every sample is kept — right for
    finite replays and tests. A bounded ``capacity`` switches to reservoir
    sampling (Vitter's Algorithm R): memory stays constant over multi-hour
    monitoring runs while the reservoir remains a uniform random sample of
    everything observed; ``len()`` and summaries still report the *total*
    number of observations.
    """

    def __init__(self, capacity: int | None = None, seed: int = 0x5157) -> None:
        if capacity is not None and capacity < 1:
            raise MetricsError("latency reservoir capacity must be positive")
        self._samples: list[float] = []
        self._capacity = capacity
        self._count = 0
        self._rng = random.Random(seed) if capacity is not None else None
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int | None:
        return self._capacity

    def record(self, latency_seconds: float) -> None:
        """Record one latency sample (reservoir-sampled when bounded)."""
        with self._lock:
            self._count += 1
            if self._capacity is None or len(self._samples) < self._capacity:
                self._samples.append(latency_seconds)
                return
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self._samples[slot] = latency_seconds

    def samples(self) -> list[float]:
        """Copy of the retained samples (all of them when unbounded)."""
        with self._lock:
            return list(self._samples)

    def clear(self) -> None:
        """Drop all samples."""
        with self._lock:
            self._samples.clear()
            self._count = 0

    def summary(self) -> FiveNumberSummary:
        """Five-number summary of the samples recorded so far."""
        with self._lock:
            return summarize(list(self._samples), observed_count=self._count)

    def snapshot(self) -> list[float] | dict[str, object]:
        """Checkpointable form: a plain list when unbounded (kept for
        manifest compatibility), a dict carrying the true observation count
        when reservoir-sampled."""
        with self._lock:
            if self._capacity is None:
                return list(self._samples)
            return {"count": self._count, "samples": list(self._samples)}

    def restore(self, state: list[float] | dict[str, object]) -> None:
        """Re-install a snapshot (either checkpointable form)."""
        with self._lock:
            if isinstance(state, dict):
                samples = [float(s) for s in state["samples"]]
                count = int(state["count"])
            else:
                samples = [float(s) for s in state]
                count = len(samples)
            if self._capacity is not None and len(samples) > self._capacity:
                samples = samples[: self._capacity]
            self._samples = samples
            self._count = max(count, len(samples))

    def __len__(self) -> int:
        """Total observations recorded (not the retained sample count)."""
        with self._lock:
            return self._count


class ThroughputMeter:
    """Counts processed items against wall-clock time."""

    def __init__(self) -> None:
        self._count = 0
        self._lock = threading.Lock()
        self._started: float | None = None
        self._stopped: float | None = None

    def start(self) -> None:
        """Reset the counter and start the clock."""
        with self._lock:
            self._started = time.monotonic()
            self._stopped = None
            self._count = 0

    def add(self, n: int = 1) -> None:
        """Count ``n`` processed items."""
        with self._lock:
            if self._started is None:
                self._started = time.monotonic()
            self._count += n

    def stop(self) -> None:
        """Freeze the clock (rates use the frozen interval)."""
        with self._lock:
            self._stopped = time.monotonic()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def elapsed(self) -> float:
        """Measured interval in seconds (0.0 if nothing was ever counted).

        While the meter is live (started, not stopped) this reads
        ``now - start``, so mid-run rates are meaningful without waiting
        for ``stop()``.
        """
        with self._lock:
            if self._started is None:
                return 0.0
            end = self._stopped if self._stopped is not None else time.monotonic()
            return max(end - self._started, 1e-9)

    def per_second(self) -> float:
        """Items per second over the measured interval (0.0 when idle)."""
        elapsed = self.elapsed()
        if elapsed == 0.0:
            return 0.0
        return self.count / elapsed


class OperatorStats:
    """Per-operator counters surfaced by the engine's metrics report.

    All fields are plain attributes updated by exactly one executor thread
    (each scheduler node owns its stats object), so the hot path never
    takes a lock; the observability registry reads them racily at scrape
    time, which is fine for monotone counters.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.tuples_in = 0
        self.tuples_out = 0
        self.processing_seconds = 0.0
        # edge batching (populated only when the plan compiler batches edges)
        self.batches_out = 0
        self.batch_tuples_out = 0
        # newest event time handled; NaN until the first tuple arrives
        self.last_tau = math.nan
        # optional lock-free processing-time histogram (repro.obs)
        self.timing_bounds: tuple[float, ...] | None = None
        self.timing_counts: list[int] | None = None
        self.timing_total = 0

    def enable_timing(self, bounds: tuple[float, ...]) -> None:
        """Turn on per-tuple timing buckets (idempotent per bound set)."""
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise MetricsError("timing histogram needs at least one bound")
        if self.timing_bounds != ordered:
            self.timing_bounds = ordered
            self.timing_counts = [0] * (len(ordered) + 1)  # +1: overflow
            self.timing_total = 0

    def record_time(self, seconds: float) -> None:
        """Bucket one per-tuple processing duration (call only if enabled)."""
        lo, hi = 0, len(self.timing_bounds)
        bounds = self.timing_bounds
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] < seconds:
                lo = mid + 1
            else:
                hi = mid
        self.timing_counts[lo] += 1
        self.timing_total += 1

    def record_time_bulk(self, seconds_each: float, n: int) -> None:
        """Bucket ``n`` equal per-tuple durations in one update.

        Used by the batched fast path, where one operator call covers a
        whole run: the run's wall time is attributed evenly, so the
        histogram stays comparable with per-tuple recording.
        """
        lo, hi = 0, len(self.timing_bounds)
        bounds = self.timing_bounds
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] < seconds_each:
                lo = mid + 1
            else:
                hi = mid
        self.timing_counts[lo] += n
        self.timing_total += n

    def as_dict(self) -> dict[str, float]:
        """Flat dict for report rendering."""
        return {
            "name": self.name,
            "in": self.tuples_in,
            "out": self.tuples_out,
            "busy_s": round(self.processing_seconds, 6),
        }
