"""Streams: bounded queues connecting operators.

Liebre connects operators through bounded in-memory queues; a full queue
blocks the producer, which is how back-pressure propagates upstream to the
sources. ``END_OF_STREAM`` is a control marker a producer appends when it
will emit nothing more; multi-producer streams count markers until all
producers are done.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any


class EndOfStream:
    """Sentinel marking that one producer of a stream has finished."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<END_OF_STREAM>"


END_OF_STREAM = EndOfStream()


class Stream:
    """Thread-safe bounded FIFO carrying tuples between two query nodes."""

    def __init__(self, name: str, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("stream capacity must be positive")
        self.name = name
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._producers_done = 0
        self._num_producers = 1
        self.produced = 0
        self.consumed = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_producers(self) -> int:
        """How many producers feed this stream (= barriers/EOS to align)."""
        return self._num_producers

    def set_num_producers(self, count: int) -> None:
        """Declare how many EOS markers close the stream (default 1)."""
        if count < 1:
            raise ValueError("a stream needs at least one producer")
        self._num_producers = count

    def put(self, item: Any, timeout: float | None = None) -> bool:
        """Append one item, blocking while full (back-pressure).

        Returns False only if ``timeout`` elapsed with the queue still full.
        EOS markers bypass the capacity check so shutdown never deadlocks.
        """
        with self._not_full:
            if item is END_OF_STREAM:
                self._producers_done += 1
                if self._producers_done >= self._num_producers:
                    self._items.append(END_OF_STREAM)
                    self._not_empty.notify_all()
                return True
            while len(self._items) >= self._capacity:
                if not self._not_full.wait(timeout):
                    return False
            self._items.append(item)
            self.produced += 1
            self._not_empty.notify()
            return True

    def get(self, timeout: float | None = None) -> Any | None:
        """Pop one item, blocking while empty; ``None`` on timeout.

        The EOS marker is returned (once) when all producers finished, and
        left visible to subsequent calls so multiple pollers see it.
        """
        with self._not_empty:
            while not self._items:
                if not self._not_empty.wait(timeout):
                    return None
            item = self._items[0]
            if item is END_OF_STREAM:
                return END_OF_STREAM
            self._items.popleft()
            self.consumed += 1
            self._not_full.notify()
            return item

    def try_get(self) -> Any | None:
        """Non-blocking pop; ``None`` when empty."""
        return self.get(timeout=0.0)

    def drain(self, max_items: int | None = None) -> list[Any]:
        """Pop up to ``max_items`` data items without blocking."""
        out: list[Any] = []
        with self._not_empty:
            while self._items and (max_items is None or len(out) < max_items):
                if self._items[0] is END_OF_STREAM:
                    break
                out.append(self._items.popleft())
                self.consumed += 1
            if out:
                self._not_full.notify_all()
        return out

    def _closed(self) -> bool:
        return bool(self._items) and self._items[0] is END_OF_STREAM

    def at_eos(self) -> bool:
        """True when the next visible item is the end-of-stream marker."""
        with self._lock:
            return self._closed()

    def __len__(self) -> int:
        with self._lock:
            count = len(self._items)
            if count and self._items[0] is END_OF_STREAM:
                count -= 1
            return count
