"""Streams: bounded queues connecting operators.

Liebre connects operators through bounded in-memory queues; a full queue
blocks the producer, which is how back-pressure propagates upstream to the
sources. ``END_OF_STREAM`` is a control marker a producer appends when it
will emit nothing more; multi-producer streams count markers until all
producers are done.

Queue entries are either single tuples, control items (barriers, EOS), or
a :class:`TupleBatch` — a contiguous run of data tuples a producer moved
as one entry to amortize lock/condvar traffic (the plan compiler's batched
edge transport). Capacity and the produced/consumed counters account for
the *tuples* inside a batch, so back-pressure semantics are unchanged.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from .barrier import is_barrier


class EndOfStream:
    """Sentinel marking that one producer of a stream has finished."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<END_OF_STREAM>"


END_OF_STREAM = EndOfStream()


class TupleBatch(list):
    """A run of data tuples transported through a stream as one queue entry.

    Consumers unbatch transparently (``NodeExecutor.handle``); per-tuple
    latency metrics are preserved because every tuple keeps its own
    ``ingest_time``. Control items (barriers, EOS) are never batched, so
    barrier alignment sees the exact same cut as unbatched transport.
    """

    __slots__ = ()


#: entry types whose capacity weight is their row count; extended by
#: :func:`register_weighted_type` (repro.spe.columnar registers its block
#: type here instead of stream importing it, which would be circular)
_WEIGHTED_TYPES: tuple[type, ...] = (TupleBatch,)


def register_weighted_type(cls: type) -> None:
    """Account entries of ``cls`` by ``len()`` instead of as one tuple."""
    global _WEIGHTED_TYPES
    if cls not in _WEIGHTED_TYPES:
        _WEIGHTED_TYPES = _WEIGHTED_TYPES + (cls,)


def item_weight(item: Any) -> int:
    """Tuples an entry contributes to capacity/counter accounting."""
    return len(item) if type(item) in _WEIGHTED_TYPES else 1


class Stream:
    """Thread-safe bounded FIFO carrying tuples between two query nodes."""

    def __init__(self, name: str, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("stream capacity must be positive")
        self.name = name
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._producers_done = 0
        self._num_producers = 1
        self._size = 0
        self.produced = 0
        self.consumed = 0
        # deepest fill level ever observed (tuples); read by repro.obs
        self.high_watermark = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_producers(self) -> int:
        """How many producers feed this stream (= barriers/EOS to align)."""
        return self._num_producers

    def set_num_producers(self, count: int) -> None:
        """Declare how many EOS markers close the stream (default 1)."""
        if count < 1:
            raise ValueError("a stream needs at least one producer")
        self._num_producers = count

    def put(self, item: Any, timeout: float | None = None) -> bool:
        """Append one item, blocking while full (back-pressure).

        Returns False only if ``timeout`` elapsed with the queue still full.
        EOS markers bypass the capacity check so shutdown never deadlocks.
        A :class:`TupleBatch` is admitted whenever *any* capacity remains
        (it may transiently overshoot by at most one batch), so a batch
        never deadlocks against a capacity smaller than the batch size.
        """
        with self._not_full:
            if item is END_OF_STREAM:
                self._producers_done += 1
                if self._producers_done >= self._num_producers:
                    self._items.append(END_OF_STREAM)
                    self._not_empty.notify_all()
                return True
            while self._size >= self._capacity:
                if not self._not_full.wait(timeout):
                    return False
            weight = item_weight(item)
            self._items.append(item)
            self._size += weight
            self.produced += weight
            if self._size > self.high_watermark:
                self.high_watermark = self._size
            self._not_empty.notify()
            return True

    def put_unbounded(self, item: Any) -> bool:
        """Append one item without ever waiting on capacity.

        For single-threaded schedulers: with no concurrent consumer to
        drain a full queue, a blocking :meth:`put` is a self-deadlock
        (e.g. one join step emitting more pairs than the output stream
        holds). Back-pressure is meaningless there — the round-robin loop
        itself bounds how much is in flight — so the queue is allowed to
        overshoot its capacity; ``high_watermark`` still records it.
        """
        with self._not_full:
            if item is END_OF_STREAM:
                self._producers_done += 1
                if self._producers_done >= self._num_producers:
                    self._items.append(END_OF_STREAM)
                    self._not_empty.notify_all()
                return True
            weight = item_weight(item)
            self._items.append(item)
            self._size += weight
            self.produced += weight
            if self._size > self.high_watermark:
                self.high_watermark = self._size
            self._not_empty.notify()
            return True

    def get(self, timeout: float | None = None) -> Any | None:
        """Pop one item, blocking while empty; ``None`` on timeout.

        The EOS marker is returned (once) when all producers finished, and
        left visible to subsequent calls so multiple pollers see it.
        """
        with self._not_empty:
            while not self._items:
                if not self._not_empty.wait(timeout):
                    return None
            item = self._items[0]
            if item is END_OF_STREAM:
                return END_OF_STREAM
            self._items.popleft()
            weight = item_weight(item)
            self._size -= weight
            self.consumed += weight
            self._not_full.notify()
            return item

    def try_get(self) -> Any | None:
        """Non-blocking pop; ``None`` when empty."""
        return self.get(timeout=0.0)

    def drain(self, max_items: int | None = None) -> list[Any]:
        """Pop up to ``max_items`` data entries without blocking.

        Stops at control items — EOS *and* checkpoint barriers — so a
        consumer draining in bulk still observes barriers one at a time at
        the exact position producers placed them (alignment stays exact).
        """
        out: list[Any] = []
        with self._not_empty:
            while self._items and (max_items is None or len(out) < max_items):
                head = self._items[0]
                if head is END_OF_STREAM or is_barrier(head):
                    break
                self._items.popleft()
                weight = item_weight(head)
                self._size -= weight
                self.consumed += weight
                out.append(head)
            if out:
                self._not_full.notify_all()
        return out

    def _closed(self) -> bool:
        return bool(self._items) and self._items[0] is END_OF_STREAM

    def at_eos(self) -> bool:
        """True when the next visible item is the end-of-stream marker."""
        with self._lock:
            return self._closed()

    def __len__(self) -> int:
        """Tuples currently queued (batches count their contents)."""
        with self._lock:
            return self._size
