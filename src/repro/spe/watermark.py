"""Event-time progress tracking.

Stateful operators (Aggregate, Join) must know when an event-time window
can no longer receive tuples. Each input's watermark is the highest ``tau``
observed minus an allowed out-of-orderness slack; an operator's watermark
is the minimum across its inputs, so a slow input holds results back rather
than letting them be emitted incomplete.
"""

from __future__ import annotations

import math


class WatermarkTracker:
    """Minimum-across-inputs watermark with per-input slack."""

    def __init__(self, num_inputs: int, slack: float = 0.0) -> None:
        if num_inputs < 1:
            raise ValueError("need at least one input")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self._slack = slack
        self._per_input = [-math.inf] * num_inputs

    def observe(self, input_index: int, tau: float) -> float:
        """Record an event time on one input; returns the new watermark."""
        if tau > self._per_input[input_index]:
            self._per_input[input_index] = tau
        return self.watermark

    def close_input(self, input_index: int) -> float:
        """Mark one input as finished (it no longer holds the watermark)."""
        self._per_input[input_index] = math.inf
        return self.watermark

    @property
    def watermark(self) -> float:
        """Largest event time below which no more tuples are expected."""
        low = min(self._per_input)
        if math.isinf(low):
            return low
        return low - self._slack

    def snapshot(self) -> dict[str, object]:
        """Checkpointable view of the tracker's progress."""
        return {"per_input": list(self._per_input), "slack": self._slack}

    def restore(self, state: dict[str, object]) -> None:
        """Re-install a snapshot taken by :meth:`snapshot`."""
        per_input = list(state["per_input"])
        if len(per_input) != len(self._per_input):
            raise ValueError(
                f"snapshot tracks {len(per_input)} inputs, tracker has "
                f"{len(self._per_input)}"
            )
        self._per_input = per_input
        self._slack = float(state["slack"])
