"""Stream tuples: the unit of data flowing through queries.

The paper's tuple model (§2) has two parts: *metadata* carrying the event
timestamp ``tau`` plus other sub-attributes, and a *payload* of key-value
sub-attributes. STRATA fixes the metadata schema to
``(tau, job, layer, specimen, portion)`` (Table 1); ``specimen``/``portion``
are ``None`` until a ``partition`` step assigns them.

``ingest_time`` is not part of the paper's logical schema: it records the
wall-clock instant at which the datum entered the system and is carried
through every derived tuple so sinks can measure end-to-end latency exactly
as the paper defines it (time from *all inputs available* to result).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

# Default identifiers used when no partition function has run yet: the whole
# layer is treated as a single specimen/portion (paper, Table 1 `partition`).
WHOLE_SPECIMEN = "__whole__"
WHOLE_PORTION = "__whole__"


class StreamTuple:
    """Immutable-by-convention record with metadata and payload."""

    __slots__ = (
        "tau", "job", "layer", "specimen", "portion", "payload", "ingest_time",
        "trace_id",
    )

    def __init__(
        self,
        tau: float,
        job: str,
        layer: int,
        payload: Mapping[str, Any] | None = None,
        specimen: str | None = None,
        portion: str | None = None,
        ingest_time: float | None = None,
    ) -> None:
        self.tau = float(tau)
        self.job = job
        self.layer = int(layer)
        self.specimen = specimen
        self.portion = portion
        self.payload: dict[str, Any] = dict(payload or {})
        self.ingest_time = time.monotonic() if ingest_time is None else ingest_time
        # observability: set by the tracer on sampled tuples, inherited by
        # everything derived from them (repro.obs)
        self.trace_id: str | None = None

    # -- derivation helpers (keep lineage: ingest_time is inherited) ------

    def derive(
        self,
        payload: Mapping[str, Any] | None = None,
        tau: float | None = None,
        specimen: str | None = None,
        portion: str | None = None,
        layer: int | None = None,
        copy: bool = True,
    ) -> "StreamTuple":
        """Create a downstream tuple inheriting metadata not overridden.

        Hot path (one call per derived tuple, millions per run): assigns
        slots directly instead of going through ``__init__`` — inherited
        fields are already coerced, so re-validating them per derivation
        only costs time. ``copy=False`` hands ownership of a freshly built
        payload dict to the new tuple without the defensive copy; the
        caller must not touch that dict afterwards.
        """
        t = StreamTuple.__new__(StreamTuple)
        t.tau = self.tau if tau is None else float(tau)
        t.job = self.job
        t.layer = self.layer if layer is None else int(layer)
        t.specimen = self.specimen if specimen is None else specimen
        t.portion = self.portion if portion is None else portion
        if payload is None:
            t.payload = dict(self.payload)
        elif copy or type(payload) is not dict:
            t.payload = dict(payload)
        else:
            t.payload = payload
        t.ingest_time = self.ingest_time
        t.trace_id = self.trace_id
        return t

    @staticmethod
    def fused(
        left: "StreamTuple", right: "StreamTuple", tau: float | None = None
    ) -> "StreamTuple":
        """Concatenate two tuples' payloads (the `fuse` output schema).

        The fused tuple's ``ingest_time`` is the *latest* of the two inputs:
        latency counts from the moment all contributing data was available.
        Duplicate payload keys violate the API contract (Table 1) and raise.
        """
        overlap = left.payload.keys() & right.payload.keys()
        if overlap:
            raise ValueError(f"fuse requires unique payload keys; duplicates: {sorted(overlap)}")
        merged = {**left.payload, **right.payload}
        t = StreamTuple(
            tau=left.tau if tau is None else tau,
            job=left.job,
            layer=left.layer,
            payload=merged,
            specimen=left.specimen if left.specimen is not None else right.specimen,
            portion=left.portion if left.portion is not None else right.portion,
            ingest_time=max(left.ingest_time, right.ingest_time),
        )
        t.trace_id = left.trace_id if left.trace_id is not None else right.trace_id
        return t

    def latency_from(self, now: float | None = None) -> float:
        """Seconds elapsed since this tuple's data became available."""
        if now is None:
            now = time.monotonic()
        return now - self.ingest_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        keys = ",".join(sorted(self.payload))
        return (
            f"StreamTuple(tau={self.tau:.3f}, job={self.job!r}, layer={self.layer}, "
            f"specimen={self.specimen!r}, portion={self.portion!r}, payload_keys=[{keys}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return (
            self.tau == other.tau
            and self.job == other.job
            and self.layer == other.layer
            and self.specimen == other.specimen
            and self.portion == other.portion
            and _payload_equal(self.payload, other.payload)
        )

    def __hash__(self) -> int:
        return hash((self.tau, self.job, self.layer, self.specimen, self.portion))


def _payload_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    if a.keys() != b.keys():
        return False
    for key, value in a.items():
        other = b[key]
        try:
            import numpy as np

            if isinstance(value, np.ndarray) or isinstance(other, np.ndarray):
                if not np.array_equal(value, other):
                    return False
                continue
        except ImportError:  # pragma: no cover
            pass
        if value != other:
            return False
    return True
