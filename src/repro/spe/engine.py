"""The engine facade: deploy queries, run them, collect a report.

``StreamEngine`` hides scheduler selection behind a single ``run`` call for
finite replays, and a ``start``/``stop`` pair for open-ended deployments
(live monitoring of an ongoing print).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import EngineStateError
from .metrics import FiveNumberSummary, OperatorStats
from .plan import PlanConfig, compile_plan, render_plan
from .query import Node, Query
from .scheduler import SynchronousScheduler, ThreadedScheduler
from .sink import Sink

# Hook invoked with the materialized nodes after build, before execution.
# Recovery uses it to restore operator state and seek sources.
BuildHook = Callable[[list[Node]], None]


@dataclass
class RunReport:
    """Outcome of one query execution."""

    query_name: str
    operator_stats: dict[str, OperatorStats]
    sinks: dict[str, Sink]
    wall_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def latency_summary(self, sink_name: str | None = None) -> FiveNumberSummary:
        """Five-number latency summary of one sink (or the only sink)."""
        sink = self._pick_sink(sink_name)
        return sink.latency.summary()

    def latency_samples(self, sink_name: str | None = None) -> list[float]:
        """Raw per-result latency samples of one sink, seconds."""
        return self._pick_sink(sink_name).latency.samples()

    def results_delivered(self, sink_name: str | None = None) -> int:
        """Number of results one sink received."""
        return len(self._pick_sink(sink_name).latency)

    def _pick_sink(self, sink_name: str | None) -> Sink:
        if sink_name is not None:
            return self.sinks[sink_name]
        if len(self.sinks) != 1:
            raise ValueError(f"specify a sink name; query has {sorted(self.sinks)}")
        return next(iter(self.sinks.values()))

    def format(self) -> str:
        """Human-readable per-operator summary of the run."""
        lines = [
            f"query {self.query_name!r}: {self.wall_seconds:.3f}s wall, "
            f"{len(self.sinks)} sink(s)"
        ]
        header = f"{'node':<28} {'in':>10} {'out':>10} {'busy_s':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(self.operator_stats):
            stats = self.operator_stats[name]
            lines.append(
                f"{name:<28} {stats.tuples_in:>10} {stats.tuples_out:>10} "
                f"{stats.processing_seconds:>10.4f}"
            )
        for name, sink in sorted(self.sinks.items()):
            samples = len(sink.latency)
            if samples:
                summary = sink.latency.summary()
                lines.append(
                    f"{name}: {samples} results, latency median "
                    f"{summary.median * 1e3:.2f} ms / max {summary.maximum * 1e3:.2f} ms"
                )
            else:
                lines.append(f"{name}: 0 results")
        return "\n".join(lines)


class StreamEngine:
    """Runs continuous queries with a chosen scheduling strategy."""

    def __init__(self, mode: str = "threaded", capacity: int | None = 10_000) -> None:
        if mode not in ("threaded", "sync"):
            raise ValueError("mode must be 'threaded' or 'sync'")
        self._mode = mode
        self._capacity = capacity
        self._active: ThreadedScheduler | None = None
        self._active_nodes: list[Node] | None = None

    def _prepare(
        self,
        query: Query,
        checkpointer: Any | None,
        on_built: BuildHook | None,
        capacity: int | None,
        plan: PlanConfig | None = None,
        obs: Any | None = None,
        force_replication: bool = False,
    ):
        """Build the query, compile the plan, bind checkpointer and obs."""
        nodes = query.build(capacity=capacity)
        nodes = compile_plan(nodes, plan, force_replication=force_replication)
        listener = None
        if checkpointer is not None:
            # Duck-typed so repro.spe never imports repro.recovery: any
            # object with bind(nodes) + on_node_snapshot(name, epoch, state).
            checkpointer.bind(nodes)
            listener = checkpointer.on_node_snapshot
        if obs is not None:
            # Also duck-typed (repro.obs.ObsContext): indexes streams and
            # sinks for scrape-time collection, installs the QoS watchdog.
            obs.bind(nodes)
        if on_built is not None:
            on_built(nodes)
        return nodes, listener

    def run(
        self,
        query: Query,
        checkpointer: Any | None = None,
        on_built: BuildHook | None = None,
        batch_size: int | None = None,
        plan: PlanConfig | bool | None = None,
        obs: Any | None = None,
    ) -> RunReport:
        """Execute a query until all sources are exhausted; blocking.

        ``plan`` enables the plan compiler (:mod:`repro.spe.plan`):
        ``True`` for defaults, a :class:`PlanConfig` for explicit knobs,
        ``None``/``False`` to run the graph exactly as declared. The sync
        scheduler always uses unbatched transport (it is the deterministic
        oracle), but still honours fusion/replication rewrites.
        """
        import time

        plan = PlanConfig.resolve(plan)
        nodes, listener = self._prepare(
            query,
            checkpointer,
            on_built,
            capacity=None if self._mode == "sync" else self._capacity,
            plan=plan,
            obs=obs,
        )
        started = time.monotonic()
        if self._mode == "sync":
            scheduler = SynchronousScheduler(
                checkpoint_listener=listener,
                obs=obs,
                **({} if batch_size is None else {"batch_size": batch_size}),
            )
        else:
            scheduler = self._threaded_scheduler(listener, plan, obs)
        stats = scheduler.run(nodes)
        wall = time.monotonic() - started
        report = RunReport(
            query_name=query.name,
            operator_stats=stats,
            sinks=_sinks_of(nodes),
            wall_seconds=wall,
        )
        if plan is not None:
            report.extra["plan"] = plan.describe()
        if obs is not None:
            report.extra["metrics"] = obs.snapshot()
        return report

    def explain(self, query: Query, plan: PlanConfig | bool | None = True) -> str:
        """Render the compiled plan without executing it."""
        resolved = PlanConfig.resolve(plan)
        nodes = compile_plan(query.build(capacity=self._capacity), resolved)
        return render_plan(nodes, title=query.name, config=resolved)

    def start(
        self,
        query: Query,
        checkpointer: Any | None = None,
        on_built: BuildHook | None = None,
        plan: PlanConfig | bool | None = None,
        obs: Any | None = None,
        force_replication: bool = False,
    ) -> dict[str, Sink]:
        """Deploy a query in the background (threaded only)."""
        if self._mode != "threaded":
            raise EngineStateError("background deployment requires threaded mode")
        if self._active is not None:
            raise EngineStateError("a query is already running; stop() it first")
        plan = PlanConfig.resolve(plan)
        nodes, listener = self._prepare(
            query, checkpointer, on_built, capacity=self._capacity, plan=plan,
            obs=obs, force_replication=force_replication,
        )
        self._active = self._threaded_scheduler(listener, plan, obs)
        self._active_nodes = nodes
        self._active.start(nodes)
        return _sinks_of(nodes)

    def runtime(self) -> tuple[ThreadedScheduler, list[Node]]:
        """The live scheduler and node list of a started deployment.

        The returned node list is the engine's own mutable list: a rescale
        splices replacement nodes into it in place, so reports assembled
        after the run see the final plan shape.
        """
        if self._active is None or self._active_nodes is None:
            raise EngineStateError("no query is running")
        return self._active, self._active_nodes

    @staticmethod
    def sinks_of(nodes: list[Node]) -> dict[str, Sink]:
        """Public helper: the sink objects of a materialized node list."""
        return _sinks_of(nodes)

    @staticmethod
    def _threaded_scheduler(
        listener, plan: PlanConfig | None, obs: Any | None = None
    ) -> ThreadedScheduler:
        if plan is None:
            return ThreadedScheduler(checkpoint_listener=listener, obs=obs)
        return ThreadedScheduler(
            checkpoint_listener=listener,
            edge_batch_size=plan.edge_batch_size,
            linger_s=plan.linger_s,
            obs=obs,
        )

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown of the background query and wait for it."""
        if self._active is None:
            return
        self._active.stop()
        self._active.join(timeout=timeout)
        self._active = None
        self._active_nodes = None

    def running(self) -> bool:
        """True while a background query still has live node threads."""
        return self._active is not None and self._active.alive()

    def wait(self, timeout: float | None = None) -> None:
        """Wait for a background query to finish naturally."""
        if self._active is None:
            raise EngineStateError("no query is running")
        self._active.join(timeout=timeout)
        self._active = None
        self._active_nodes = None


def _sinks_of(nodes: list[Node]) -> dict[str, Sink]:
    return {node.name: node.sink for node in nodes if node.kind == "sink"}
