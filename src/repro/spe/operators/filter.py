"""Filter: forwards or discards tuples based on a predicate (§2)."""

from __future__ import annotations

from typing import Callable

from ..tuples import StreamTuple
from .base import Operator, restore_callable, snapshot_callable

FilterPredicate = Callable[[StreamTuple], bool]


class FilterOperator(Operator):
    """Forwards a tuple only when the predicate holds."""

    num_inputs = 1

    def __init__(self, name: str, predicate: FilterPredicate) -> None:
        super().__init__(name)
        self._predicate = predicate
        self.passed = 0
        self.dropped = 0

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        if self._predicate(t):
            self.passed += 1
            return [t]
        self.dropped += 1
        return []

    def snapshot_state(self) -> dict[str, object]:
        state: dict[str, object] = {"passed": self.passed, "dropped": self.dropped}
        predicate_state = snapshot_callable(self._predicate)
        if predicate_state is not None:
            state["predicate"] = predicate_state
        return state

    def restore_state(self, state: dict[str, object]) -> None:
        self.passed = int(state["passed"])
        self.dropped = int(state["dropped"])
        restore_callable(self._predicate, state.get("predicate"))

    def stats_extra(self) -> dict[str, float]:
        return {"filter_passed_total": self.passed, "filter_dropped_total": self.dropped}
