"""Aggregate: the sliding/tumbling window operator (§2).

Maintains, per group-by key, windows of size ``WS`` and advance ``WA``
over event time. For each key, windows cover the periods
``[l*WA, l*WA + WS)`` for natural ``l`` — the exact formulation used in the
paper. A window is emitted once the operator's watermark passes the window
end (no tuple with a smaller ``tau`` can still arrive), and all remaining
windows are flushed when the input closes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Hashable

from ..tuples import StreamTuple
from ..watermark import WatermarkTracker
from .base import Operator

GroupByFunction = Callable[[StreamTuple], Hashable]
#: receives (key, window_start, window_end, tuples) and returns the output payload
AggregateFunction = Callable[[Hashable, float, float, list[StreamTuple]], dict[str, Any]]


def window_indices(tau: float, ws: float, wa: float) -> list[int]:
    """All window indices ``l`` whose period ``[l*WA, l*WA+WS)`` contains tau."""
    if tau < 0:
        raise ValueError("event time must be non-negative")
    last = math.floor(tau / wa)
    first = math.floor((tau - ws) / wa) + 1
    return [l for l in range(max(first, 0), last + 1)]


class AggregateOperator(Operator):
    """Event-time windowed aggregation with optional group-by."""

    num_inputs = 1

    def __init__(
        self,
        name: str,
        ws: float,
        wa: float,
        fn: AggregateFunction,
        group_by: GroupByFunction | None = None,
        slack: float = 0.0,
    ) -> None:
        super().__init__(name)
        if ws <= 0 or wa <= 0:
            raise ValueError("WS and WA must be positive")
        if wa > ws:
            raise ValueError("WA must not exceed WS (windows must cover the stream)")
        self._ws = ws
        self._wa = wa
        self._fn = fn
        self._group_by = group_by or (lambda t: None)
        # (key, window_index) -> buffered tuples
        self._windows: dict[tuple[Hashable, int], list[StreamTuple]] = {}
        self._tracker = WatermarkTracker(1, slack)

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        key = self._group_by(t)
        for index in window_indices(t.tau, self._ws, self._wa):
            self._windows.setdefault((key, index), []).append(t)
        watermark = self._tracker.observe(0, t.tau)
        return self._emit_ripe(watermark)

    def _emit_ripe(self, watermark: float) -> list[StreamTuple]:
        ripe = [
            (key, index)
            for (key, index) in self._windows
            if index * self._wa + self._ws <= watermark
        ]
        out: list[StreamTuple] = []
        # Emit deterministically: by window end, then by key representation.
        for key, index in sorted(ripe, key=lambda ki: (ki[1], repr(ki[0]))):
            out.append(self._emit_window(key, index))
        return out

    def _emit_window(self, key: Hashable, index: int) -> StreamTuple:
        tuples = self._windows.pop((key, index))
        start = index * self._wa
        end = start + self._ws
        payload = self._fn(key, start, end, list(tuples))
        template = tuples[-1]
        result = template.derive(payload=payload, tau=end)
        result.ingest_time = max(t.ingest_time for t in tuples)
        return result

    def on_close(self) -> list[StreamTuple]:
        """Flush every still-open window (input exhausted)."""
        watermark = self._tracker.close_input(0)
        return self._emit_ripe(watermark)

    def snapshot_state(self) -> dict[str, object]:
        """Open windows plus watermark progress (checkpoint protocol)."""
        return {
            "windows": {key: list(tuples) for key, tuples in self._windows.items()},
            "tracker": self._tracker.snapshot(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self._windows = {key: list(tuples) for key, tuples in state["windows"].items()}
        self._tracker.restore(state["tracker"])

    @property
    def open_windows(self) -> int:
        return len(self._windows)
