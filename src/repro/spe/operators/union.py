"""Union: merges multiple input streams into one, order-agnostic."""

from __future__ import annotations

from ..tuples import StreamTuple
from .base import Operator


class UnionOperator(Operator):
    """Forwards every input tuple unchanged, from any input."""

    def __init__(self, name: str, num_inputs: int = 2) -> None:
        super().__init__(name)
        if num_inputs < 1:
            raise ValueError("union needs at least one input")
        self.num_inputs = num_inputs

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        return [t]
