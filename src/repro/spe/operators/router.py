"""Key routing for operator parallelism.

The paper's API methods "can be executed in a distributed, parallel,
elastic fashion by the underlying SPEs" because they compose native
operators. Our engine realizes the parallel part by sharding a stateful
operator into N replicas behind a hash router: tuples with the same key
always reach the same replica, so keyed state stays consistent.
"""

from __future__ import annotations

import zlib
from typing import Callable, Hashable

from ..tuples import StreamTuple

KeyFunction = Callable[[StreamTuple], Hashable]


def partition_key(t: StreamTuple) -> Hashable:
    """Default shard key: the paper's disjoint-analysis unit.

    ``(job, specimen, portion)`` — layer portions that refer to different
    specimens (or different portions of one specimen) can be analyzed in a
    pipelined/parallel fashion (§4).
    """
    return (t.job, t.specimen, t.portion)


def hash_route(key: Hashable, num_shards: int) -> int:
    """Stable mapping from a key to a shard index."""
    digest = zlib.crc32(repr(key).encode("utf-8"))
    return digest % num_shards


class HashRouter:
    """Routes tuples to one of ``num_shards`` outputs by key hash."""

    def __init__(self, num_shards: int, key_fn: KeyFunction | None = None) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self._num_shards = num_shards
        self._key_fn = key_fn or partition_key

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def route(self, t: StreamTuple) -> int:
        """Shard index for ``t`` (stable per key)."""
        return hash_route(self._key_fn(t), self._num_shards)
