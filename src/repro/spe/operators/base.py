"""Operator contract shared by every native operator.

Operators are the vertices of a continuous query's DAG (§2). Each operator
consumes tuples from one or more inputs and emits zero or more tuples per
invocation. Stateful operators additionally flush pending state when their
inputs close (``on_close``), so finite replays terminate with complete
results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from ..tuples import StreamTuple


class Operator(ABC):
    """Base class for all native operators."""

    #: number of input streams the operator consumes (1 for most, 2 for Join)
    num_inputs: int = 1

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        """Consume one tuple from input ``input_index``; return outputs."""

    def on_input_closed(self, input_index: int) -> list[StreamTuple]:
        """One input reached end-of-stream; may release held-back results."""
        return []

    def on_close(self) -> list[StreamTuple]:
        """All inputs closed: flush any remaining state."""
        return []

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


def as_tuple_list(result: StreamTuple | Iterable[StreamTuple] | None) -> list[StreamTuple]:
    """Normalize a user function's return value to a list of tuples."""
    if result is None:
        return []
    if isinstance(result, StreamTuple):
        return [result]
    return list(result)
