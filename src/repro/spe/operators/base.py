"""Operator contract shared by every native operator.

Operators are the vertices of a continuous query's DAG (§2). Each operator
consumes tuples from one or more inputs and emits zero or more tuples per
invocation. Stateful operators additionally flush pending state when their
inputs close (``on_close``), so finite replays terminate with complete
results.

Operators also participate in the checkpointing protocol of
:mod:`repro.recovery`: ``snapshot_state`` captures everything an operator
would need to continue after a crash, and ``restore_state`` re-installs a
snapshot into a freshly built operator of the same kind. Stateless
operators return ``None`` (nothing to persist); the scheduler invokes
``snapshot_state`` exactly when an epoch's checkpoint barrier has been
seen on every input, so the snapshot sits on a consistent cut.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Iterable

from ..tuples import StreamTuple


class Operator(ABC):
    """Base class for all native operators."""

    #: number of input streams the operator consumes (1 for most, 2 for Join)
    num_inputs: int = 1

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        """Consume one tuple from input ``input_index``; return outputs."""

    def on_input_closed(self, input_index: int) -> list[StreamTuple]:
        """One input reached end-of-stream; may release held-back results."""
        return []

    def on_close(self) -> list[StreamTuple]:
        """All inputs closed: flush any remaining state."""
        return []

    # -- observability ----------------------------------------------------

    def stats_extra(self) -> dict[str, float]:
        """Operator-specific counters exported by repro.obs at scrape time
        (e.g. events detected, triggers correlated). Keys become metric
        names ``spe_operator_<key>``; values must be monotone counters."""
        return {}

    # -- checkpointing protocol -------------------------------------------

    def snapshot_state(self) -> dict[str, Any] | None:
        """State to persist at a checkpoint barrier; ``None`` = stateless."""
        return None

    def restore_state(self, state: dict[str, Any]) -> None:
        """Re-install a snapshot produced by :meth:`snapshot_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} has no restorable state"
        )

    # -- elastic rescaling --------------------------------------------------

    def reshard_state(
        self,
        states: list[dict[str, Any] | None],
        shards: int,
        route: "Any",
    ) -> list[dict[str, Any] | None]:
        """Redistribute N drained shard snapshots across ``shards`` replicas.

        ``states`` holds one :meth:`snapshot_state` result per old replica;
        ``route`` maps a routing key to its new shard index (the same hash
        the group's router will use). The default covers stateless
        operators only — keyed operators override this to split their
        per-key state along the routing key.
        """
        if all(state is None for state in states):
            return [None] * shards
        raise NotImplementedError(
            f"{type(self).__name__} carries state but defines no "
            f"reshard_state; it cannot be rescaled"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


def snapshot_callable(fn: object) -> dict[str, Any] | None:
    """Snapshot a wrapped user function, if it supports the protocol.

    Map-like operators delegate their state to the user function they wrap
    (e.g. the use case's adaptive threshold learner); plain lambdas simply
    return ``None``.
    """
    snap = getattr(fn, "snapshot_state", None)
    return snap() if callable(snap) else None


def restore_callable(fn: object, state: dict[str, Any] | None) -> None:
    """Inverse of :func:`snapshot_callable` (no-op for ``None`` state)."""
    if state is None:
        return
    restore = getattr(fn, "restore_state", None)
    if not callable(restore):
        raise NotImplementedError(
            f"{type(fn).__name__} has snapshotted state but no restore_state"
        )
    restore(state)


def reshard_callable(
    fn: object,
    fn_states: list[dict[str, Any] | None],
    shards: int,
    route: Any,
) -> list[dict[str, Any] | None]:
    """Redistribute wrapped-function state across ``shards`` replicas.

    A user function may define its own ``reshard_state(states, shards,
    route)``; otherwise the states are treated as cache-like (e.g. the
    per-cell calibration cache): dict states are shallow-merged and the
    merged copy replicated into every shard — idempotent under repeated
    merge/split cycles, at the cost of each replica warming the same cache.
    """
    hook = getattr(fn, "reshard_state", None)
    if callable(hook):
        return hook(fn_states, shards, route)
    present = [s for s in fn_states if s is not None]
    if not present:
        return [None] * shards
    if all(isinstance(s, dict) for s in present):
        merged: dict[str, Any] = {}
        for s in present:
            merged.update(s)
        return [copy.deepcopy(merged) for _ in range(shards)]
    return [copy.deepcopy(present[0]) for _ in range(shards)]


def as_tuple_list(result: StreamTuple | Iterable[StreamTuple] | None) -> list[StreamTuple]:
    """Normalize a user function's return value to a list of tuples."""
    if type(result) is list:
        # hot path: the list is freshly built by the function and consumed
        # immediately by the caller, so hand it over without copying
        return result
    if result is None:
        return []
    if isinstance(result, StreamTuple):
        return [result]
    return list(result)
