"""Join: the two-input time-window join operator (§2).

Combines tuples ``t_L`` from the left stream and ``t_R`` from the right
stream whenever they satisfy a predicate ``P`` and lie within ``WS`` of
each other in event time (``|t_L.tau - t_R.tau| <= WS``). With a group-by,
the predicate is only checked for pairs sharing the same key. ``WS = 0``
degenerates to an exact event-time match, which is how STRATA's ``fuse``
without window parameters matches tuples with identical ``tau``.

Buffers are evicted by watermark: once both inputs have progressed past
``tau + WS``, a buffered tuple can no longer find partners and is dropped.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable

from ..tuples import StreamTuple
from ..watermark import WatermarkTracker
from .base import Operator

JoinPredicate = Callable[[StreamTuple, StreamTuple], bool]
JoinCombiner = Callable[[StreamTuple, StreamTuple], StreamTuple]
GroupByFunction = Callable[[StreamTuple], Hashable]


class JoinOperator(Operator):
    """Symmetric hash join over bounded event-time windows."""

    num_inputs = 2
    LEFT = 0
    RIGHT = 1

    def __init__(
        self,
        name: str,
        ws: float = 0.0,
        predicate: JoinPredicate | None = None,
        group_by: GroupByFunction | None = None,
        combiner: JoinCombiner | None = None,
        slack: float = 0.0,
    ) -> None:
        super().__init__(name)
        if ws < 0:
            raise ValueError("WS must be non-negative")
        self._ws = ws
        self._predicate = predicate or (lambda left, right: True)
        self._group_by = group_by or (lambda t: None)
        self._combiner = combiner or StreamTuple.fused
        # side -> key -> deque of buffered tuples (insertion = tau order)
        self._buffers: tuple[dict[Hashable, deque[StreamTuple]], ...] = ({}, {})
        self._tracker = WatermarkTracker(2, slack)
        self.matches = 0

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        if input_index not in (self.LEFT, self.RIGHT):
            raise ValueError(f"join has inputs 0 and 1, got {input_index}")
        key = self._group_by(t)
        other_side = self._buffers[1 - input_index]
        out: list[StreamTuple] = []
        for candidate in other_side.get(key, ()):
            if abs(t.tau - candidate.tau) > self._ws:
                continue
            left, right = (t, candidate) if input_index == self.LEFT else (candidate, t)
            if self._predicate(left, right):
                out.append(self._combiner(left, right))
                self.matches += 1
        self._buffers[input_index].setdefault(key, deque()).append(t)
        watermark = self._tracker.observe(input_index, t.tau)
        self._evict(watermark)
        return out

    def _evict(self, watermark: float) -> None:
        horizon = watermark - self._ws
        for side in self._buffers:
            empty_keys = []
            for key, buffer in side.items():
                while buffer and buffer[0].tau < horizon:
                    buffer.popleft()
                if not buffer:
                    empty_keys.append(key)
            for key in empty_keys:
                del side[key]

    def on_input_closed(self, input_index: int) -> list[StreamTuple]:
        """Advance the watermark past the closed input and evict."""
        watermark = self._tracker.close_input(input_index)
        self._evict(watermark)
        return []

    def on_close(self) -> list[StreamTuple]:
        """Release all buffered tuples (no more matches possible)."""
        for side in self._buffers:
            side.clear()
        return []

    def snapshot_state(self) -> dict[str, object]:
        """Both sides' buffers plus watermark progress (checkpoint protocol).

        Taken only once barriers aligned on both inputs, so the buffers
        reflect exactly the tuples preceding the epoch's cut on each side.
        """
        return {
            "buffers": [
                {key: list(buf) for key, buf in side.items()}
                for side in self._buffers
            ],
            "tracker": self._tracker.snapshot(),
            "matches": self.matches,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        left, right = state["buffers"]
        self._buffers = (
            {key: deque(buf) for key, buf in left.items()},
            {key: deque(buf) for key, buf in right.items()},
        )
        self._tracker.restore(state["tracker"])
        self.matches = int(state["matches"])

    @property
    def buffered(self) -> int:
        return sum(len(buf) for side in self._buffers for buf in side.values())

    def stats_extra(self) -> dict[str, float]:
        return {"join_matches_total": self.matches}
