"""Map: the stateless 1→N transformation operator (§2).

The paper's Map "produces an arbitrary number of output tuples for each
input tuple by selecting one or more of the input tuples' sub-attributes,
optionally applying functions to them". The user function receives the
input tuple and returns a tuple, a list of tuples, or ``None``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..tuples import StreamTuple
from .base import Operator, as_tuple_list, restore_callable, snapshot_callable

MapFunction = Callable[[StreamTuple], StreamTuple | Iterable[StreamTuple] | None]


class MapOperator(Operator):
    """Applies a user function to every tuple."""

    num_inputs = 1

    def __init__(self, name: str, fn: MapFunction) -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, input_index: int, t: StreamTuple) -> list[StreamTuple]:
        return as_tuple_list(self._fn(t))

    def snapshot_state(self) -> dict[str, object] | None:
        """Delegate to the user function when it carries state."""
        fn_state = snapshot_callable(self._fn)
        return None if fn_state is None else {"fn": fn_state}

    def restore_state(self, state: dict[str, object]) -> None:
        restore_callable(self._fn, state.get("fn"))
