"""Native stream-processing operators (the paper's §2 catalogue)."""

from .aggregate import AggregateOperator, window_indices
from .base import Operator, as_tuple_list
from .filter import FilterOperator
from .join import JoinOperator
from .map import MapOperator
from .router import HashRouter, hash_route, partition_key
from .union import UnionOperator

__all__ = [
    "Operator",
    "MapOperator",
    "FilterOperator",
    "AggregateOperator",
    "JoinOperator",
    "UnionOperator",
    "HashRouter",
    "hash_route",
    "partition_key",
    "window_indices",
    "as_tuple_list",
]
