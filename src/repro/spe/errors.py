"""Exception hierarchy for the stream processing engine."""

from __future__ import annotations


class SPEError(Exception):
    """Base class for all SPE errors."""


class QueryValidationError(SPEError):
    """Raised when a query graph is malformed (cycles, bad references...)."""


class EngineStateError(SPEError):
    """Raised when the engine is driven through an invalid state change."""


class MetricsError(SPEError, ValueError):
    """Raised when a metrics computation is given unusable samples.

    Subclasses ``ValueError`` so callers that predate the typed hierarchy
    keep working, but lets new code catch metrics problems specifically.
    """


class PlanError(SPEError):
    """Raised when the plan compiler is asked for an impossible rewrite
    (e.g. replicating a keyed group whose head declares no key function)."""


class OperatorError(SPEError):
    """Wraps an exception raised inside a user function, with context."""

    def __init__(self, operator_name: str, original: BaseException) -> None:
        super().__init__(f"operator {operator_name!r} failed: {original!r}")
        self.operator_name = operator_name
        self.original = original
