"""Stream Processing Engine (Liebre substitute).

A lightweight SPE for scale-up servers: continuous queries are DAGs of
native operators (Map, Filter, Aggregate, Join, Union) connected by bounded
streams, run either by a thread-per-operator scheduler (the Liebre model)
or a deterministic synchronous scheduler for tests.
"""

from .barrier import (
    RESCALE_EPOCH_BASE,
    CheckpointBarrier,
    RescaleBarrier,
    is_barrier,
)
from .engine import RunReport, StreamEngine
from .errors import (
    EngineStateError,
    MetricsError,
    OperatorError,
    PlanError,
    QueryValidationError,
    SPEError,
)
from .metrics import (
    FiveNumberSummary,
    LatencyRecorder,
    OperatorStats,
    ThroughputMeter,
    summarize,
)
from .operators import (
    AggregateOperator,
    FilterOperator,
    HashRouter,
    JoinOperator,
    MapOperator,
    Operator,
    UnionOperator,
    partition_key,
    window_indices,
)
from .columnar import ColumnarBlock
from .plan import (
    FusedOperator,
    PlanConfig,
    ReplicaGroupMeta,
    VectorizedFusedOperator,
    build_replicated_group,
    compile_plan,
    fuse_linear_chains,
    render_plan,
    replicate_keyed_stages,
)
from .query import Node, Query
from .scheduler import NodeExecutor, SynchronousScheduler, ThreadedScheduler
from .sink import CallbackSink, CollectingSink, DeadlineSink, NullSink, Sink
from .source import (
    CallbackSource,
    IterableSource,
    ListSource,
    RateLimitedSource,
    Source,
)
from .stream import END_OF_STREAM, Stream, TupleBatch
from .tuples import WHOLE_PORTION, WHOLE_SPECIMEN, StreamTuple
from .watermark import WatermarkTracker

__all__ = [
    "StreamTuple",
    "WHOLE_SPECIMEN",
    "WHOLE_PORTION",
    "Stream",
    "END_OF_STREAM",
    "TupleBatch",
    "ColumnarBlock",
    "PlanConfig",
    "FusedOperator",
    "VectorizedFusedOperator",
    "ReplicaGroupMeta",
    "build_replicated_group",
    "compile_plan",
    "fuse_linear_chains",
    "replicate_keyed_stages",
    "render_plan",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "AggregateOperator",
    "JoinOperator",
    "UnionOperator",
    "HashRouter",
    "partition_key",
    "window_indices",
    "Source",
    "ListSource",
    "IterableSource",
    "CallbackSource",
    "RateLimitedSource",
    "Sink",
    "CollectingSink",
    "CallbackSink",
    "NullSink",
    "DeadlineSink",
    "Query",
    "Node",
    "StreamEngine",
    "RunReport",
    "SynchronousScheduler",
    "ThreadedScheduler",
    "NodeExecutor",
    "WatermarkTracker",
    "LatencyRecorder",
    "ThroughputMeter",
    "FiveNumberSummary",
    "OperatorStats",
    "summarize",
    "SPEError",
    "QueryValidationError",
    "EngineStateError",
    "MetricsError",
    "OperatorError",
    "PlanError",
    "CheckpointBarrier",
    "RescaleBarrier",
    "RESCALE_EPOCH_BASE",
    "is_barrier",
]
