"""Online (adaptive) thermal thresholds.

Static thresholds calibrated on historical jobs (§5) assume the process
is stationary. Real PBF-LB emission drifts — lens fouling, powder aging,
chamber temperature — and a drifting baseline eventually pushes *healthy*
cells outside a static band. The paper's related work (§6) points at
streaming-ML operators as the remedy; this module provides the simplest
robust one: an exponentially-weighted moving estimate of the healthy
emission level that re-centers the class boundaries every layer.

The band *widths* stay fixed at their calibrated values: drift moves the
process center, while the noise structure (what "3 sigma" means) is a
sensor property. Updates exclude cells currently outside the band, so a
defect cannot drag the baseline toward itself (self-poisoning).
"""

from __future__ import annotations

import numpy as np

from .thresholds import ThermalThresholds


class AdaptiveThresholdLearner:
    """EWMA re-centering of calibrated thresholds.

    ``alpha`` is the per-update weight of the newest layer's healthy-cell
    median; ``0`` freezes the thresholds (static behaviour), ``1`` trusts
    only the latest layer.
    """

    def __init__(self, initial: ThermalThresholds, alpha: float = 0.15) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self._alpha = alpha
        center = (initial.cold_below + initial.warm_above) / 2.0
        self._center = center
        # fixed offsets of each boundary from the center
        self._offsets = (
            initial.very_cold_below - center,
            initial.cold_below - center,
            initial.warm_above - center,
            initial.very_warm_above - center,
        )
        self.updates = 0

    @property
    def center(self) -> float:
        return self._center

    @property
    def current(self) -> ThermalThresholds:
        """Thresholds re-centered on the current baseline estimate."""
        return ThermalThresholds(
            very_cold_below=self._center + self._offsets[0],
            cold_below=self._center + self._offsets[1],
            warm_above=self._center + self._offsets[2],
            very_warm_above=self._center + self._offsets[3],
        )

    def snapshot_state(self) -> dict[str, object]:
        """Checkpointable learner state (EWMA center + fixed band shape)."""
        return {
            "alpha": self._alpha,
            "center": self._center,
            "offsets": list(self._offsets),
            "updates": self.updates,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self._alpha = float(state["alpha"])
        self._center = float(state["center"])
        self._offsets = tuple(float(o) for o in state["offsets"])
        self.updates = int(state["updates"])

    def update(self, cell_means: np.ndarray) -> ThermalThresholds:
        """Fold one layer's cell means into the baseline; returns current.

        Only cells inside the current cold..warm band contribute — event
        cells (defects) and powder must not steer the baseline.
        """
        means = np.asarray(cell_means, dtype=float).ravel()
        thresholds = self.current
        healthy = means[
            (means >= thresholds.cold_below) & (means <= thresholds.warm_above)
        ]
        if len(healthy):
            observed = float(np.median(healthy))
            self._center = (1 - self._alpha) * self._center + self._alpha * observed
            self.updates += 1
        return self.current

    def update_batch(self, layers: "list[np.ndarray]") -> ThermalThresholds:
        """Fold several layers' cell means in arrival order (batched path).

        Semantically identical to calling :meth:`update` once per layer —
        the EWMA recurrence is inherently sequential because each layer's
        healthy band depends on the center the previous layer produced —
        but each layer is pre-sorted once, after which the band filter
        costs two binary searches instead of a full boolean scan, and the
        median reads a contiguous slice. The median of the sorted slice
        equals the median of the unsorted selection (same multiset), so
        the resulting center is bit-identical.
        """
        alpha = self._alpha
        center = self._center
        lo_offset = self._offsets[1]  # cold_below - center
        hi_offset = self._offsets[2]  # warm_above - center
        updates = 0
        for means in layers:
            ordered = np.sort(np.asarray(means, dtype=float), axis=None)
            lo = int(np.searchsorted(ordered, center + lo_offset, side="left"))
            hi = int(np.searchsorted(ordered, center + hi_offset, side="right"))
            if hi > lo:
                observed = float(np.median(ordered[lo:hi]))
                center = (1 - alpha) * center + alpha * observed
                updates += 1
        self._center = center
        self.updates += updates
        return self.current
