"""Cell-grid extraction from OT images.

The use case partitions each specimen's pixels into square cells
(``isolateCell``, Alg. 1 L5) whose edge controls the accuracy/latency
trade-off swept in Figure 5 (40 x 40 px down to 2 x 2 px, i.e. 5 mm² down
to 0.25 mm² on the 8 px/mm sensor). Each cell is summarized by its mean
light emission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Cell:
    """One analysis cell of a specimen cross-section."""

    row: int  # cell-grid row within the (cropped) region
    col: int
    mean_intensity: float
    center_x_px: float  # in full-image pixel coordinates
    center_y_px: float


def cell_means(image: np.ndarray, cell_edge_px: int) -> np.ndarray:
    """Per-cell mean intensity of ``image`` on a ``cell_edge_px`` grid.

    The image is cropped to a whole number of cells (the paper's specimen
    footprints divide evenly for all evaluated cell sizes). Returns a
    (rows, cols) float array.
    """
    if cell_edge_px < 1:
        raise ValueError("cell edge must be >= 1 px")
    height, width = image.shape
    rows = height // cell_edge_px
    cols = width // cell_edge_px
    if rows == 0 or cols == 0:
        return np.empty((0, 0), dtype=float)
    cropped = image[: rows * cell_edge_px, : cols * cell_edge_px].astype(float)
    return cropped.reshape(rows, cell_edge_px, cols, cell_edge_px).mean(axis=(1, 3))


def masked_cell_means(
    image: np.ndarray, mask: np.ndarray, cell_edge_px: int
) -> np.ndarray:
    """Per-cell mean intensity over masked (part) pixels only.

    For cells that straddle a shaped part's boundary, the plain cell mean
    mixes powder into the average and fakes a cold anomaly; dividing the
    masked intensity sum by the masked pixel count gives the part-only
    mean. Cells with no part pixels yield 0.
    """
    mask = np.asarray(mask, dtype=float)
    if mask.shape != image.shape:
        raise ValueError("mask must match the image shape")
    weighted = cell_means(np.asarray(image, dtype=float) * mask, cell_edge_px)
    coverage = cell_means(mask, cell_edge_px)
    with np.errstate(divide="ignore", invalid="ignore"):
        means = np.where(coverage > 0, weighted / np.maximum(coverage, 1e-12), 0.0)
    return means


def extract_cells(
    image: np.ndarray,
    cell_edge_px: int,
    origin_row: int = 0,
    origin_col: int = 0,
) -> list[Cell]:
    """Cells of a specimen sub-image, with centers in full-image pixels.

    ``origin_row``/``origin_col`` locate the sub-image inside the full OT
    frame so downstream clustering works in one global coordinate system.
    """
    means = cell_means(image, cell_edge_px)
    cells: list[Cell] = []
    half = cell_edge_px / 2.0
    for row in range(means.shape[0]):
        for col in range(means.shape[1]):
            cells.append(
                Cell(
                    row=row,
                    col=col,
                    mean_intensity=float(means[row, col]),
                    center_x_px=origin_col + col * cell_edge_px + half,
                    center_y_px=origin_row + row * cell_edge_px + half,
                )
            )
    return cells


def cell_centers(
    grid_shape: tuple[int, int],
    cell_edge_px: int,
    origin_row: int = 0,
    origin_col: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Center coordinates of every cell, flattened row-major.

    Returns ``(center_y_px, center_x_px)`` float arrays of length
    rows*cols in full-image pixel coordinates. The arithmetic mirrors the
    scalar path exactly — ``(origin + index * edge) + edge/2`` over exact
    integer intermediates — so centers are bit-identical to
    :func:`extract_cells` / the per-tuple ``IsolateCells`` loop.
    """
    rows, cols = grid_shape
    half = cell_edge_px / 2.0
    ys = (origin_row + np.arange(rows, dtype=np.int64) * cell_edge_px) + half
    xs = (origin_col + np.arange(cols, dtype=np.int64) * cell_edge_px) + half
    return np.repeat(ys, cols), np.tile(xs, rows)


def cell_grid_shape(image_shape: tuple[int, int], cell_edge_px: int) -> tuple[int, int]:
    """(rows, cols) of the cell grid over an image of ``image_shape``."""
    return image_shape[0] // cell_edge_px, image_shape[1] // cell_edge_px
