"""Five-class thermal labeling of cells (``labelCell``, Alg. 1 L6).

Each cell is classified *very cold, cold, regular, warm,* or *very warm*;
only the extreme classes become events, because those "are known to result
in poor material structure" (§5).
"""

from __future__ import annotations

import numpy as np

from .thresholds import ThermalThresholds

VERY_COLD = "very_cold"
COLD = "cold"
REGULAR = "regular"
WARM = "warm"
VERY_WARM = "very_warm"

ALL_LABELS = (VERY_COLD, COLD, REGULAR, WARM, VERY_WARM)
#: labels that the detectEvent step forwards as anomaly events
EVENT_LABELS = frozenset({VERY_COLD, VERY_WARM})


def label_cell(mean_intensity: float, thresholds: ThermalThresholds) -> str:
    """Classify one cell's mean intensity."""
    if mean_intensity < thresholds.very_cold_below:
        return VERY_COLD
    if mean_intensity < thresholds.cold_below:
        return COLD
    if mean_intensity > thresholds.very_warm_above:
        return VERY_WARM
    if mean_intensity > thresholds.warm_above:
        return WARM
    return REGULAR


def is_event(label: str) -> bool:
    """True for the labels that must be reported downstream."""
    return label in EVENT_LABELS


def label_grid(means: np.ndarray, thresholds: ThermalThresholds) -> np.ndarray:
    """Vectorized labeling of a (rows, cols) cell-mean grid.

    Returns an int8 grid with indices into :data:`ALL_LABELS`
    (0=very_cold .. 4=very_warm).
    """
    means = np.asarray(means, dtype=float)
    labels = np.full(means.shape, ALL_LABELS.index(REGULAR), dtype=np.int8)
    labels[means > thresholds.warm_above] = ALL_LABELS.index(WARM)
    labels[means > thresholds.very_warm_above] = ALL_LABELS.index(VERY_WARM)
    labels[means < thresholds.cold_below] = ALL_LABELS.index(COLD)
    labels[means < thresholds.very_cold_below] = ALL_LABELS.index(VERY_COLD)
    return labels


def event_mask(label_indices: np.ndarray) -> np.ndarray:
    """Boolean mask of cells whose label is an event class."""
    return (label_indices == ALL_LABELS.index(VERY_COLD)) | (
        label_indices == ALL_LABELS.index(VERY_WARM)
    )
