"""Five-class thermal labeling of cells (``labelCell``, Alg. 1 L6).

Each cell is classified *very cold, cold, regular, warm,* or *very warm*;
only the extreme classes become events, because those "are known to result
in poor material structure" (§5).
"""

from __future__ import annotations

import numpy as np

from .thresholds import ThermalThresholds

VERY_COLD = "very_cold"
COLD = "cold"
REGULAR = "regular"
WARM = "warm"
VERY_WARM = "very_warm"

ALL_LABELS = (VERY_COLD, COLD, REGULAR, WARM, VERY_WARM)
#: labels that the detectEvent step forwards as anomaly events
EVENT_LABELS = frozenset({VERY_COLD, VERY_WARM})


def label_cell(mean_intensity: float, thresholds: ThermalThresholds) -> str:
    """Classify one cell's mean intensity."""
    if mean_intensity < thresholds.very_cold_below:
        return VERY_COLD
    if mean_intensity < thresholds.cold_below:
        return COLD
    if mean_intensity > thresholds.very_warm_above:
        return VERY_WARM
    if mean_intensity > thresholds.warm_above:
        return WARM
    return REGULAR


def is_event(label: str) -> bool:
    """True for the labels that must be reported downstream."""
    return label in EVENT_LABELS


_VERY_COLD_IDX = ALL_LABELS.index(VERY_COLD)
_COLD_IDX = ALL_LABELS.index(COLD)
_REGULAR_IDX = ALL_LABELS.index(REGULAR)
_WARM_IDX = ALL_LABELS.index(WARM)
_VERY_WARM_IDX = ALL_LABELS.index(VERY_WARM)


def label_grid(means: np.ndarray, thresholds: ThermalThresholds) -> np.ndarray:
    """Vectorized labeling of a cell-mean grid (any shape).

    Returns an int8 grid with indices into :data:`ALL_LABELS`
    (0=very_cold .. 4=very_warm). Element-wise identical to
    :func:`label_cell`, including values exactly on a threshold: two
    binary searches classify every cell at once, with the ``side``
    arguments chosen to reproduce the scalar path's strict comparisons
    (``searchsorted(side="right")`` counts boundaries ``<= v``, matching
    ``v < bound``; ``side="left"`` counts boundaries ``< v``, matching
    ``v > bound``). Thresholds are validated non-decreasing, so both
    boundary pairs are sorted. NaN cells (possible for fully masked
    cells) compare false against every threshold in the scalar path and
    are forced to *regular* here, where searchsorted would otherwise sort
    them above every boundary.
    """
    means = np.asarray(means, dtype=float)
    flat = means.ravel()
    cold_bounds = np.array([thresholds.very_cold_below, thresholds.cold_below])
    warm_bounds = np.array([thresholds.warm_above, thresholds.very_warm_above])
    # 0: v < very_cold_below, 1: v < cold_below, 2: not cold
    cold = np.searchsorted(cold_bounds, flat, side="right")
    # 0: not warm, 1: v > warm_above, 2: v > very_warm_above
    warm = np.searchsorted(warm_bounds, flat, side="left")
    labels = np.full(flat.shape, _REGULAR_IDX, dtype=np.int8)
    labels[warm == 1] = _WARM_IDX
    labels[warm == 2] = _VERY_WARM_IDX
    # cold wins over warm, mirroring label_cell's branch order (the bands
    # cannot overlap for validated thresholds; this only pins tie behavior)
    labels[cold == 1] = _COLD_IDX
    labels[cold == 0] = _VERY_COLD_IDX
    labels[np.isnan(flat)] = _REGULAR_IDX
    return labels.reshape(means.shape)


def event_mask(label_indices: np.ndarray) -> np.ndarray:
    """Boolean mask of cells whose label is an event class."""
    return (label_indices == ALL_LABELS.index(VERY_COLD)) | (
        label_indices == ALL_LABELS.index(VERY_WARM)
    )


def connected_defects(mask: np.ndarray) -> np.ndarray:
    """Label 4-connected components of an event mask, without cell loops.

    Returns an int64 grid: 0 for background, 1..K for the K connected
    defect regions (numbered in no particular order but deterministically
    for a given mask). Works by synchronous min-label propagation: every
    event cell starts with a unique label and repeatedly adopts the
    smallest label among itself and its 4-neighborhood, all as whole-array
    shifted minimums. Converges in O(longest defect diameter) sweeps —
    defects are small, compact clusters, so a handful in practice.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("connected_defects expects a 2-D mask")
    out = np.zeros(mask.shape, dtype=np.int64)
    if not mask.any():
        return out
    background = mask.size + 1  # larger than any seed label
    labels = np.where(mask, np.arange(1, mask.size + 1).reshape(mask.shape), 0)
    while True:
        candidate = np.where(mask, labels, background)
        best = candidate.copy()
        best[1:, :] = np.minimum(best[1:, :], candidate[:-1, :])
        best[:-1, :] = np.minimum(best[:-1, :], candidate[1:, :])
        best[:, 1:] = np.minimum(best[:, 1:], candidate[:, :-1])
        best[:, :-1] = np.minimum(best[:, :-1], candidate[:, 1:])
        propagated = np.where(mask, best, 0)
        if np.array_equal(propagated, labels):
            break
        labels = propagated
    # renumber surviving labels to the compact range 1..K (0 stays 0);
    # ravel first: the shape of a multi-dim return_inverse changed across
    # numpy versions, a 1-D input behaves the same everywhere
    uniques, inverse = np.unique(labels.ravel(), return_inverse=True)
    inverse = inverse.reshape(mask.shape)
    return inverse if uniques[0] == 0 else inverse + 1


def count_defect_regions(mask: np.ndarray) -> int:
    """Number of 4-connected defect regions in an event mask."""
    return int(connected_defects(mask).max()) if np.asarray(mask).size else 0
