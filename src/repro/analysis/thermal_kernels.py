"""Numpy kernels for the thermal workloads (estimator + melt-pool features).

Two hot paths ship both a whole-grid kernel and a scalar twin:

* the **Kalman recursion** of ``repro.thermal.estimator`` — one
  independent scalar filter per grid cell over the per-layer surface
  temperature state.  The grid kernels apply the predict/update step to
  every cell at once; the ``*_scalar`` twins are the per-cell reference
  the property suite holds them to.  Both express the identical IEEE-754
  operation sequence per element, so kernel and scalar paths are
  bit-identical, which is what lets the vectorized and scalar pipeline
  modes share one divergence gate.
* the **melt-pool statistics** of ``repro.thermal.features`` — per-cell
  total/peak/melt-fraction grids plus the two plate-level features the
  laser-parameter regressor inverts.  The per-cell grids use the same
  strided-reshape trick as :func:`repro.analysis.cells.cell_means`.

A measurement of NaN models a dropped sensor sample for that cell: the
update is skipped and the cell coasts on its prediction with the
prediction covariance (no information arrived, so no variance reduction).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kalman_predict",
    "kalman_predict_scalar",
    "kalman_update",
    "kalman_update_scalar",
    "meltpool_cell_stats",
    "meltpool_cell_stats_scalar",
    "top_k_mean",
    "laser_feature_vector",
]


def kalman_predict(
    state: np.ndarray,
    cov: np.ndarray,
    energy: np.ndarray,
    *,
    ambient: float,
    retention: float,
    coupling: float,
    process_var: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Time-update every cell through the layer-deposition model.

    State transition per cell (layer index k):

        x_k = ambient + retention * (x_{k-1} - ambient) + coupling * E_k

    i.e. the previous layer's excess heat decays geometrically while the
    scan deposits ``E_k`` joules into the cell.  The covariance follows
    the linear model: ``P_k^- = retention^2 * P_{k-1} + Q``.
    """
    predicted = ambient + retention * (state - ambient) + coupling * energy
    predicted_cov = retention * retention * cov + process_var
    return predicted, predicted_cov


def kalman_predict_scalar(
    state: float,
    cov: float,
    energy: float,
    *,
    ambient: float,
    retention: float,
    coupling: float,
    process_var: float,
) -> tuple[float, float]:
    """Per-cell reference for :func:`kalman_predict` (same op order)."""
    predicted = ambient + retention * (state - ambient) + coupling * energy
    predicted_cov = retention * retention * cov + process_var
    return predicted, predicted_cov


def kalman_update(
    predicted: np.ndarray,
    predicted_cov: np.ndarray,
    measurement: np.ndarray,
    *,
    sensor_var: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Measurement-update every cell; NaN measurements coast.

    Returns ``(state, cov, innovation, valid)``.  ``innovation`` is zero
    for dropped (NaN) cells so downstream statistics can sum it without a
    mask, and ``valid`` is the boolean dropout mask.
    """
    valid = ~np.isnan(measurement)
    gain = predicted_cov / (predicted_cov + sensor_var)
    innovation = np.where(valid, measurement - predicted, 0.0)
    state = predicted + gain * innovation
    cov = np.where(valid, (1.0 - gain) * predicted_cov, predicted_cov)
    return state, cov, innovation, valid


def kalman_update_scalar(
    predicted: float,
    predicted_cov: float,
    measurement: float,
    *,
    sensor_var: float,
) -> tuple[float, float, float, bool]:
    """Per-cell reference for :func:`kalman_update` (same op order)."""
    valid = not math.isnan(measurement)
    gain = predicted_cov / (predicted_cov + sensor_var)
    innovation = (measurement - predicted) if valid else 0.0
    state = predicted + gain * innovation
    cov = (1.0 - gain) * predicted_cov if valid else predicted_cov
    return state, cov, innovation, valid


def meltpool_cell_stats(
    image: np.ndarray, cell_edge_px: int, melt_threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell (total, peak, melt_fraction) grids over a melt-pool frame.

    ``image`` is ``(H, W)`` with both dimensions divisible by
    ``cell_edge_px``.  ``melt_fraction`` counts pixels strictly above the
    threshold — an exact comparison, so scalar and kernel paths agree
    even for pixels landing on the boundary.
    """
    rows, cols = image.shape
    if rows % cell_edge_px or cols % cell_edge_px:
        raise ValueError(
            f"image {image.shape} not divisible by cell edge {cell_edge_px}"
        )
    blocks = image.reshape(
        rows // cell_edge_px, cell_edge_px, cols // cell_edge_px, cell_edge_px
    )
    total = blocks.sum(axis=(1, 3))
    peak = blocks.max(axis=(1, 3))
    melt_fraction = (blocks > melt_threshold).mean(axis=(1, 3))
    return total, peak, melt_fraction


def meltpool_cell_stats_scalar(
    image: np.ndarray, cell_edge_px: int, melt_threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure-python per-cell reference for :func:`meltpool_cell_stats`.

    Accumulates with python floats, so totals agree with the kernel only
    to within summation reordering (the suite uses ``allclose``); peak
    and melt counts are order-free and match exactly.
    """
    rows, cols = image.shape
    if rows % cell_edge_px or cols % cell_edge_px:
        raise ValueError(
            f"image {image.shape} not divisible by cell edge {cell_edge_px}"
        )
    n_rows = rows // cell_edge_px
    n_cols = cols // cell_edge_px
    total = np.zeros((n_rows, n_cols))
    peak = np.zeros((n_rows, n_cols))
    melt = np.zeros((n_rows, n_cols))
    edge = cell_edge_px
    for i in range(n_rows):
        for j in range(n_cols):
            acc = 0.0
            top = -math.inf
            hot = 0
            for r in range(i * edge, (i + 1) * edge):
                for c in range(j * edge, (j + 1) * edge):
                    v = float(image[r, c])
                    acc += v
                    if v > top:
                        top = v
                    if v > melt_threshold:
                        hot += 1
            total[i, j] = acc
            peak[i, j] = top
            melt[i, j] = hot / (edge * edge)
    return total, peak, melt


def top_k_mean(image: np.ndarray, k: int) -> float:
    """Mean of the ``k`` brightest pixels (the robust peak estimate).

    ``np.partition`` is deterministic for a fixed input, and the mean of
    a fixed-size top set is insensitive to ties' ordering, so the value
    is reproducible across deploy modes.
    """
    flat = np.asarray(image, dtype=np.float64).ravel()
    if k <= 0 or k > flat.size:
        raise ValueError(f"k={k} out of range for {flat.size} pixels")
    return float(np.partition(flat, flat.size - k)[flat.size - k :].mean())


def laser_feature_vector(
    image: np.ndarray, track_length_px: float, *, top_k: int = 64
) -> tuple[float, float]:
    """The two log-features the power/speed regressor inverts.

    With a Gaussian track cross-section of amplitude ``A ∝ P/sqrt(v)``
    and width ``sigma ∝ sqrt(P/v)``:

    * ``log_peak``  = log(mean of top-k pixels)        ≈ c1 + log P − ½ log v
    * ``log_dose``  = log(sum(image) / track_length)   ≈ c2 + 3/2 log P − log v

    The 2×2 log-linear system is invertible (det −¼), so two features
    identify both parameters; the constants are absorbed by calibration.
    """
    if track_length_px <= 0.0:
        raise ValueError("track_length_px must be positive")
    peak = top_k_mean(image, top_k)
    dose = float(np.asarray(image, dtype=np.float64).sum()) / track_length_px
    if peak <= 0.0 or dose <= 0.0:
        raise ValueError("melt-pool frame carries no positive signal")
    return math.log(peak), math.log(dose)
