"""Thermal analysis: cell extraction, threshold calibration, labeling."""

from .adaptive import AdaptiveThresholdLearner
from .cells import (
    Cell,
    cell_centers,
    cell_grid_shape,
    cell_means,
    extract_cells,
    masked_cell_means,
)
from .labeling import (
    ALL_LABELS,
    COLD,
    EVENT_LABELS,
    REGULAR,
    VERY_COLD,
    VERY_WARM,
    WARM,
    connected_defects,
    count_defect_regions,
    event_mask,
    is_event,
    label_cell,
    label_grid,
)
from .thresholds import (
    THRESHOLD_KEY_PREFIX,
    ThermalThresholds,
    calibrate_thresholds,
    load_thresholds,
    store_thresholds,
    threshold_key,
)

__all__ = [
    "Cell",
    "cell_means",
    "masked_cell_means",
    "extract_cells",
    "AdaptiveThresholdLearner",
    "cell_grid_shape",
    "ThermalThresholds",
    "calibrate_thresholds",
    "store_thresholds",
    "load_thresholds",
    "threshold_key",
    "THRESHOLD_KEY_PREFIX",
    "label_cell",
    "label_grid",
    "event_mask",
    "is_event",
    "ALL_LABELS",
    "EVENT_LABELS",
    "VERY_COLD",
    "COLD",
    "REGULAR",
    "WARM",
    "VERY_WARM",
]
