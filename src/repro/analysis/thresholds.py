"""Thermal-energy thresholds calibrated from historical data.

In the use case, "too-low and too-high thermal energy values are
identified based on whether the reported light emanation value is below or
above a threshold value, the latter computed based on historical
information from previous jobs" (§5). This module computes those
thresholds from reference layers of past builds and persists them in the
key-value store, where the ``detectEvent`` aggregate fetches them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..kvstore.api import KVStore
from .cells import cell_means

#: key prefix under which thresholds live in the KV store
THRESHOLD_KEY_PREFIX = "thresholds"


@dataclass(frozen=True)
class ThermalThresholds:
    """Class boundaries over mean cell intensity (0..255 scale).

    Cells are classified very-cold / cold / regular / warm / very-warm by
    the four increasing boundaries; only the extreme classes are reported
    as events.
    """

    very_cold_below: float
    cold_below: float
    warm_above: float
    very_warm_above: float

    def __post_init__(self) -> None:
        ordered = (
            self.very_cold_below,
            self.cold_below,
            self.warm_above,
            self.very_warm_above,
        )
        if list(ordered) != sorted(ordered):
            raise ValueError(f"threshold boundaries must be increasing: {ordered}")

    def as_payload(self) -> dict[str, float]:
        return {
            "very_cold_below": self.very_cold_below,
            "cold_below": self.cold_below,
            "warm_above": self.warm_above,
            "very_warm_above": self.very_warm_above,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, float]) -> "ThermalThresholds":
        """Inverse of :meth:`as_payload` (KV-store deserialization)."""
        return cls(
            very_cold_below=float(payload["very_cold_below"]),
            cold_below=float(payload["cold_below"]),
            warm_above=float(payload["warm_above"]),
            very_warm_above=float(payload["very_warm_above"]),
        )


def calibrate_thresholds(
    reference_images: Iterable[np.ndarray],
    cell_edge_px: int,
    cold_sigma: float = 1.5,
    very_cold_sigma: float = 3.0,
    warm_sigma: float = 1.5,
    very_warm_sigma: float = 3.0,
    melt_floor: float = 32.0,
    min_sigma_fraction: float = 0.02,
    regions: list[tuple[int, int, int, int]] | None = None,
) -> ThermalThresholds:
    """Fit thresholds to the cell-mean distribution of reference images.

    Powder background (below ``melt_floor``) is excluded so the statistics
    describe melted material only; boundaries sit at mean +/- k*sigma.
    ``min_sigma_fraction`` floors sigma at a fraction of the mean: large
    cells average noise almost entirely away, and without a floor the
    band collapses until benign systematic texture (hatch stripes, contour
    scans) reads as a thermal anomaly.

    ``regions`` — optional ``(row0, row1, col0, col1)`` crops (normally the
    specimen footprints). Cropping makes the calibration grid match the
    pipeline's per-specimen cell grid; without it, cells straddling a
    specimen edge mix melt with powder and inflate sigma.
    """
    samples: list[np.ndarray] = []
    for image in reference_images:
        image = np.asarray(image)
        crops = (
            [image]
            if regions is None
            else [image[r0:r1, c0:c1] for r0, r1, c0, c1 in regions]
        )
        for crop in crops:
            means = cell_means(crop, cell_edge_px).ravel()
            melted = means[means >= melt_floor]
            if len(melted):
                samples.append(melted)
    if not samples:
        raise ValueError("no melted cells found in the reference images")
    values = np.concatenate(samples)
    mu = float(values.mean())
    sigma = max(float(values.std()), min_sigma_fraction * mu, 1e-9)
    return ThermalThresholds(
        very_cold_below=mu - very_cold_sigma * sigma,
        cold_below=mu - cold_sigma * sigma,
        warm_above=mu + warm_sigma * sigma,
        very_warm_above=mu + very_warm_sigma * sigma,
    )


def threshold_key(job_id: str) -> str:
    """KV-store key under which a job's thresholds are stored."""
    return f"{THRESHOLD_KEY_PREFIX}/{job_id}"


def store_thresholds(store: KVStore, job_id: str, thresholds: ThermalThresholds) -> None:
    """Persist thresholds for ``job_id`` (data shared across pipelines)."""
    store.put(threshold_key(job_id), thresholds.as_payload())


def load_thresholds(store: KVStore, job_id: str) -> ThermalThresholds:
    """Fetch the thresholds the detectEvent step should apply."""
    payload = store.get(threshold_key(job_id))
    if payload is None:
        raise KeyError(f"no thresholds stored for job {job_id!r}")
    return ThermalThresholds.from_payload(payload)
