"""AMPES-style scan-path synthesis: raster tracks, deposition, thermal twin.

The OT workload renders whole-layer intensity images; the thermal
workloads need the layer *underneath* that image — where the laser
actually went.  This module synthesizes, per layer:

* a **serpentine raster scan path** (g-code-like): parallel tracks at
  the stack's scan orientation, spaced by the hatch distance, clipped to
  each part's footprint, with direction alternating track-to-track;
* a **power/speed command schedule** — the commanded setpoints plus the
  *actual* delivered values (commanded modulated by a slow AR(1)
  actuator drift, optionally with a commanded power spike window so
  forecast pipelines have a predictable overheat to warn about);
* **per-track energy deposition** onto a cell grid (line energy
  ``e = P/v`` J/mm integrated along each track — total deposited energy
  equals ``Σ e·length`` exactly, which the property suite asserts);
* a **surface-temperature recursion** with known ground truth:
  ``T_k = ambient + retention·(T_{k-1} − ambient) + coupling·E_k + w``
  observed through additive sensor noise and optional NaN dropout;
* a **melt-pool frame**: each track painted as a Gaussian cross-section
  whose amplitude scales as ``P/sqrt(v)`` and width as ``sqrt(P/v)`` (the
  melt-pool scaling the laser-parameter regressor inverts).

Everything is seeded and deterministic, so accuracy gates can compare
pipeline output against exact ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .geometry import Rect

__all__ = [
    "ScanTrack",
    "raster_tracks",
    "LaserCommand",
    "command_schedule",
    "deposit_energy",
    "MeltPoolOptics",
    "render_meltpool_frame",
    "ThermalModelParams",
    "ThermalLayerRecord",
    "ThermalBuildConfig",
    "ThermalBuild",
    "LaserCalibrationSample",
    "synthesize_thermal_build",
    "synthesize_laser_calibration",
    "suggest_overheat_threshold",
]


@dataclass(frozen=True)
class ScanTrack:
    """One straight laser vector in region coordinates (mm)."""

    x0_mm: float
    y0_mm: float
    x1_mm: float
    y1_mm: float
    power_w: float
    speed_mm_s: float

    @property
    def length_mm(self) -> float:
        return math.hypot(self.x1_mm - self.x0_mm, self.y1_mm - self.y0_mm)

    @property
    def line_energy_j_mm(self) -> float:
        """Energy deposited per mm of track: e = P / v."""
        return self.power_w / self.speed_mm_s

    @property
    def energy_j(self) -> float:
        return self.line_energy_j_mm * self.length_mm


def raster_tracks(
    rect: Rect,
    angle_deg: float,
    hatch_mm: float,
    power_w: float,
    speed_mm_s: float,
) -> list[ScanTrack]:
    """Serpentine raster fill of ``rect`` at the given scan orientation.

    Tracks run parallel to the scan vector, spaced ``hatch_mm`` apart
    along its normal (the invariant the property suite checks), clipped
    to the rectangle, with direction alternating between consecutive
    tracks.  The first track sits half a hatch inside the footprint so a
    part always receives at least one track when it is wider than the
    hatch.
    """
    if hatch_mm <= 0.0:
        raise ValueError("hatch_mm must be positive")
    theta = math.radians(angle_deg)
    dx, dy = math.cos(theta), math.sin(theta)
    nx, ny = -dy, dx  # unit normal to the scan direction
    corners = (
        (rect.x_min, rect.y_min),
        (rect.x_min, rect.y_max),
        (rect.x_max, rect.y_min),
        (rect.x_max, rect.y_max),
    )
    offsets = [cx * nx + cy * ny for cx, cy in corners]
    lo, hi = min(offsets), max(offsets)
    tracks: list[ScanTrack] = []
    offset = lo + hatch_mm / 2.0
    index = 0
    while offset < hi:
        # a point on the line with this normal offset
        bx, by = offset * nx, offset * ny
        span = _clip_line(bx, by, dx, dy, rect)
        offset += hatch_mm
        if span is None:
            continue
        t0, t1 = span
        x0, y0 = bx + t0 * dx, by + t0 * dy
        x1, y1 = bx + t1 * dx, by + t1 * dy
        if index % 2:  # serpentine: odd tracks run backwards
            x0, y0, x1, y1 = x1, y1, x0, y0
        tracks.append(ScanTrack(x0, y0, x1, y1, power_w, speed_mm_s))
        index += 1
    return tracks


def _clip_line(
    bx: float, by: float, dx: float, dy: float, rect: Rect
) -> tuple[float, float] | None:
    """Liang-Barsky: parameter range of the infinite line inside ``rect``."""
    t0, t1 = -math.inf, math.inf
    for base, delta, lo, hi in (
        (bx, dx, rect.x_min, rect.x_max),
        (by, dy, rect.y_min, rect.y_max),
    ):
        if abs(delta) < 1e-12:
            if base < lo or base > hi:
                return None
            continue
        ta = (lo - base) / delta
        tb = (hi - base) / delta
        if ta > tb:
            ta, tb = tb, ta
        t0 = max(t0, ta)
        t1 = min(t1, tb)
    if not (t1 - t0 > 1e-9):
        return None
    return t0, t1


@dataclass(frozen=True)
class LaserCommand:
    """Power/speed pair for one layer (commanded or actual)."""

    power_w: float
    speed_mm_s: float


def command_schedule(
    layers: int,
    power_w: float,
    speed_mm_s: float,
    *,
    seed: int,
    drift_pct: float = 0.03,
    spike_layers: tuple[int, int] | None = None,
    spike_factor: float = 1.6,
) -> list[tuple[LaserCommand, LaserCommand]]:
    """Per-layer ``(commanded, actual)`` pairs.

    The commanded setpoints are the nominal machine parameters, with the
    power multiplied by ``spike_factor`` inside the half-open
    ``spike_layers`` window (the planned hot section the forecaster must
    flag ahead of time).  The actual values modulate the commanded ones
    by an AR(1) actuator drift with stationary deviation ``drift_pct`` —
    the slowly wandering ground truth the reconstruction pipeline
    recovers.
    """
    rng = np.random.default_rng(seed)
    rho = 0.85
    sigma = drift_pct * math.sqrt(1.0 - rho * rho)
    p_drift = v_drift = 0.0
    out: list[tuple[LaserCommand, LaserCommand]] = []
    for layer in range(layers):
        commanded_p = power_w
        if spike_layers is not None and spike_layers[0] <= layer < spike_layers[1]:
            commanded_p = power_w * spike_factor
        p_drift = rho * p_drift + sigma * rng.standard_normal()
        v_drift = rho * v_drift + sigma * rng.standard_normal()
        commanded = LaserCommand(commanded_p, speed_mm_s)
        actual = LaserCommand(
            commanded_p * (1.0 + p_drift), speed_mm_s * (1.0 + v_drift)
        )
        out.append((commanded, actual))
    return out


def deposit_energy(
    tracks: list[ScanTrack],
    grid_cells: int,
    cell_mm: float,
    *,
    sample_step_mm: float = 0.5,
) -> np.ndarray:
    """Rasterize track energy onto a ``(grid_cells, grid_cells)`` grid (J).

    Each track is sampled at the midpoints of equal sub-segments no
    longer than ``sample_step_mm``; every sample deposits its share of
    the track energy into the cell under it.  Summing the grid therefore
    reproduces ``Σ e·length`` exactly (up to float addition) — energy is
    conserved by construction, not by normalization.
    """
    grid = np.zeros((grid_cells, grid_cells), dtype=np.float64)
    for track in tracks:
        length = track.length_mm
        if length <= 0.0:
            continue
        n = max(1, math.ceil(length / sample_step_mm))
        ts = (np.arange(n, dtype=np.float64) + 0.5) / n
        xs = track.x0_mm + ts * (track.x1_mm - track.x0_mm)
        ys = track.y0_mm + ts * (track.y1_mm - track.y0_mm)
        cols = np.clip((xs / cell_mm).astype(np.int64), 0, grid_cells - 1)
        rows = np.clip((ys / cell_mm).astype(np.int64), 0, grid_cells - 1)
        np.add.at(grid, (rows, cols), track.energy_j / n)
    return grid


@dataclass(frozen=True)
class MeltPoolOptics:
    """Synthetic on-axis melt-pool sensor model.

    Track cross-sections are Gaussian with amplitude
    ``amplitude_coeff * P / sqrt(v)`` and width
    ``width_coeff_mm * sqrt(P / v)`` — the two scalings that make power
    and speed jointly identifiable from one frame.
    """

    amplitude_coeff: float = 15.0
    width_coeff_mm: float = 1.25
    melt_threshold: float = 60.0
    noise_std: float = 2.0
    top_k: int = 64

    def amplitude(self, power_w: float, speed_mm_s: float) -> float:
        return self.amplitude_coeff * power_w / math.sqrt(speed_mm_s)

    def sigma_mm(self, power_w: float, speed_mm_s: float) -> float:
        return self.width_coeff_mm * math.sqrt(power_w / speed_mm_s)


def render_meltpool_frame(
    tracks: list[ScanTrack],
    image_px: int,
    px_per_mm: float,
    optics: MeltPoolOptics,
) -> np.ndarray:
    """Noise-free melt-pool frame: max-composed Gaussian track profiles."""
    image = np.zeros((image_px, image_px), dtype=np.float64)
    coords = (np.arange(image_px, dtype=np.float64) + 0.5) / px_per_mm
    for track in tracks:
        sigma = optics.sigma_mm(track.power_w, track.speed_mm_s)
        amplitude = optics.amplitude(track.power_w, track.speed_mm_s)
        reach = 4.0 * sigma
        x_lo = min(track.x0_mm, track.x1_mm) - reach
        x_hi = max(track.x0_mm, track.x1_mm) + reach
        y_lo = min(track.y0_mm, track.y1_mm) - reach
        y_hi = max(track.y0_mm, track.y1_mm) + reach
        c0 = max(0, int(x_lo * px_per_mm))
        c1 = min(image_px, int(math.ceil(x_hi * px_per_mm)) + 1)
        r0 = max(0, int(y_lo * px_per_mm))
        r1 = min(image_px, int(math.ceil(y_hi * px_per_mm)) + 1)
        if c0 >= c1 or r0 >= r1:
            continue
        xs = coords[c0:c1][None, :]
        ys = coords[r0:r1][:, None]
        d2 = _segment_distance_sq(
            xs, ys, track.x0_mm, track.y0_mm, track.x1_mm, track.y1_mm
        )
        profile = amplitude * np.exp(-d2 / (2.0 * sigma * sigma))
        np.maximum(image[r0:r1, c0:c1], profile, out=image[r0:r1, c0:c1])
    return image


def _segment_distance_sq(xs, ys, x0, y0, x1, y1):
    """Squared distance from each (ys, xs) grid point to a segment."""
    vx, vy = x1 - x0, y1 - y0
    norm = vx * vx + vy * vy
    if norm < 1e-18:
        return (xs - x0) ** 2 + (ys - y0) ** 2
    t = np.clip(((xs - x0) * vx + (ys - y0) * vy) / norm, 0.0, 1.0)
    px = x0 + t * vx
    py = y0 + t * vy
    return (xs - px) ** 2 + (ys - py) ** 2


@dataclass(frozen=True)
class ThermalModelParams:
    """Surface-temperature state-space model (sensor units).

    The estimator loads these from the KV store — they are the
    calibrated machine model, not tunables baked into operator code.
    """

    ambient: float = 80.0
    retention: float = 0.62
    coupling_per_j: float = 55.0
    process_var: float = 0.25
    sensor_var: float = 2.25

    def as_payload(self) -> dict[str, float]:
        return {
            "ambient": self.ambient,
            "retention": self.retention,
            "coupling_per_j": self.coupling_per_j,
            "process_var": self.process_var,
            "sensor_var": self.sensor_var,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, float]) -> "ThermalModelParams":
        return cls(
            ambient=float(payload["ambient"]),
            retention=float(payload["retention"]),
            coupling_per_j=float(payload["coupling_per_j"]),
            process_var=float(payload["process_var"]),
            sensor_var=float(payload["sensor_var"]),
        )


@dataclass(frozen=True)
class ThermalLayerRecord:
    """Everything one layer publishes, plus its hidden ground truth."""

    job_id: str
    layer: int
    scan_angle_deg: float
    commanded_power_w: float
    commanded_speed_mm_s: float
    actual_power_w: float
    actual_speed_mm_s: float
    track_length_mm: float
    #: planned per-cell deposition for this layer (from commanded values)
    energy_cells: np.ndarray
    #: planned deposition for the *next* layer (zeros past the build top)
    energy_next_cells: np.ndarray
    #: hidden ground truth after this layer (actual values + process noise)
    true_temp_cells: np.ndarray
    #: what the sensor reports: truth + noise, NaN where samples dropped
    measured_temp_cells: np.ndarray
    #: on-axis melt-pool frame (actual values + sensor noise)
    meltpool_image: np.ndarray


def _default_parts() -> tuple[Rect, ...]:
    return (Rect(5.0, 5.0, 27.0, 55.0), Rect(33.0, 5.0, 55.0, 55.0))


@dataclass(frozen=True)
class ThermalBuildConfig:
    """Geometry, schedule, and noise model of one synthetic thermal build."""

    job_id: str = "thermal-build"
    layers: int = 30
    region_mm: float = 60.0
    cell_mm: float = 1.5
    px_per_mm: float = 2.0
    hatch_mm: float = 2.0
    parts: tuple[Rect, ...] = field(default_factory=_default_parts)
    power_w: float = 280.0
    speed_mm_s: float = 1200.0
    scan_start_deg: float = 90.0
    scan_increment_deg: float = 15.0
    thermal: ThermalModelParams = field(default_factory=ThermalModelParams)
    optics: MeltPoolOptics = field(default_factory=MeltPoolOptics)
    drift_pct: float = 0.03
    spike_layers: tuple[int, int] | None = None
    spike_factor: float = 1.6
    dropout_rate: float = 0.0
    sample_step_mm: float = 0.5
    seed: int = 11

    @property
    def grid_cells(self) -> int:
        return int(round(self.region_mm / self.cell_mm))

    @property
    def image_px(self) -> int:
        return int(round(self.region_mm * self.px_per_mm))

    @property
    def cell_edge_px(self) -> int:
        """Melt-pool pixels per thermal cell (must divide the image)."""
        edge = self.cell_mm * self.px_per_mm
        if abs(edge - round(edge)) > 1e-9:
            raise ValueError(
                f"cell_mm * px_per_mm = {edge} must be an integer pixel count"
            )
        return int(round(edge))

    def scan_angle(self, layer: int) -> float:
        return (self.scan_start_deg + layer * self.scan_increment_deg) % 180.0

    def layer_tracks(
        self, layer: int, power_w: float, speed_mm_s: float
    ) -> list[ScanTrack]:
        angle = self.scan_angle(layer)
        tracks: list[ScanTrack] = []
        for part in self.parts:
            tracks.extend(
                raster_tracks(part, angle, self.hatch_mm, power_w, speed_mm_s)
            )
        return tracks


@dataclass(frozen=True)
class ThermalBuild:
    """A fully synthesized build: config + one record per layer."""

    config: ThermalBuildConfig
    records: list[ThermalLayerRecord]


def synthesize_thermal_build(config: ThermalBuildConfig) -> ThermalBuild:
    """Run the digital twin: schedule, scan, deposit, heat, observe."""
    rng = np.random.default_rng(config.seed)
    schedule = command_schedule(
        config.layers,
        config.power_w,
        config.speed_mm_s,
        seed=config.seed + 1,
        drift_pct=config.drift_pct,
        spike_layers=config.spike_layers,
        spike_factor=config.spike_factor,
    )
    cells = config.grid_cells
    # pass 1: planned (commanded) deposition per layer, so layer k can
    # publish layer k+1's plan — the g-code is known ahead of the scan
    planned: list[np.ndarray] = []
    for layer, (commanded, _actual) in enumerate(schedule):
        tracks = config.layer_tracks(layer, commanded.power_w, commanded.speed_mm_s)
        planned.append(
            deposit_energy(
                tracks, cells, config.cell_mm, sample_step_mm=config.sample_step_mm
            )
        )
    planned.append(np.zeros((cells, cells), dtype=np.float64))

    params = config.thermal
    truth = np.full((cells, cells), params.ambient, dtype=np.float64)
    records: list[ThermalLayerRecord] = []
    for layer, (commanded, actual) in enumerate(schedule):
        tracks = config.layer_tracks(layer, actual.power_w, actual.speed_mm_s)
        energy_actual = deposit_energy(
            tracks, cells, config.cell_mm, sample_step_mm=config.sample_step_mm
        )
        process_noise = math.sqrt(params.process_var) * rng.standard_normal(
            (cells, cells)
        )
        truth = (
            params.ambient
            + params.retention * (truth - params.ambient)
            + params.coupling_per_j * energy_actual
            + process_noise
        )
        measured = truth + math.sqrt(params.sensor_var) * rng.standard_normal(
            (cells, cells)
        )
        if config.dropout_rate > 0.0:
            dropped = rng.random((cells, cells)) < config.dropout_rate
            measured = np.where(dropped, np.nan, measured)
        meltpool = render_meltpool_frame(
            tracks, config.image_px, config.px_per_mm, config.optics
        )
        if config.optics.noise_std > 0.0:
            meltpool = meltpool + config.optics.noise_std * rng.standard_normal(
                meltpool.shape
            )
        records.append(
            ThermalLayerRecord(
                job_id=config.job_id,
                layer=layer,
                scan_angle_deg=config.scan_angle(layer),
                commanded_power_w=commanded.power_w,
                commanded_speed_mm_s=commanded.speed_mm_s,
                actual_power_w=actual.power_w,
                actual_speed_mm_s=actual.speed_mm_s,
                track_length_mm=sum(t.length_mm for t in tracks),
                energy_cells=planned[layer],
                energy_next_cells=planned[layer + 1],
                true_temp_cells=truth.copy(),
                measured_temp_cells=measured,
                meltpool_image=meltpool,
            )
        )
    return ThermalBuild(config=config, records=records)


@dataclass(frozen=True)
class LaserCalibrationSample:
    """One reference frame with known delivered power/speed."""

    power_w: float
    speed_mm_s: float
    track_length_mm: float
    image: np.ndarray


def synthesize_laser_calibration(
    config: ThermalBuildConfig,
    *,
    spread: float = 0.12,
    steps: int = 3,
    angles: tuple[float, ...] = (90.0, 45.0, 0.0),
    seed: int | None = None,
) -> list[LaserCalibrationSample]:
    """Reference sweep around the nominal setpoints for regressor fitting.

    A ``steps × steps`` grid over ``±spread`` of nominal power and speed,
    rendered at several scan angles with the production optics and noise —
    the labelled data the recursive least-squares calibrator consumes.
    """
    rng = np.random.default_rng(config.seed + 101 if seed is None else seed)
    factors = np.linspace(1.0 - spread, 1.0 + spread, steps)
    samples: list[LaserCalibrationSample] = []
    for angle in angles:
        layer_config = replace(
            config, scan_start_deg=angle, scan_increment_deg=0.0
        )
        for pf in factors:
            for vf in factors:
                power = config.power_w * float(pf)
                speed = config.speed_mm_s * float(vf)
                tracks = layer_config.layer_tracks(0, power, speed)
                image = render_meltpool_frame(
                    tracks, config.image_px, config.px_per_mm, config.optics
                )
                if config.optics.noise_std > 0.0:
                    image = image + config.optics.noise_std * rng.standard_normal(
                        image.shape
                    )
                samples.append(
                    LaserCalibrationSample(
                        power_w=power,
                        speed_mm_s=speed,
                        track_length_mm=sum(t.length_mm for t in tracks),
                        image=image,
                    )
                )
    return samples


def suggest_overheat_threshold(
    build: ThermalBuild, *, quantile: float = 0.999, margin: float = 2.0
) -> float:
    """Alert threshold just above normal operation's hottest cells.

    Computed over the ground truth of layers *outside* the spike window,
    so a commanded power spike predictably crosses it while steady
    operation stays clear.
    """
    spike = build.config.spike_layers
    normal = [
        r.true_temp_cells
        for r in build.records
        if spike is None or not (spike[0] <= r.layer < spike[1])
    ]
    if not normal:
        raise ValueError("no layers outside the spike window")
    stacked = np.stack(normal)
    return float(np.quantile(stacked, quantile)) + margin
