"""PBF-LB machine simulator (the EOS M290 digital twin).

Executes a :class:`~repro.am.job.PrintJob` layer by layer. Per layer the
machine melts the cross-section (duration estimated from the scanned area
and the process parameters), forwards the OT image "at the completion of
the corresponding layer" (§5), and then spends the *recoat gap* — about
3 seconds on the evaluated machine — removing leftover powder and
recoating. That gap is the QoS budget for online decisions.

Two pacing modes:

* ``realtime=True`` — sleeps through (scaled) melt and recoat intervals,
  for live-monitoring demos;
* ``realtime=False`` — emits records as fast as they can be rendered, the
  replay mode used by the throughput experiment.

The machine also honours a ``ControlHandle``: the expert (or a pipeline
sink acting for them) can request early termination, which stops the build
before the next layer — the "timely decision" loop of §1.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator

from .dataset import BuildDataset, LayerRecord
from .job import PrintJob
from .ot import OTImageRenderer

#: recoat gap of the evaluated machine, seconds (QoS threshold in §5)
RECOAT_GAP_S = 3.0


class ControlHandle:
    """Thread-safe control channel from the expert back to the machine."""

    def __init__(self) -> None:
        self._terminate = threading.Event()
        self._reason: str | None = None
        self._lock = threading.Lock()

    def request_termination(self, reason: str) -> None:
        """Ask the machine to stop before starting another layer."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._terminate.set()

    @property
    def termination_requested(self) -> bool:
        return self._terminate.is_set()

    @property
    def reason(self) -> str | None:
        with self._lock:
            return self._reason


@dataclass(frozen=True)
class BuildOutcome:
    """Summary of one (possibly interrupted) build."""

    job_id: str
    layers_completed: int
    total_layers: int
    terminated_early: bool
    termination_reason: str | None
    wall_seconds: float


class PBFLBMachine:
    """Layer-by-layer executor of print jobs."""

    def __init__(
        self,
        machine_id: str = "M290-SIM-01",
        renderer: OTImageRenderer | None = None,
        recoat_gap_s: float = RECOAT_GAP_S,
        time_scale: float = 1.0,
    ) -> None:
        """``time_scale`` compresses real-time pacing (0.01 = 100x faster)."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.machine_id = machine_id
        self._renderer = renderer or OTImageRenderer()
        self._recoat_gap = recoat_gap_s
        self._time_scale = time_scale

    @property
    def renderer(self) -> OTImageRenderer:
        return self._renderer

    def melt_time_s(self, job: PrintJob) -> float:
        """Estimated melt duration of one layer from area and parameters.

        Track length ~ area / hatch distance; duration = length / speed.
        """
        area_mm2 = sum(s.footprint.area for s in job.specimens)
        track_mm = area_mm2 / job.process.hatch_distance_mm
        return track_mm / job.process.scan_speed_mm_s

    def run(
        self,
        job: PrintJob,
        realtime: bool = False,
        control: ControlHandle | None = None,
        on_layer: Callable[[LayerRecord], None] | None = None,
        max_layers: int | None = None,
        with_truth: bool = False,
    ) -> BuildOutcome:
        """Execute ``job``, invoking ``on_layer`` per completed layer."""
        started = time.monotonic()
        completed = 0
        terminated = False
        dataset = BuildDataset(job, self._renderer, with_truth=with_truth)
        total = len(dataset) if max_layers is None else min(max_layers, len(dataset))
        for record in dataset.records(0, total):
            if control is not None and control.termination_requested:
                terminated = True
                break
            if realtime:
                time.sleep(self.melt_time_s(job) * self._time_scale)
            if on_layer is not None:
                # Stamp the layer's completion: the single event time every
                # collector of this record agrees on (see LayerRecord).
                on_layer(replace(record, completed_at=time.monotonic()))
            completed += 1
            if realtime and completed < total:
                time.sleep(self._recoat_gap * self._time_scale)
        return BuildOutcome(
            job_id=job.job_id,
            layers_completed=completed,
            total_layers=total,
            terminated_early=terminated,
            termination_reason=control.reason if control is not None else None,
            wall_seconds=time.monotonic() - started,
        )

    def layer_stream(
        self,
        job: PrintJob,
        max_layers: int | None = None,
        with_truth: bool = False,
    ) -> Iterator[LayerRecord]:
        """Pull-based replay of the job's layer records (no pacing)."""
        dataset = BuildDataset(job, self._renderer, with_truth=with_truth)
        total = len(dataset) if max_layers is None else min(max_layers, len(dataset))
        yield from dataset.records(0, total)
