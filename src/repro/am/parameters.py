"""Printing process parameters.

The Raw Data Collector has a dedicated source for "information about the
printing jobs submitted at the PBF-LB machine" (§5). That source publishes
one tuple per layer, carrying the machine settings plus the specimen
footprint map that ``isolateSpecimen`` needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ProcessParameters:
    """Machine settings for one job (EOS M290-class defaults, Ti-6Al-4V)."""

    laser_power_w: float = 280.0
    scan_speed_mm_s: float = 1200.0
    hatch_distance_mm: float = 0.14
    layer_thickness_mm: float = 0.04
    beam_diameter_um: float = 100.0
    material: str = "Ti-6Al-4V"
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def energy_density_j_mm3(self) -> float:
        """Volumetric energy density E = P / (v * h * t)."""
        return self.laser_power_w / (
            self.scan_speed_mm_s * self.hatch_distance_mm * self.layer_thickness_mm
        )

    def as_payload(self) -> dict[str, Any]:
        """Flat dict for a tuple payload."""
        payload = {
            "laser_power_w": self.laser_power_w,
            "scan_speed_mm_s": self.scan_speed_mm_s,
            "hatch_distance_mm": self.hatch_distance_mm,
            "layer_thickness_mm": self.layer_thickness_mm,
            "beam_diameter_um": self.beam_diameter_um,
            "material": self.material,
            "energy_density_j_mm3": self.energy_density_j_mm3,
        }
        payload.update(self.extras)
        return payload


@dataclass(frozen=True)
class LayerParameters:
    """Per-layer record published by the Printing Parameters source.

    ``specimen_shapes`` carries each part's cross-section geometry (or
    ``None`` for full blocks) so geometry-aware pipelines can mask out
    powder inside a part's bounding box.
    """

    layer: int
    z_mm: float
    stack_index: int
    scan_angle_deg: float
    specimen_map: dict[str, tuple[float, float, float, float]]
    process: ProcessParameters
    specimen_shapes: dict[str, Any] | None = None

    def as_payload(self) -> dict[str, Any]:
        payload = {
            "z_mm": self.z_mm,
            "stack_index": self.stack_index,
            "scan_angle_deg": self.scan_angle_deg,
            "specimen_map": self.specimen_map,
        }
        if self.specimen_shapes is not None:
            payload["specimen_shapes"] = self.specimen_shapes
        for key, value in self.process.as_payload().items():
            payload[f"param_{key}"] = value
        return payload
