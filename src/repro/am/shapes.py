"""Specimen cross-section shapes.

PBF-LB melts "the 2D slices of a 3D object" (§1) — real builds are not
rectangular blocks. The paper's future work (§7) names "the shape of the
object being printed" as a monitoring dimension; these cross-section
models provide it:

* :class:`BlockShape` — the evaluation build's rectangular block;
* :class:`CylinderShape` — constant circular section;
* :class:`ConeShape` — circular section shrinking with build height;
* :class:`PolygonShape` — arbitrary convex/concave polygon section.

A shape answers one vectorized question: which (x, y) points belong to
the part at height z. The OT renderer melts only those pixels, and the
Printing Parameters source ships the shapes so ``isolateSpecimen`` can
attach per-layer part masks — geometry-aware monitoring evaluates only
cells that are actually part, so powder inside a specimen's bounding box
never reads as a "cold" anomaly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .geometry import Rect


class CrossSection(ABC):
    """Geometry of one specimen's horizontal slice as a function of z."""

    @abstractmethod
    def contains(self, x_mm: np.ndarray, y_mm: np.ndarray, z_mm: float) -> np.ndarray:
        """Boolean mask: which (x, y) points are part material at ``z``.

        ``x_mm`` and ``y_mm`` are broadcastable arrays in plate mm.
        """

    @abstractmethod
    def bounding_rect(self) -> Rect:
        """Tightest axis-aligned rectangle containing every slice."""

    def area_at(self, z_mm: float, samples: int = 64) -> float:
        """Approximate slice area (mm^2) by uniform sampling of the bbox."""
        rect = self.bounding_rect()
        xs = np.linspace(rect.x_min, rect.x_max, samples)
        ys = np.linspace(rect.y_min, rect.y_max, samples)
        grid_x, grid_y = np.meshgrid(xs, ys)
        inside = self.contains(grid_x, grid_y, z_mm)
        return float(inside.mean()) * rect.area


class BlockShape(CrossSection):
    """Full rectangular block: every bbox point is part at every layer."""

    def __init__(self, footprint: Rect) -> None:
        self._footprint = footprint

    def contains(self, x_mm: np.ndarray, y_mm: np.ndarray, z_mm: float) -> np.ndarray:
        fp = self._footprint
        return (
            (x_mm >= fp.x_min)
            & (x_mm < fp.x_max)
            & (y_mm >= fp.y_min)
            & (y_mm < fp.y_max)
        )

    def bounding_rect(self) -> Rect:
        return self._footprint


class CylinderShape(CrossSection):
    """Vertical cylinder: constant circular cross-section."""

    def __init__(self, center_x: float, center_y: float, radius: float) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._cx = center_x
        self._cy = center_y
        self._radius = radius

    @property
    def radius(self) -> float:
        return self._radius

    def contains(self, x_mm: np.ndarray, y_mm: np.ndarray, z_mm: float) -> np.ndarray:
        return (x_mm - self._cx) ** 2 + (y_mm - self._cy) ** 2 <= self._radius**2

    def bounding_rect(self) -> Rect:
        return Rect(
            self._cx - self._radius,
            self._cy - self._radius,
            self._cx + self._radius,
            self._cy + self._radius,
        )


class ConeShape(CrossSection):
    """Truncated cone: radius shrinks linearly from base to apex.

    ``r(z) = base_radius * (1 - (1 - tip_fraction) * z / height)``; with
    ``tip_fraction=0`` the cone closes to a point at ``height``.
    """

    def __init__(
        self,
        center_x: float,
        center_y: float,
        base_radius: float,
        height_mm: float,
        tip_fraction: float = 0.2,
    ) -> None:
        if base_radius <= 0 or height_mm <= 0:
            raise ValueError("base_radius and height must be positive")
        if not 0.0 <= tip_fraction <= 1.0:
            raise ValueError("tip_fraction must be in [0, 1]")
        self._cx = center_x
        self._cy = center_y
        self._base = base_radius
        self._height = height_mm
        self._tip = tip_fraction

    def radius_at(self, z_mm: float) -> float:
        """Slice radius at height ``z_mm`` (0 outside the cone)."""
        if z_mm < 0 or z_mm > self._height:
            return 0.0
        return self._base * (1.0 - (1.0 - self._tip) * z_mm / self._height)

    def contains(self, x_mm: np.ndarray, y_mm: np.ndarray, z_mm: float) -> np.ndarray:
        radius = self.radius_at(z_mm)
        if radius <= 0:
            return np.zeros(np.broadcast(x_mm, y_mm).shape, dtype=bool)
        return (x_mm - self._cx) ** 2 + (y_mm - self._cy) ** 2 <= radius**2

    def bounding_rect(self) -> Rect:
        return Rect(
            self._cx - self._base,
            self._cy - self._base,
            self._cx + self._base,
            self._cy + self._base,
        )


class PolygonShape(CrossSection):
    """Constant polygonal cross-section (vectorized even-odd rule)."""

    def __init__(self, vertices: list[tuple[float, float]]) -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        self._vertices = np.asarray(vertices, dtype=float)

    def contains(self, x_mm: np.ndarray, y_mm: np.ndarray, z_mm: float) -> np.ndarray:
        x = np.asarray(x_mm, dtype=float)
        y = np.asarray(y_mm, dtype=float)
        inside = np.zeros(np.broadcast(x, y).shape, dtype=bool)
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            x1, y1 = verts[i]
            x2, y2 = verts[(i + 1) % n]
            crosses = (y1 > y) != (y2 > y)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_at_y = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            inside ^= crosses & (x < x_at_y)
        return inside

    def bounding_rect(self) -> Rect:
        xs = self._vertices[:, 0]
        ys = self._vertices[:, 1]
        return Rect(float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))


def shape_mask_px(
    shape: CrossSection,
    z_mm: float,
    row0: int,
    row1: int,
    col0: int,
    col1: int,
    px_per_mm: float,
) -> np.ndarray:
    """Rasterize a shape's slice over a pixel window (pixel centers)."""
    rows = (np.arange(row0, row1, dtype=float) + 0.5) / px_per_mm
    cols = (np.arange(col0, col1, dtype=float) + 0.5) / px_per_mm
    grid_x, grid_y = np.meshgrid(cols, rows)
    return shape.contains(grid_x, grid_y, z_mm)
