"""Replayable per-layer build datasets.

A :class:`BuildDataset` couples a :class:`~repro.am.job.PrintJob` with an
OT renderer and yields one :class:`LayerRecord` per layer: the OT image,
the printing-parameter payload, and (for evaluation only — never visible
to the pipeline) the ground-truth defect mask. Records are deterministic
in the job seed, so historic-data replays (Figure 7) re-produce byte-equal
inputs at any offered rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from .job import PrintJob
from .ot import OTImageRenderer


@dataclass(frozen=True)
class LayerRecord:
    """Everything the machine emits at the completion of one layer.

    ``completed_at`` is the event time the machine stamps when the layer
    finishes. Collectors use it as the tuple's ``tau``; when it is absent
    (offline dataset replay) the layer index serves as the event clock.
    A single stamp shared by every collector is what lets ``fuse`` match
    a layer's OT image with its parameters even when several machines'
    streams interleave with arbitrary skew.
    """

    job_id: str
    layer: int
    z_mm: float
    image: np.ndarray  # (px, px) uint8 OT image
    parameters: dict[str, Any]  # LayerParameters payload
    truth_mask: np.ndarray | None = None  # evaluation-only ground truth
    completed_at: float | None = None  # machine-stamped event time


class BuildDataset:
    """Lazily renders (and optionally caches) all layers of one job."""

    def __init__(
        self,
        job: PrintJob,
        renderer: OTImageRenderer,
        with_truth: bool = False,
        cache: bool = False,
    ) -> None:
        self._job = job
        self._renderer = renderer
        self._with_truth = with_truth
        self._cache: dict[int, LayerRecord] | None = {} if cache else None

    @property
    def job(self) -> PrintJob:
        return self._job

    @property
    def renderer(self) -> OTImageRenderer:
        return self._renderer

    def __len__(self) -> int:
        return self._job.num_layers

    def layer_record(self, layer: int) -> LayerRecord:
        """Render (or fetch) the record for one layer."""
        if not 0 <= layer < len(self):
            raise IndexError(f"layer {layer} outside build (0..{len(self) - 1})")
        if self._cache is not None and layer in self._cache:
            return self._cache[layer]
        job = self._job
        z_mm = job.z_of_layer(layer)
        scan = job.stack_of_layer(layer)
        image = self._renderer.render(
            layer, z_mm, job.specimens, scan, job.defects, job.process,
            streaks=job.streaks,
        )
        truth = (
            self._renderer.ground_truth_mask(z_mm, job.defects)
            if self._with_truth
            else None
        )
        record = LayerRecord(
            job_id=job.job_id,
            layer=layer,
            z_mm=z_mm,
            image=image,
            parameters=job.layer_parameters(layer).as_payload(),
            truth_mask=truth,
        )
        if self._cache is not None:
            self._cache[layer] = record
        return record

    def records(self, start: int = 0, end: int | None = None) -> Iterator[LayerRecord]:
        """Iterate layer records in build order."""
        if end is None:
            end = len(self)
        for layer in range(start, min(end, len(self))):
            yield self.layer_record(layer)

    def __iter__(self) -> Iterator[LayerRecord]:
        return self.records()
