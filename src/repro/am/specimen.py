"""Specimens and build layout.

The paper's evaluation job builds 12 blocks of 25 (w) x 50 (l) x 23 (h) mm;
each block contains three small cylinders later sectioned with X-ray CT,
and is divided along the build direction into 23 stacks of 1 mm, each
scanned at its own orientation to the gas flow (§5 Data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import PLATE_MM, Rect

#: paper's specimen dimensions, mm
SPECIMEN_WIDTH_MM = 25.0
SPECIMEN_LENGTH_MM = 50.0
SPECIMEN_HEIGHT_MM = 23.0
#: stack height along the build direction, mm
STACK_HEIGHT_MM = 1.0
#: number of XCT witness cylinders per block
CYLINDERS_PER_SPECIMEN = 3
CYLINDER_RADIUS_MM = 2.0


@dataclass(frozen=True)
class Cylinder:
    """One witness cylinder (vertical, full specimen height)."""

    center_x: float
    center_y: float
    radius: float = CYLINDER_RADIUS_MM


@dataclass(frozen=True)
class Specimen:
    """One part on the build plate.

    ``shape`` is the part's cross-section geometry (see
    :mod:`repro.am.shapes`); ``None`` means the full rectangular block of
    the paper's evaluation build.
    """

    specimen_id: str
    footprint: Rect
    height_mm: float = SPECIMEN_HEIGHT_MM
    cylinders: tuple[Cylinder, ...] = field(default_factory=tuple)
    shape: object | None = None  # CrossSection; object avoids an import cycle

    @property
    def num_stacks(self) -> int:
        import math

        return max(1, math.ceil(self.height_mm / STACK_HEIGHT_MM))

    def stack_of_height(self, z_mm: float) -> int:
        """Stack index containing build height ``z_mm`` (0-based)."""
        if z_mm < 0 or z_mm >= self.height_mm:
            raise ValueError(f"height {z_mm} outside specimen (0..{self.height_mm})")
        return int(z_mm / STACK_HEIGHT_MM)


def default_cylinders(footprint: Rect) -> tuple[Cylinder, ...]:
    """Three cylinders along the specimen's long axis, as in the paper."""
    cx = (footprint.x_min + footprint.x_max) / 2
    length = footprint.height
    ys = [footprint.y_min + frac * length for frac in (0.25, 0.5, 0.75)]
    return tuple(Cylinder(cx, y) for y in ys)


def standard_layout(
    num_specimens: int = 12,
    columns: int = 4,
    margin_mm: float = 15.0,
    plate_mm: float = PLATE_MM,
    width_mm: float = SPECIMEN_WIDTH_MM,
    length_mm: float = SPECIMEN_LENGTH_MM,
    height_mm: float = SPECIMEN_HEIGHT_MM,
) -> list[Specimen]:
    """Arrange specimens in a grid on the plate (paper: 12 blocks).

    Blocks are placed column-major in a ``columns``-wide grid with even
    spacing inside the margins. Raises if the requested layout cannot fit.
    """
    if num_specimens < 1:
        raise ValueError("need at least one specimen")
    rows = (num_specimens + columns - 1) // columns
    usable = plate_mm - 2 * margin_mm
    if columns * width_mm > usable or rows * length_mm > usable:
        raise ValueError(
            f"{num_specimens} specimens of {width_mm}x{length_mm} mm do not fit "
            f"in {columns} columns within a {plate_mm} mm plate"
        )
    gap_x = (usable - columns * width_mm) / max(1, columns - 1) if columns > 1 else 0.0
    gap_y = (usable - rows * length_mm) / max(1, rows - 1) if rows > 1 else 0.0
    specimens: list[Specimen] = []
    for index in range(num_specimens):
        row, col = divmod(index, columns)
        x0 = margin_mm + col * (width_mm + gap_x)
        y0 = margin_mm + row * (length_mm + gap_y)
        footprint = Rect(x0, y0, x0 + width_mm, y0 + length_mm)
        specimens.append(
            Specimen(
                specimen_id=f"S{index:02d}",
                footprint=footprint,
                height_mm=height_mm,
                cylinders=default_cylinders(footprint),
            )
        )
    return specimens


def specimen_map(specimens: list[Specimen]) -> dict[str, tuple[float, float, float, float]]:
    """Serializable footprint map: the payload the Printing Parameters
    source ships so ``isolateSpecimen`` can split OT images (§5)."""
    return {
        s.specimen_id: (
            s.footprint.x_min,
            s.footprint.y_min,
            s.footprint.x_max,
            s.footprint.y_max,
        )
        for s in specimens
    }
