"""Build-chamber geometry and mm ↔ pixel conversions.

The evaluated machine (EOS M290 class) exposes a 250 x 250 mm process area
imaged by the OT sensor as a square grayscale image (2000 x 2000 px in the
paper, i.e. 8 px/mm). All physical coordinates in this package are in mm,
with the origin at the front-left corner of the plate; +y points toward
the back of the machine (the gas flow runs back -> front, i.e. -y).
"""

from __future__ import annotations

from dataclasses import dataclass

#: process-area edge of the reference machine, mm
PLATE_MM = 250.0
#: OT image edge used in the paper, px
PAPER_IMAGE_PX = 2000


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle in plate coordinates (mm)."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError("rectangle extents are inverted")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        return self.x_min <= x < self.x_max and self.y_min <= y < self.y_max

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap (edges touching: no)."""
        return not (
            other.x_min >= self.x_max
            or other.x_max <= self.x_min
            or other.y_min >= self.y_max
            or other.y_max <= self.y_min
        )

    def to_pixels(self, image_px: int, plate_mm: float = PLATE_MM) -> tuple[int, int, int, int]:
        """Return (row_min, row_max, col_min, col_max) pixel bounds.

        Image rows grow with +y (row 0 is the front of the machine), so a
        pure scale maps mm to px; bounds are clipped to the image.
        """
        scale = image_px / plate_mm
        col_min = max(0, int(self.x_min * scale))
        col_max = min(image_px, int(round(self.x_max * scale)))
        row_min = max(0, int(self.y_min * scale))
        row_max = min(image_px, int(round(self.y_max * scale)))
        return row_min, row_max, col_min, col_max


def mm_to_px(value_mm: float, image_px: int, plate_mm: float = PLATE_MM) -> float:
    """Convert a length in mm to (fractional) pixels."""
    return value_mm * image_px / plate_mm


def px_to_mm(value_px: float, image_px: int, plate_mm: float = PLATE_MM) -> float:
    """Convert a length in pixels to mm."""
    return value_px * plate_mm / image_px
