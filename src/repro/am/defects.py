"""Synthetic defect seeding.

Defects are contiguous 3-D regions where the melt received too little or
too much thermal energy — exactly what the use-case pipeline must find.
Each defect is an ellipsoidal blob anchored inside one specimen, spanning
a few consecutive layers, with an intensity offset applied to the OT
image: *cold* defects (lack of fusion — e.g. spatter shadowing the powder)
lower the emitted light; *hot* defects (overheating/keyholing) raise it.

Seeding is driven by the per-stack scan/gas-flow risk from
:mod:`repro.am.scan`, so defect density varies along the build height the
way the paper's physical argument predicts, and is fully deterministic
given the job seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .scan import StackScan, defect_risk
from .specimen import STACK_HEIGHT_MM, Specimen

COLD = "cold"
HOT = "hot"


@dataclass(frozen=True)
class DefectRegion:
    """One seeded defect blob."""

    defect_id: str
    specimen_id: str
    kind: str  # COLD or HOT
    center_x_mm: float
    center_y_mm: float
    center_z_mm: float
    radius_mm: float  # in-plane radius at the widest layer
    half_depth_mm: float  # extent along the build direction
    intensity_delta: float  # signed offset applied to normalized intensity

    @property
    def first_z(self) -> float:
        return self.center_z_mm - self.half_depth_mm

    @property
    def last_z(self) -> float:
        return self.center_z_mm + self.half_depth_mm

    def radius_at(self, z_mm: float) -> float:
        """In-plane radius of the blob's cross-section at height ``z_mm``.

        Zero outside the blob's vertical extent (ellipsoidal profile).
        """
        if self.half_depth_mm <= 0:
            return self.radius_mm if abs(z_mm - self.center_z_mm) < 1e-9 else 0.0
        rel = (z_mm - self.center_z_mm) / self.half_depth_mm
        if abs(rel) >= 1.0:
            return 0.0
        return self.radius_mm * math.sqrt(1.0 - rel * rel)

    def covers_layer(self, z_mm: float) -> bool:
        return self.radius_at(z_mm) > 0.0


def seed_defects(
    specimens: list[Specimen],
    stack_scans: list[StackScan],
    seed: int,
    base_rate_per_stack: float = 0.55,
    cold_fraction: float = 0.6,
    radius_mm: tuple[float, float] = (0.5, 2.5),
    depth_mm: tuple[float, float] = (0.1, 1.6),
    intensity: tuple[float, float] = (0.18, 0.45),
) -> list[DefectRegion]:
    """Deterministically seed defects for one job.

    For every (specimen, stack) pair the expected defect count is
    ``base_rate_per_stack * defect_risk(stack)``; counts are Poisson,
    positions uniform within the specimen footprint (with a small inset so
    blobs stay inside), and all draws come from one seeded generator.
    """
    rng = np.random.default_rng(seed)
    defects: list[DefectRegion] = []
    counter = 0
    for specimen in specimens:
        fp = specimen.footprint
        for scan in stack_scans:
            expectation = base_rate_per_stack * defect_risk(scan)
            count = int(rng.poisson(expectation))
            for _ in range(count):
                radius = float(rng.uniform(*radius_mm))
                inset = min(radius, min(fp.width, fp.height) / 4)
                x = float(rng.uniform(fp.x_min + inset, fp.x_max - inset))
                y = float(rng.uniform(fp.y_min + inset, fp.y_max - inset))
                z = float(
                    rng.uniform(
                        scan.stack_index * STACK_HEIGHT_MM,
                        (scan.stack_index + 1) * STACK_HEIGHT_MM,
                    )
                )
                kind = COLD if rng.random() < cold_fraction else HOT
                delta = float(rng.uniform(*intensity))
                defects.append(
                    DefectRegion(
                        defect_id=f"D{counter:04d}",
                        specimen_id=specimen.specimen_id,
                        kind=kind,
                        center_x_mm=x,
                        center_y_mm=y,
                        center_z_mm=z,
                        radius_mm=radius,
                        half_depth_mm=float(rng.uniform(*depth_mm)),
                        intensity_delta=-delta if kind == COLD else delta,
                    )
                )
                counter += 1
    return defects


def defects_in_layer(defects: list[DefectRegion], z_mm: float) -> list[DefectRegion]:
    """Subset of defects whose blob intersects the layer at ``z_mm``."""
    return [d for d in defects if d.covers_layer(z_mm)]


@dataclass(frozen=True)
class RecoaterStreak:
    """A recoater-blade defect: a thin under-melted line across the plate.

    A nick in the blade (or a dragged particle) starves a narrow band of
    powder along the recoating direction (+x here), so every specimen the
    band crosses melts cold there. The streak persists over consecutive
    layers until the blade is cleaned — a different defect *type* from the
    local spatter blobs, with a very different spatial signature (§7
    future work: "the type of monitored defect").
    """

    streak_id: str
    y_mm: float  # transverse position of the band
    x_start_mm: float
    x_end_mm: float
    width_mm: float
    first_layer: int
    last_layer: int
    intensity_delta: float  # negative: under-melted

    def __post_init__(self) -> None:
        if self.x_end_mm <= self.x_start_mm:
            raise ValueError("streak x-extent is inverted")
        if self.last_layer < self.first_layer:
            raise ValueError("streak layer span is inverted")
        if self.width_mm <= 0:
            raise ValueError("streak width must be positive")

    def covers_layer(self, layer: int) -> bool:
        return self.first_layer <= layer <= self.last_layer


def seed_recoater_streaks(
    num_layers: int,
    seed: int,
    expected_streaks_per_100_layers: float = 1.0,
    plate_mm: float = 250.0,
    width_mm: tuple[float, float] = (0.3, 0.8),
    duration_layers: tuple[int, int] = (3, 12),
    intensity: tuple[float, float] = (0.12, 0.3),
) -> list[RecoaterStreak]:
    """Deterministically seed recoater streaks over a build's layers."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    count = int(rng.poisson(expected_streaks_per_100_layers * num_layers / 100.0))
    streaks: list[RecoaterStreak] = []
    for index in range(count):
        first = int(rng.integers(0, max(1, num_layers - duration_layers[0])))
        duration = int(rng.integers(duration_layers[0], duration_layers[1] + 1))
        x_start = float(rng.uniform(0.0, plate_mm * 0.3))
        x_end = float(rng.uniform(plate_mm * 0.7, plate_mm))
        streaks.append(
            RecoaterStreak(
                streak_id=f"R{index:03d}",
                y_mm=float(rng.uniform(plate_mm * 0.05, plate_mm * 0.95)),
                x_start_mm=x_start,
                x_end_mm=x_end,
                width_mm=float(rng.uniform(*width_mm)),
                first_layer=first,
                last_layer=min(num_layers - 1, first + duration - 1),
                intensity_delta=-float(rng.uniform(*intensity)),
            )
        )
    return streaks


def streaks_in_layer(streaks: list[RecoaterStreak], layer: int) -> list[RecoaterStreak]:
    """Subset of streaks active at ``layer``."""
    return [s for s in streaks if s.covers_layer(layer)]
