"""Scan strategy and gas-flow interaction model.

Within each 1 mm stack the laser scans at a fixed orientation to the gas
flow; the flow runs from the back to the front of the machine to carry
away smoke and spatter (§5, citing Ladewig et al.). Scanning *with* the
flow lets by-products drift over already-consolidated track; scanning
*against* or *across* it drops spatter onto powder that is yet to be
melted, creating potential defect sites. This module turns a stack's scan
orientation into a scalar defect-risk factor that the defect seeder uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: gas flow direction in plate coordinates: back (+y) -> front (-y)
GAS_FLOW_ANGLE_DEG = 270.0


@dataclass(frozen=True)
class StackScan:
    """Scan configuration of one 1 mm stack of one specimen."""

    stack_index: int
    angle_deg: float  # scan vector orientation, degrees CCW from +x

    @property
    def angle_to_gas_flow_deg(self) -> float:
        """Smallest angle between the scan vector and the gas flow [0, 90].

        Scan tracks are bidirectional, so orientation is modulo 180 and the
        relevant alignment is the acute angle to the flow axis.
        """
        diff = abs((self.angle_deg - GAS_FLOW_ANGLE_DEG) % 180.0)
        return min(diff, 180.0 - diff)


def rotating_schedule(
    num_stacks: int, start_deg: float = 90.0, increment_deg: float = 15.0
) -> list[StackScan]:
    """Per-stack orientations sweeping the angular range.

    The evaluation build sets "the laser to scan at a certain orientation
    angle to the gas flow" per stack; a uniform sweep exposes the full
    range of flow interactions across the build height.
    """
    return [
        StackScan(i, (start_deg + i * increment_deg) % 180.0) for i in range(num_stacks)
    ]


def defect_risk(scan: StackScan) -> float:
    """Relative likelihood of spatter-induced defects for this stack, [0,1].

    Risk peaks when the scan runs parallel to the flow axis (spatter is
    blown along the track onto un-melted powder) and is lowest when the
    scan is perpendicular to it. The specific shape is a smooth cosine
    ramp — adequate for generating spatially structured synthetic defects;
    absolute rates are calibrated by the defect seeder.
    """
    alignment = scan.angle_to_gas_flow_deg  # 0 = parallel to flow, 90 = perpendicular
    return 0.5 * (1.0 + math.cos(math.radians(alignment * 2)))


def scan_texture_phase(scan: StackScan, hatch_mm: float = 0.1) -> tuple[float, float]:
    """Direction vector of the hatch pattern, used to texture OT images."""
    radians = math.radians(scan.angle_deg)
    return math.cos(radians), math.sin(radians)
