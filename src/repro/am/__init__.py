"""Additive manufacturing digital twin (the PBF-LB machine substitute).

Synthesizes everything the paper's testbed provided physically: the
build-plate layout of 12 specimens, the per-stack scan strategy and its
gas-flow interaction, deterministic defect seeding, per-layer OT image
rendering, and a machine simulator with real-time or replay pacing.
"""

from .dataset import BuildDataset, LayerRecord
from .defects import COLD, HOT, DefectRegion, defects_in_layer, seed_defects
from .geometry import PAPER_IMAGE_PX, PLATE_MM, Rect, mm_to_px, px_to_mm
from .job import PrintJob, make_job, make_shaped_job
from .materials import MATERIALS, Material, default_parameters_for, material_for
from .machine import (
    RECOAT_GAP_S,
    BuildOutcome,
    ControlHandle,
    PBFLBMachine,
)
from .ot import OTImageRenderer
from .parameters import LayerParameters, ProcessParameters
from .xct import XCTProfile, scan_cylinder, scan_job
from .shapes import (
    BlockShape,
    ConeShape,
    CrossSection,
    CylinderShape,
    PolygonShape,
    shape_mask_px,
)
from .scan import (
    GAS_FLOW_ANGLE_DEG,
    StackScan,
    defect_risk,
    rotating_schedule,
)
from .scanpath import (
    LaserCalibrationSample,
    LaserCommand,
    MeltPoolOptics,
    ScanTrack,
    ThermalBuild,
    ThermalBuildConfig,
    ThermalLayerRecord,
    ThermalModelParams,
    command_schedule,
    deposit_energy,
    raster_tracks,
    render_meltpool_frame,
    suggest_overheat_threshold,
    synthesize_laser_calibration,
    synthesize_thermal_build,
)
from .specimen import (
    CYLINDERS_PER_SPECIMEN,
    SPECIMEN_HEIGHT_MM,
    SPECIMEN_LENGTH_MM,
    SPECIMEN_WIDTH_MM,
    STACK_HEIGHT_MM,
    Cylinder,
    Specimen,
    specimen_map,
    standard_layout,
)

__all__ = [
    "Rect",
    "PLATE_MM",
    "PAPER_IMAGE_PX",
    "mm_to_px",
    "px_to_mm",
    "Specimen",
    "Cylinder",
    "standard_layout",
    "specimen_map",
    "SPECIMEN_WIDTH_MM",
    "SPECIMEN_LENGTH_MM",
    "SPECIMEN_HEIGHT_MM",
    "STACK_HEIGHT_MM",
    "CYLINDERS_PER_SPECIMEN",
    "StackScan",
    "rotating_schedule",
    "defect_risk",
    "GAS_FLOW_ANGLE_DEG",
    "DefectRegion",
    "seed_defects",
    "defects_in_layer",
    "COLD",
    "HOT",
    "OTImageRenderer",
    "ProcessParameters",
    "LayerParameters",
    "PrintJob",
    "make_job",
    "make_shaped_job",
    "Material",
    "MATERIALS",
    "material_for",
    "default_parameters_for",
    "CrossSection",
    "BlockShape",
    "CylinderShape",
    "ConeShape",
    "PolygonShape",
    "shape_mask_px",
    "XCTProfile",
    "scan_cylinder",
    "scan_job",
    "BuildDataset",
    "LayerRecord",
    "PBFLBMachine",
    "ControlHandle",
    "BuildOutcome",
    "RECOAT_GAP_S",
    "ScanTrack",
    "raster_tracks",
    "LaserCommand",
    "command_schedule",
    "deposit_energy",
    "MeltPoolOptics",
    "render_meltpool_frame",
    "ThermalModelParams",
    "ThermalLayerRecord",
    "ThermalBuildConfig",
    "ThermalBuild",
    "LaserCalibrationSample",
    "synthesize_thermal_build",
    "synthesize_laser_calibration",
    "suggest_overheat_threshold",
]
