"""Print jobs: everything the machine needs to execute one build."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .defects import DefectRegion, RecoaterStreak, seed_defects, seed_recoater_streaks
from .parameters import LayerParameters, ProcessParameters
from .scan import StackScan, rotating_schedule
from .specimen import STACK_HEIGHT_MM, Specimen, specimen_map, standard_layout


@dataclass
class PrintJob:
    """One submitted build: geometry, parameters, and seeded ground truth."""

    job_id: str
    specimens: list[Specimen]
    process: ProcessParameters
    stack_scans: list[StackScan]
    defects: list[DefectRegion]
    streaks: list[RecoaterStreak] = field(default_factory=list)

    @property
    def num_layers(self) -> int:
        height = max(s.height_mm for s in self.specimens)
        return int(round(height / self.process.layer_thickness_mm))

    def z_of_layer(self, layer: int) -> float:
        """Top surface height of ``layer`` (0-based), mm."""
        return layer * self.process.layer_thickness_mm

    def stack_of_layer(self, layer: int) -> StackScan:
        """Scan configuration of the stack containing ``layer``."""
        stack_index = min(
            int(self.z_of_layer(layer) / STACK_HEIGHT_MM), len(self.stack_scans) - 1
        )
        return self.stack_scans[stack_index]

    def layer_parameters(self, layer: int) -> LayerParameters:
        """The Printing Parameters record published for ``layer``."""
        scan = self.stack_of_layer(layer)
        shapes = {s.specimen_id: s.shape for s in self.specimens}
        return LayerParameters(
            layer=layer,
            z_mm=self.z_of_layer(layer),
            stack_index=scan.stack_index,
            scan_angle_deg=scan.angle_deg,
            specimen_map=specimen_map(self.specimens),
            process=self.process,
            specimen_shapes=shapes if any(shapes.values()) else None,
        )


def make_job(
    job_id: str,
    seed: int = 7,
    num_specimens: int = 12,
    process: ProcessParameters | None = None,
    specimen_height_mm: float | None = None,
    defect_rate_per_stack: float = 0.55,
    streak_rate_per_100_layers: float = 0.0,
) -> PrintJob:
    """Build the paper's evaluation job (12 blocks, 23 stacks, rotating scans).

    ``specimen_height_mm`` can shrink the build for quick runs; defects are
    seeded deterministically from ``seed``. ``streak_rate_per_100_layers``
    additionally seeds recoater-blade streaks (off by default — the
    paper's evaluation build has only thermal blob defects).
    """
    process = process or ProcessParameters()
    layout_kwargs = {}
    if specimen_height_mm is not None:
        layout_kwargs["height_mm"] = specimen_height_mm
    specimens = standard_layout(num_specimens=num_specimens, **layout_kwargs)
    num_stacks = specimens[0].num_stacks
    scans = rotating_schedule(num_stacks)
    from .materials import material_for

    # alloy-dependent spatter behaviour scales the base defect rate (§7
    # future work: account for the material used as powder)
    rate = defect_rate_per_stack * material_for(process).defect_susceptibility
    defects = seed_defects(specimens, scans, seed=seed, base_rate_per_stack=rate)
    job = PrintJob(
        job_id=job_id,
        specimens=specimens,
        process=process,
        stack_scans=scans,
        defects=defects,
    )
    if streak_rate_per_100_layers > 0:
        job.streaks = seed_recoater_streaks(
            num_layers=job.num_layers,
            seed=seed,
            expected_streaks_per_100_layers=streak_rate_per_100_layers,
        )
    return job


def make_shaped_job(
    job_id: str,
    seed: int = 7,
    process: ProcessParameters | None = None,
    specimen_height_mm: float | None = None,
    defect_rate_per_stack: float = 0.55,
) -> PrintJob:
    """A mixed-geometry build: blocks, cylinders, cones, and a hex prism.

    Exercises the §7 future-work dimension "the shape of the object being
    printed": positions reuse the standard 12-slot layout, but slots
    alternate between the paper's block and shaped parts whose slices the
    pipeline must mask (cylinder: constant circle; cone: shrinking circle;
    hexagonal prism: polygon slice).
    """
    import dataclasses

    from .shapes import ConeShape, CylinderShape, PolygonShape

    base = make_job(
        job_id,
        seed=seed,
        process=process,
        specimen_height_mm=specimen_height_mm,
        defect_rate_per_stack=defect_rate_per_stack,
    )
    shaped: list[Specimen] = []
    for index, specimen in enumerate(base.specimens):
        fp = specimen.footprint
        cx, cy = fp.center
        radius = min(fp.width, fp.height) / 2 - 1.0
        kind = index % 4
        if kind == 1:
            shape = CylinderShape(cx, cy, radius)
        elif kind == 2:
            shape = ConeShape(cx, cy, radius, specimen.height_mm, tip_fraction=0.25)
        elif kind == 3:
            shape = PolygonShape(
                [
                    (cx + radius * float(np.cos(np.pi / 3 * k)),
                     cy + radius * float(np.sin(np.pi / 3 * k)))
                    for k in range(6)
                ]
            )
        else:
            shape = None  # the paper's full block
        shaped.append(
            dataclasses.replace(specimen, shape=shape, cylinders=()) if shape
            else specimen
        )
    return dataclasses.replace(base, specimens=shaped)
