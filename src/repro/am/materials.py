"""Powder material library.

The paper's future work (§7) names "the material used as powder" as a
dimension the monitoring portfolio must cover: different alloys emit
differently under the same energy input, change the optimal process
window, and shift how much a thermal deviation matters.

Each :class:`Material` carries the properties the OT renderer and the
process model consume:

* ``emissivity_scale`` — relative melt-pool light emission at the
  material's nominal energy density (Ti-6Al-4V = 1.0 reference);
* ``nominal_energy_density`` — center of the healthy process window,
  J/mm^3;
* ``process_window`` — (low, high) energy-density bounds outside of which
  lack-of-fusion / keyhole porosity become likely;
* ``defect_susceptibility`` — multiplier on the spatter-driven defect
  rate (e.g. aluminium's spatter sticks more readily than titanium's).

Values are representative of published PBF-LB parameter studies — they
shape the synthetic data, they are not metallurgical reference data.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import ProcessParameters


@dataclass(frozen=True)
class Material:
    """One printable powder alloy."""

    name: str
    emissivity_scale: float
    nominal_energy_density: float  # J/mm^3
    process_window: tuple[float, float]  # J/mm^3
    defect_susceptibility: float
    density_g_cm3: float
    melting_point_c: float

    def window_position(self, energy_density: float) -> float:
        """Where an energy density sits in the process window.

        0.5 = window center; < 0 or > 1 = outside the window. Used by the
        twin to scale systematic brightness and defect likelihood.
        """
        low, high = self.process_window
        return (energy_density - low) / (high - low)

    def in_window(self, energy_density: float) -> bool:
        """True when ``energy_density`` lies in the healthy window."""
        low, high = self.process_window
        return low <= energy_density <= high


#: reference library; keys match ``ProcessParameters.material``
MATERIALS: dict[str, Material] = {
    material.name: material
    for material in (
        Material(
            name="Ti-6Al-4V",
            emissivity_scale=1.0,
            nominal_energy_density=41.7,
            process_window=(30.0, 60.0),
            defect_susceptibility=1.0,
            density_g_cm3=4.43,
            melting_point_c=1655,
        ),
        Material(
            name="IN718",
            emissivity_scale=0.92,
            nominal_energy_density=55.0,
            process_window=(40.0, 80.0),
            defect_susceptibility=0.85,
            density_g_cm3=8.19,
            melting_point_c=1336,
        ),
        Material(
            name="AlSi10Mg",
            emissivity_scale=0.70,
            nominal_energy_density=38.0,
            process_window=(28.0, 55.0),
            defect_susceptibility=1.4,
            density_g_cm3=2.67,
            melting_point_c=600,
        ),
        Material(
            name="316L",
            emissivity_scale=0.88,
            nominal_energy_density=62.0,
            process_window=(45.0, 90.0),
            defect_susceptibility=0.9,
            density_g_cm3=7.99,
            melting_point_c=1400,
        ),
    )
}


def material_for(process: ProcessParameters) -> Material:
    """The material a job prints with; unknown names fall back to Ti64.

    Falling back (instead of raising) keeps externally-constructed
    parameter sets usable — an unknown alloy renders like the reference
    material, which is the neutral choice for synthetic data.
    """
    return MATERIALS.get(process.material, MATERIALS["Ti-6Al-4V"])


def default_parameters_for(material_name: str) -> ProcessParameters:
    """A parameter set centered in ``material_name``'s process window."""
    material = MATERIALS[material_name]
    # Keep speed/hatch/thickness at machine defaults; set power to land on
    # the material's nominal energy density: P = E * v * h * t.
    base = ProcessParameters(material=material_name)
    power = material.nominal_energy_density * (
        base.scan_speed_mm_s * base.hatch_distance_mm * base.layer_thickness_mm
    )
    return ProcessParameters(
        laser_power_w=round(power, 1),
        scan_speed_mm_s=base.scan_speed_mm_s,
        hatch_distance_mm=base.hatch_distance_mm,
        layer_thickness_mm=base.layer_thickness_mm,
        material=material_name,
    )
