"""Post-build X-ray Computed Tomography of the witness cylinders.

The evaluation build embeds "three small cylinders ... to later measure
the three-dimensional distribution of process defects with X-ray Computed
Tomography" (§5). This module simulates that post-build measurement from
the seeded ground truth: for each witness cylinder, the porosity fraction
per build-height bin is the volume fraction of the cylinder's material
intersected by defect blobs (cold lack-of-fusion defects leave pores; hot
keyhole defects leave spherical porosity — both count).

Its purpose in the reproduction is *closing the validation loop*: the
online pipeline predicts defect locations from OT data during the build,
XCT provides the (simulated) destructive ground truth afterwards, and the
E8 benchmark correlates the two — exactly how such a monitoring system
would be qualified in production.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .defects import DefectRegion
from .job import PrintJob
from .specimen import Cylinder, Specimen


@dataclass(frozen=True)
class XCTProfile:
    """Porosity-vs-height profile of one witness cylinder."""

    specimen_id: str
    cylinder_index: int
    bin_height_mm: float
    porosity: tuple[float, ...]  # volume fraction per z-bin, [0, 1]

    @property
    def num_bins(self) -> int:
        return len(self.porosity)

    @property
    def mean_porosity(self) -> float:
        return float(np.mean(self.porosity)) if self.porosity else 0.0

    def z_of_bin(self, index: int) -> float:
        """Center height of one bin, mm."""
        return (index + 0.5) * self.bin_height_mm


def _disc_overlap_fraction(
    cylinder: Cylinder,
    defect: DefectRegion,
    z_mm: float,
    samples: int = 12,
) -> float:
    """Fraction of the cylinder's cross-section inside the defect at z.

    Monte-Carlo-free estimate on a small polar grid — deterministic and
    cheap, accurate to a few percent, plenty for a synthetic scanner.
    """
    defect_radius = defect.radius_at(z_mm)
    if defect_radius <= 0:
        return 0.0
    radii = (np.arange(samples) + 0.5) / samples * cylinder.radius
    angles = np.linspace(0, 2 * np.pi, samples, endpoint=False)
    grid_r, grid_a = np.meshgrid(radii, angles)
    xs = cylinder.center_x + grid_r * np.cos(grid_a)
    ys = cylinder.center_y + grid_r * np.sin(grid_a)
    inside = (xs - defect.center_x_mm) ** 2 + (
        ys - defect.center_y_mm
    ) ** 2 <= defect_radius**2
    # weight by radius: equal-angle polar cells cover area proportional to r
    weights = grid_r
    return float((inside * weights).sum() / weights.sum())


def scan_cylinder(
    specimen: Specimen,
    cylinder_index: int,
    defects: list[DefectRegion],
    bin_height_mm: float = 1.0,
    porosity_per_defect_overlap: float = 0.35,
) -> XCTProfile:
    """Simulate the XCT porosity profile of one witness cylinder.

    Per z-bin, porosity = (mean defect overlap fraction over the bin's
    sub-layers) x ``porosity_per_defect_overlap`` — a defect region is not
    100% void, only partially porous material.
    """
    cylinder = specimen.cylinders[cylinder_index]
    num_bins = max(1, int(round(specimen.height_mm / bin_height_mm)))
    relevant = [d for d in defects if d.specimen_id == specimen.specimen_id]
    porosity: list[float] = []
    sub_steps = 4
    for bin_index in range(num_bins):
        z_lo = bin_index * bin_height_mm
        overlaps = []
        for step in range(sub_steps):
            z = z_lo + (step + 0.5) / sub_steps * bin_height_mm
            total = 0.0
            for defect in relevant:
                total += _disc_overlap_fraction(cylinder, defect, z)
            overlaps.append(min(1.0, total))
        porosity.append(float(np.mean(overlaps)) * porosity_per_defect_overlap)
    return XCTProfile(
        specimen_id=specimen.specimen_id,
        cylinder_index=cylinder_index,
        bin_height_mm=bin_height_mm,
        porosity=tuple(porosity),
    )


def scan_job(
    job: PrintJob,
    bin_height_mm: float = 1.0,
    max_height_mm: float | None = None,
) -> list[XCTProfile]:
    """XCT-scan every witness cylinder of every specimen of a job.

    ``max_height_mm`` truncates profiles for partially-built jobs (early
    termination or shortened replays).
    """
    profiles: list[XCTProfile] = []
    for specimen in job.specimens:
        for index in range(len(specimen.cylinders)):
            profile = scan_cylinder(specimen, index, job.defects, bin_height_mm)
            if max_height_mm is not None:
                keep = max(1, int(round(max_height_mm / bin_height_mm)))
                profile = XCTProfile(
                    specimen_id=profile.specimen_id,
                    cylinder_index=profile.cylinder_index,
                    bin_height_mm=profile.bin_height_mm,
                    porosity=profile.porosity[:keep],
                )
            profiles.append(profile)
    return profiles
