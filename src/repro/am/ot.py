"""Optical Tomography (OT) image synthesis.

The monitored data in the paper are long-exposure grayscale images, one
per layer, where each pixel's gray value is the integrated melt-pool light
emission at that location (2000 x 2000 px over the 250 x 250 mm plate).

The renderer composes, per layer:

* a dim powder background with shot noise;
* for each specimen cross-section, a melted region whose mean brightness
  scales with the job's energy density, textured with hatch stripes at the
  stack's scan orientation;
* brighter witness-cylinder outlines;
* defect blobs — cold (darker) or hot (brighter) disks with a smooth
  radial profile, from the deterministic defect seeder.

A matching boolean ground-truth mask per layer supports detection-quality
scoring; everything is reproducible from the job seed.
"""

from __future__ import annotations

import numpy as np

from .defects import DefectRegion, RecoaterStreak, defects_in_layer, streaks_in_layer
from .geometry import PLATE_MM
from .parameters import ProcessParameters
from .scan import StackScan
from .specimen import Specimen

#: energy density (J/mm^3) that maps to the nominal melt brightness
NOMINAL_ENERGY_DENSITY = 41.7


class OTImageRenderer:
    """Renders synthetic OT layer images and their ground-truth masks."""

    def __init__(
        self,
        image_px: int = 2000,
        plate_mm: float = PLATE_MM,
        powder_level: float = 0.04,
        melt_level: float = 0.55,
        noise_sigma: float = 0.03,
        texture_amplitude: float = 0.04,
        hatch_period_mm: float = 0.8,
        seed: int = 0,
        drift_per_layer: float = 0.0,
    ) -> None:
        """``drift_per_layer`` models slow process drift (lens fouling,
        powder aging): the melt emission level is scaled by
        ``(1 + drift_per_layer * layer)``, floored at 20% so images stay
        physical. Zero (the default) reproduces a stationary process."""
        if image_px < 8:
            raise ValueError("image_px too small to be meaningful")
        self._px = image_px
        self._plate = plate_mm
        self._scale = image_px / plate_mm
        self._powder = powder_level
        self._melt = melt_level
        self._noise = noise_sigma
        self._texture = texture_amplitude
        self._hatch_mm = hatch_period_mm
        self._seed = seed
        self._drift = drift_per_layer

    @property
    def image_px(self) -> int:
        return self._px

    @property
    def px_per_mm(self) -> float:
        return self._scale

    def _layer_rng(self, layer: int) -> np.random.Generator:
        return np.random.default_rng((self._seed * 1_000_003 + layer) & 0xFFFFFFFF)

    def render(
        self,
        layer: int,
        z_mm: float,
        specimens: list[Specimen],
        scan: StackScan,
        defects: list[DefectRegion],
        process: ProcessParameters | None = None,
        streaks: list[RecoaterStreak] | None = None,
    ) -> np.ndarray:
        """Render the OT image for one layer as a (px, px) uint8 array."""
        rng = self._layer_rng(layer)
        image = np.full((self._px, self._px), self._powder, dtype=np.float32)
        image += rng.normal(0.0, self._noise / 3, size=image.shape).astype(np.float32)

        melt = self._melt
        if process is not None:
            from .materials import material_for

            material = material_for(process)
            melt *= material.emissivity_scale * (
                process.energy_density_j_mm3 / material.nominal_energy_density
            )
        if self._drift:
            melt *= max(0.2, 1.0 + self._drift * layer)

        for specimen in specimens:
            if z_mm >= specimen.height_mm:
                continue
            self._paint_specimen(image, specimen, scan, melt, rng, z_mm)

        for defect in defects_in_layer(defects, z_mm):
            self._paint_defect(image, defect, z_mm)

        for streak in streaks_in_layer(streaks or [], layer):
            self._paint_streak(image, streak)

        np.clip(image, 0.0, 1.0, out=image)
        return (image * 255.0).astype(np.uint8)

    def _paint_streak(self, image: np.ndarray, streak: RecoaterStreak) -> None:
        half_width_px = max(0.5, streak.width_mm * self._scale / 2.0)
        center_row = streak.y_mm * self._scale
        r0 = max(0, int(center_row - half_width_px))
        r1 = min(self._px, int(np.ceil(center_row + half_width_px)))
        c0 = max(0, int(streak.x_start_mm * self._scale))
        c1 = min(self._px, int(round(streak.x_end_mm * self._scale)))
        if r1 <= r0 or c1 <= c0:
            return
        window = image[r0:r1, c0:c1]
        melted = (window > 0.25).astype(np.float32)
        window += streak.intensity_delta * melted

    def _paint_specimen(
        self,
        image: np.ndarray,
        specimen: Specimen,
        scan: StackScan,
        melt: float,
        rng: np.random.Generator,
        z_mm: float,
    ) -> None:
        r0, r1, c0, c1 = specimen.footprint.to_pixels(self._px, self._plate)
        if r1 <= r0 or c1 <= c0:
            return
        rows = np.arange(r0, r1, dtype=np.float32)[:, None]
        cols = np.arange(c0, c1, dtype=np.float32)[None, :]
        region = np.full((r1 - r0, c1 - c0), melt, dtype=np.float32)
        # Hatch texture: stripes perpendicular to the scan vector.
        theta = np.radians(scan.angle_deg)
        period_px = max(2.0, self._hatch_mm * self._scale)
        phase = (cols * np.cos(theta) + rows * np.sin(theta)) * (2 * np.pi / period_px)
        region += self._texture * np.sin(phase).astype(np.float32)
        region += rng.normal(0.0, self._noise, size=region.shape).astype(np.float32)
        # Witness cylinders ring slightly brighter (different contour scan).
        for cylinder in specimen.cylinders:
            cy = cylinder.center_y * self._scale - r0
            cx = cylinder.center_x * self._scale - c0
            radius_px = cylinder.radius * self._scale
            dist_sq = (rows - r0 - cy) ** 2 + (cols - c0 - cx) ** 2
            # Contour scans emit slightly differently; keep the highlight
            # subtle (< the 3-sigma labeling band) so healthy cylinders do
            # not register as thermal anomalies.
            ring = np.abs(np.sqrt(dist_sq) - radius_px) < max(1.0, self._scale * 0.12)
            region[ring] += 0.015
        if specimen.shape is None:
            image[r0:r1, c0:c1] = region
        else:
            # Shaped part: melt only the slice; outside stays powder.
            from .shapes import shape_mask_px

            mask = shape_mask_px(specimen.shape, z_mm, r0, r1, c0, c1, self._scale)
            window = image[r0:r1, c0:c1]
            image[r0:r1, c0:c1] = np.where(mask, region, window)

    def _paint_defect(self, image: np.ndarray, defect: DefectRegion, z_mm: float) -> None:
        radius_mm = defect.radius_at(z_mm)
        if radius_mm <= 0:
            return
        radius_px = radius_mm * self._scale
        cy = defect.center_y_mm * self._scale
        cx = defect.center_x_mm * self._scale
        r0 = max(0, int(cy - radius_px - 1))
        r1 = min(self._px, int(cy + radius_px + 2))
        c0 = max(0, int(cx - radius_px - 1))
        c1 = min(self._px, int(cx + radius_px + 2))
        if r1 <= r0 or c1 <= c0:
            return
        rows = np.arange(r0, r1, dtype=np.float32)[:, None]
        cols = np.arange(c0, c1, dtype=np.float32)[None, :]
        dist_sq = (rows - cy) ** 2 + (cols - cx) ** 2
        profile = 1.0 - dist_sq / (radius_px * radius_px)
        np.clip(profile, 0.0, 1.0, out=profile)
        # Thermal defects live in melted material: gate the delta on the
        # pixel already being melt, so a blob overlapping a shaped part's
        # powder surroundings does not smudge the powder bed.
        window = image[r0:r1, c0:c1]
        melted = (window > 0.25).astype(np.float32)
        window += defect.intensity_delta * profile.astype(np.float32) * melted

    def ground_truth_mask(
        self, z_mm: float, defects: list[DefectRegion]
    ) -> np.ndarray:
        """Boolean (px, px) mask of pixels inside any defect at ``z_mm``.

        Marks the geometric blob extent; for shaped parts a blob may
        overhang powder where no intensity change is painted, so treat
        this as a (slightly conservative) superset of visible defect area.
        """
        mask = np.zeros((self._px, self._px), dtype=bool)
        for defect in defects_in_layer(defects, z_mm):
            radius_px = defect.radius_at(z_mm) * self._scale
            cy = defect.center_y_mm * self._scale
            cx = defect.center_x_mm * self._scale
            r0 = max(0, int(cy - radius_px - 1))
            r1 = min(self._px, int(cy + radius_px + 2))
            c0 = max(0, int(cx - radius_px - 1))
            c1 = min(self._px, int(cx + radius_px + 2))
            if r1 <= r0 or c1 <= c0:
                continue
            rows = np.arange(r0, r1, dtype=np.float32)[:, None]
            cols = np.arange(c0, c1, dtype=np.float32)[None, :]
            dist_sq = (rows - cy) ** 2 + (cols - cx) ** 2
            mask[r0:r1, c0:c1] |= dist_sq <= radius_px * radius_px
        return mask
