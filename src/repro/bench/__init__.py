"""Benchmark harness: workloads, experiment runners, reporting."""

from .config import BenchProfile, active_profile
from .harness import (
    LatencyRun,
    ThroughputRun,
    run_latency_experiment,
    run_throughput_experiment,
)
from .report import (
    BOXPLOT_HEADERS,
    boxplot_row,
    format_table,
    render_ascii_image,
    save_json,
)
from .workload import EvaluationWorkload

__all__ = [
    "BenchProfile",
    "active_profile",
    "EvaluationWorkload",
    "LatencyRun",
    "ThroughputRun",
    "run_latency_experiment",
    "run_throughput_experiment",
    "format_table",
    "boxplot_row",
    "BOXPLOT_HEADERS",
    "save_json",
    "render_ascii_image",
]
