"""Benchmark sizing profiles.

The paper's testbed streams 2000 x 2000 px images from a Xeon-backed Java
stack; a pure-Python reproduction reproduces the *shapes* of the figures
at any image scale. Profiles pick the scale:

* ``ci``    — small images / few layers; the default, finishes in minutes.
* ``full``  — the paper's 2000 px sensor resolution and wider sweeps.

Select with the ``REPRO_BENCH_PROFILE`` environment variable; individual
knobs can be overridden via ``REPRO_BENCH_IMAGE_PX`` / ``REPRO_BENCH_LAYERS``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class BenchProfile:
    """Resolved sizing for one benchmark session."""

    name: str
    image_px: int
    layers: int  # layers replayed per measurement
    repetitions: int  # experiment repetitions (paper: 5)
    qos_seconds: float  # the recoat-gap QoS threshold (paper: 3 s)

    @property
    def px_per_mm(self) -> float:
        return self.image_px / 250.0

    def scale_cell_edge(self, paper_edge_px: int) -> int:
        """Map a paper cell edge (at 2000 px) to this profile's resolution,
        preserving the physical cell size in mm^2."""
        scaled = max(1, round(paper_edge_px * self.image_px / 2000))
        return scaled


_PROFILES = {
    "ci": BenchProfile(name="ci", image_px=500, layers=30, repetitions=3, qos_seconds=3.0),
    "full": BenchProfile(
        name="full", image_px=2000, layers=100, repetitions=5, qos_seconds=3.0
    ),
}


def active_profile() -> BenchProfile:
    """Profile selected by environment (default: ci)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "ci")
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_BENCH_PROFILE {name!r}; choose from {sorted(_PROFILES)}"
        ) from None
    image_px = int(os.environ.get("REPRO_BENCH_IMAGE_PX", profile.image_px))
    layers = int(os.environ.get("REPRO_BENCH_LAYERS", profile.layers))
    return BenchProfile(
        name=profile.name,
        image_px=image_px,
        layers=layers,
        repetitions=profile.repetitions,
        qos_seconds=profile.qos_seconds,
    )
