"""Human-readable tables and machine-readable JSON for bench results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from ..spe.metrics import FiveNumberSummary

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (what the figures' data looks like as rows)."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.rjust(width) for value, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def boxplot_row(label: Any, summary: FiveNumberSummary, scale: float = 1000.0) -> list[Any]:
    """One boxplot as a table row (default scale: seconds -> ms)."""
    stats = summary.as_row(scale)
    return [
        label,
        stats["min"],
        stats["q1"],
        stats["median"],
        stats["q3"],
        stats["max"],
        stats["mean"],
        stats["p95"],
        stats["p99"],
        summary.count,
    ]


BOXPLOT_HEADERS = [
    "param",
    "min_ms",
    "q1_ms",
    "median_ms",
    "q3_ms",
    "max_ms",
    "mean_ms",
    "p95_ms",
    "p99_ms",
    "n",
]


def save_json(name: str, payload: dict[str, Any]) -> Path:
    """Persist a result payload under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def render_ascii_image(image, palette: str = " .:-=+*#%@") -> str:
    """Render a small 2-D array as ASCII art (Figure 4 inspection aid)."""
    import numpy as np

    image = np.asarray(image, dtype=float)
    if image.size == 0:
        return "(empty)"
    low, high = float(image.min()), float(image.max())
    span = (high - low) or 1.0
    normalized = (image - low) / span
    indices = (normalized * (len(palette) - 1)).astype(int)
    return "\n".join("".join(palette[i] for i in row) for row in indices)
