"""Experiment runners regenerating the paper's evaluation.

Latency experiments (Figures 5 and 6) measure "the latency with which
up-to-date results are delivered upon the reception of one OT image" on an
otherwise idle pipeline: a *lockstep* source feeds one image, waits until
the Event Aggregator has reported on every specimen of that layer, then
feeds the next. Per-layer latency is the time from the image's arrival to
the last of its results.

Throughput experiments (Figure 7) replay images "as fast as possible" at a
controlled offered rate and record the sustained cell-processing rate and
the average latency, exposing the saturation knee the paper shows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..am.dataset import LayerRecord
from ..core.api import Strata
from ..core.collectors import OTImageCollector
from ..core.usecase import (
    UseCaseConfig,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from ..spe.metrics import FiveNumberSummary, summarize
from ..spe.sink import Sink
from ..spe.source import RateLimitedSource, Source
from ..spe.tuples import StreamTuple
from .workload import EvaluationWorkload


class _LockstepCoordinator:
    """Blocks the OT source until the previous layer is fully reported."""

    def __init__(self, results_per_layer: int, timeout: float = 60.0) -> None:
        self._expected = results_per_layer
        self._timeout = timeout
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._counts: dict[tuple[str, int], int] = {}

    def result_arrived(self, t: StreamTuple) -> None:
        """Sink callback: count one aggregator result for its layer."""
        key = (t.job, t.layer)
        with self._done:
            self._counts[key] = self._counts.get(key, 0) + 1
            if self._counts[key] >= self._expected:
                self._done.notify_all()

    def wait_for(self, job: str, layer: int) -> None:
        """Block until every specimen of (job, layer) has reported."""
        key = (job, layer)
        deadline = time.monotonic() + self._timeout
        with self._done:
            while self._counts.get(key, 0) < self._expected:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"layer {layer} of {job} produced "
                        f"{self._counts.get(key, 0)}/{self._expected} results "
                        f"within {self._timeout}s"
                    )
                self._done.wait(remaining)


class _LockstepOTSource(Source):
    """OT collector that emits layer N+1 only after layer N is reported."""

    def __init__(
        self,
        records: Iterable[LayerRecord],
        coordinator: _LockstepCoordinator,
        name: str = "ot-lockstep",
    ) -> None:
        super().__init__(name)
        self._records = records
        self._coordinator = coordinator

    def __iter__(self):
        previous: tuple[str, int] | None = None
        for record in self._records:
            if previous is not None:
                self._coordinator.wait_for(*previous)
            yield StreamTuple(
                tau=float(record.layer),
                job=record.job_id,
                layer=record.layer,
                payload={"image": record.image},
                ingest_time=time.monotonic(),
            )
            previous = (record.job_id, record.layer)
        if previous is not None:
            self._coordinator.wait_for(*previous)


class _LockstepSink(Sink):
    """Collecting sink that notifies the coordinator per result."""

    def __init__(self, coordinator: _LockstepCoordinator) -> None:
        super().__init__("expert-lockstep")
        self._coordinator = coordinator
        self.results: list[StreamTuple] = []
        self._lock = threading.Lock()

    def consume(self, t: StreamTuple) -> None:
        with self._lock:
            self.results.append(t)
        self._coordinator.result_arrived(t)


@dataclass
class LatencyRun:
    """Outcome of one lockstep latency measurement."""

    per_layer_latencies: list[float]
    all_latencies: list[float]
    results: int
    cells_evaluated: int
    wall_seconds: float
    config: UseCaseConfig

    @property
    def summary(self) -> FiveNumberSummary:
        return summarize(self.per_layer_latencies)

    def meets_qos(self, qos_seconds: float) -> bool:
        """True when no layer exceeded the QoS latency budget."""
        return max(self.per_layer_latencies) <= qos_seconds


def _prepare(workload: EvaluationWorkload, config: UseCaseConfig, strata: Strata) -> None:
    calibrate_job(
        strata.kv,
        workload.job.job_id,
        workload.reference_images(),
        config.cell_edge_px,
        regions=specimen_regions_px(workload.job.specimens, config.image_px),
    )


def run_latency_experiment(
    workload: EvaluationWorkload,
    config: UseCaseConfig,
    warmup_layers: int = 2,
    engine_mode: str = "threaded",
    optimize: object | None = None,
    obs: object | None = None,
) -> LatencyRun:
    """Lockstep replay of the workload; per-layer latency samples.

    ``optimize`` is forwarded to :meth:`Strata.deploy` (``None``/``False``,
    ``True``, a :class:`~repro.spe.plan.PlanConfig`, or a full
    :class:`~repro.core.deploy.DeployConfig`); ``obs`` to :class:`Strata`
    (the obs-overhead benchmark ablates instrumentation).
    """
    records = workload.records
    strata = Strata(engine_mode=engine_mode, obs=obs)
    coordinator = _LockstepCoordinator(results_per_layer=len(workload.job.specimens))
    sink = _LockstepSink(coordinator)
    ot_source = _LockstepOTSource(iter(records), coordinator)
    pipeline = build_use_case(
        iter(records),
        iter(records),
        config,
        strata=strata,
        sink=sink,
        ot_source=ot_source,
    )
    _prepare(workload, config, strata)
    started = time.monotonic()
    report = strata.deploy(optimize)
    wall = time.monotonic() - started
    per_layer = _per_layer_latency(sink.results, sink.latency.samples())
    # Drop warm-up layers: first images pay one-time costs (threshold
    # loads, allocator warmup) the steady state does not.
    skip = {r.layer for r in records[:warmup_layers]}
    kept = [
        latency
        for (job, layer), latency in per_layer.items()
        if layer not in skip
    ]
    return LatencyRun(
        per_layer_latencies=kept,
        all_latencies=sink.latency.samples(),
        results=report.results_delivered(),
        cells_evaluated=pipeline.cells_evaluated,
        wall_seconds=wall,
        config=config,
    )


def _per_layer_latency(
    results: list[StreamTuple], latencies: list[float]
) -> dict[tuple[str, int], float]:
    """Latency of each layer = latency of its last delivered result."""
    per_layer: dict[tuple[str, int], float] = {}
    for t, latency in zip(results, latencies):
        key = (t.job, t.layer)
        per_layer[key] = max(per_layer.get(key, 0.0), latency)
    return per_layer


@dataclass
class ThroughputRun:
    """Outcome of one offered-rate throughput measurement."""

    offered_images_s: float
    achieved_images_s: float
    cells_per_second: float
    kcells_per_second: float
    mean_latency_s: float
    p99_latency_s: float
    images: int
    cells_evaluated: int
    wall_seconds: float
    config: UseCaseConfig = field(repr=False, default=None)  # type: ignore[arg-type]


def run_throughput_experiment(
    workload: EvaluationWorkload,
    config: UseCaseConfig,
    offered_images_s: float,
    total_images: int,
    optimize: object | None = None,
    obs: object | None = None,
) -> ThroughputRun:
    """Replay ``total_images`` at ``offered_images_s``; measure saturation.

    ``optimize`` is forwarded to :meth:`Strata.deploy` (plan shorthand or
    a full :class:`~repro.core.deploy.DeployConfig`), so the fig7 sweep
    can ablate the plan compiler's passes; ``obs`` to :class:`Strata`, so
    the obs-overhead benchmark can ablate instrumentation.
    """
    strata = Strata(engine_mode="threaded", obs=obs)
    ot_records = list(workload.replay(total_images))
    pp_records = ot_records  # parameters replayed alongside, unpaced
    ot_source = RateLimitedSource(
        OTImageCollector(iter(ot_records)), rate=offered_images_s
    )
    pipeline = build_use_case(
        iter(ot_records),
        iter(pp_records),
        config,
        strata=strata,
        ot_source=ot_source,
    )
    _prepare(workload, config, strata)
    started = time.monotonic()
    report = strata.deploy(optimize)
    wall = time.monotonic() - started
    latencies = report.latency_samples()
    cells = pipeline.cells_evaluated
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    ordered = sorted(latencies)
    p99 = ordered[int(0.99 * (len(ordered) - 1))] if ordered else 0.0
    return ThroughputRun(
        offered_images_s=offered_images_s,
        achieved_images_s=total_images / wall,
        cells_per_second=cells / wall,
        kcells_per_second=cells / wall / 1000.0,
        mean_latency_s=mean_latency,
        p99_latency_s=p99,
        images=total_images,
        cells_evaluated=cells,
        wall_seconds=wall,
        config=config,
    )
