"""Workload generation for the evaluation experiments.

Builds the paper's evaluation job (12 specimens, rotating scan stacks,
seeded defects), renders its layers once, and replays them:

* in build order at a controlled rate (Figures 5/6 pace one image at a
  time; Figure 7 sweeps offered images/s);
* cyclically with rewritten job ids, so throughput runs can stream more
  images than the build has layers without re-rendering.
"""

from __future__ import annotations

from typing import Iterator

from ..am.dataset import BuildDataset, LayerRecord
from ..am.job import PrintJob, make_job
from ..am.ot import OTImageRenderer


class EvaluationWorkload:
    """Cached layer records of the paper's evaluation build."""

    def __init__(
        self,
        image_px: int,
        layers: int,
        seed: int = 7,
        job_id: str = "EOS-M290-J1",
        defect_rate_per_stack: float = 0.55,
    ) -> None:
        self._job = make_job(
            job_id, seed=seed, defect_rate_per_stack=defect_rate_per_stack
        )
        self._renderer = OTImageRenderer(image_px=image_px, seed=seed)
        layers = min(layers, self._job.num_layers)
        dataset = BuildDataset(self._job, self._renderer)
        self._records = [dataset.layer_record(i) for i in range(layers)]
        self._image_px = image_px

    @property
    def job(self) -> PrintJob:
        return self._job

    @property
    def image_px(self) -> int:
        return self._image_px

    @property
    def records(self) -> list[LayerRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def reference_images(self, count: int = 5) -> list:
        """Defect-free layers of a sibling job, for threshold calibration."""
        ref_job = make_job(
            f"{self._job.job_id}-ref", seed=1, defect_rate_per_stack=0.0
        )
        dataset = BuildDataset(ref_job, self._renderer)
        return [dataset.layer_record(i).image for i in range(count)]

    def replay(self, total: int) -> Iterator[LayerRecord]:
        """Cycle the cached records up to ``total`` images.

        Repetitions continue the layer numbering (layer = rep * base +
        index) so event time stays monotonic — reusing the original layer
        indices would rewind the event clock and make the fuse join evict
        partners that are still needed. Semantically this replays the
        build as one long historic stream, the Figure 7 scenario.
        """
        base = len(self._records)
        if base == 0:
            return
        for i in range(total):
            rep, index = divmod(i, base)
            record = self._records[index]
            if rep == 0:
                yield record
            else:
                yield LayerRecord(
                    job_id=record.job_id,
                    layer=rep * base + record.layer,
                    z_mm=rep * base * 0.04 + record.z_mm,
                    image=record.image,
                    parameters=record.parameters,
                    truth_mask=record.truth_mask,
                )
