"""Keyed-state shard arithmetic: merge N shard states, split into M.

The elastic controller drains a replica group's ``name::i`` shards and
redistributes their state across a new replica count. Operators own the
semantics of their state (``Operator.reshard_state``); the helpers here
cover the common shape — a mapping keyed by the routing key — and are what
the built-in operators build their implementations from.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

Route = Callable[[Hashable], int]


def merge_keyed(shards: list[Mapping[Hashable, Any] | None]) -> dict[Hashable, Any]:
    """Union per-key mappings drained from disjoint shards.

    Shards of a hash-routed group hold disjoint key ranges by
    construction, so a duplicate key means the caller is merging shards
    that never belonged to one group — fail loudly instead of silently
    keeping one side.
    """
    merged: dict[Hashable, Any] = {}
    for shard in shards:
        if not shard:
            continue
        for key, value in shard.items():
            if key in merged:
                raise ValueError(
                    f"key {key!r} present in more than one shard; shards of "
                    f"one keyed group must hold disjoint key ranges"
                )
            merged[key] = value
    return merged


def split_keyed(
    merged: Mapping[Hashable, Any], shards: int, route: Route
) -> list[dict[Hashable, Any]]:
    """Partition a merged keyed mapping across ``shards`` new replicas."""
    if shards < 1:
        raise ValueError("cannot split state across fewer than one shard")
    out: list[dict[Hashable, Any]] = [{} for _ in range(shards)]
    for key, value in merged.items():
        index = route(key)
        if not 0 <= index < shards:
            raise ValueError(
                f"route({key!r}) returned shard {index}, outside 0..{shards - 1}"
            )
        out[index][key] = value
    return out


def split_scalar(total: float | int, shards: int) -> list[float | int]:
    """Place an additive counter's total in shard 0, zero elsewhere.

    Idempotent under merge/split cycles: summing the result always gives
    the original total back, regardless of how many rescales happened.
    """
    if shards < 1:
        raise ValueError("cannot split state across fewer than one shard")
    zero = type(total)(0)
    return [total] + [zero] * (shards - 1)
