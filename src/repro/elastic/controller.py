"""The elastic controller: QoS-driven runtime rescaling of replica groups.

The controller watches the same signals an operator reads off the
``strata-repro top`` table — boundary-queue fill, per-replica busy
fraction, watermark lag, QoS watchdog violations — and, when its policy
asks for a different replica count, rescales a keyed-replicated group
*while the query runs*:

1. **drain** — inject a :class:`~repro.spe.barrier.RescaleBarrier` into
   the group's boundary stream; it aligns through router, clone chains,
   and merge exactly like a checkpoint barrier, so when the merge absorbs
   it every in-flight tuple of the group has been fully processed;
2. **snapshot** — each node retires at alignment and snapshots its
   drained state into the barrier (fused chains snapshot per constituent,
   under the ``member::i`` shard names);
3. **re-shard** — per member, the N shard states are merged and split
   across the new replica count along the routing key
   (``Operator.reshard_state``);
4. **splice** — a fresh router/clones/merge group is built from the
   group's :class:`~repro.spe.plan.ReplicaGroupMeta` recipe, re-fused,
   connected to the same boundary and output streams, and handed to the
   live :class:`~repro.spe.scheduler.ThreadedScheduler`; the checkpoint
   coordinator and observability context are re-bound first so in-flight
   checkpoint epochs keep committing across the rescale.

Between rescales the controller optionally retunes edge batching on the
group's executors (multiplicative increase under backlog, decrease when
idle). Every decision is recorded as a structured event and exported
through the metrics registry (``elastic_*`` series).
"""

from __future__ import annotations

import itertools
import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..spe.barrier import RESCALE_EPOCH_BASE, RescaleBarrier
from ..spe.errors import PlanError, SPEError
from ..spe.operators.router import hash_route
from ..spe.plan import PlanConfig, ReplicaGroupMeta, build_replicated_group, fuse_linear_chains
from ..spe.query import Node
from ..spe.scheduler import NodeExecutor, ThreadedScheduler
from ..spe.stream import Stream
from .config import ElasticConfig
from .policy import GroupSignals, HysteresisPolicy, ScalePolicy

logger = logging.getLogger("repro.elastic")


class ElasticError(SPEError):
    """Raised when the elastic runtime cannot operate on a deployment."""


@dataclass
class ElasticGroup:
    """One rescalable keyed-replicated operator group, live."""

    name: str
    meta: ReplicaGroupMeta
    router_node: Node
    merge_node: Node
    nodes: list[Node]
    boundary: Stream
    parallelism: int
    batch_size: int = 1
    last_rescale: float = field(default_factory=time.monotonic)
    # signal bookkeeping (previous-tick totals for delta computation)
    prev_busy_s: float = 0.0

    @property
    def node_ids(self) -> set[int]:
        return {id(n) for n in self.nodes}


def discover_groups(nodes: list[Node]) -> list[ElasticGroup]:
    """Find every rescalable replica group in a compiled node list.

    A group is announced by its router node's ``rescale_meta`` recipe; the
    member set is recovered by walking the streams from the router to the
    group's merge node (clone chains may be fused, so names are not enough).
    """
    consumer_of = {id(s): n for n in nodes for s in n.inputs}
    by_name = {n.name: n for n in nodes}
    groups: list[ElasticGroup] = []
    for node in nodes:
        meta = getattr(node, "rescale_meta", None)
        if meta is None:
            continue
        merge = by_name.get(meta.merge_name)
        if merge is None or not node.inputs:
            continue
        members: list[Node] = [node]
        seen = {id(node), id(merge)}
        frontier = [consumer_of.get(id(s)) for s in node.outputs]
        while frontier:
            nxt = frontier.pop()
            if nxt is None or id(nxt) in seen:
                continue
            seen.add(id(nxt))
            members.append(nxt)
            frontier.extend(consumer_of.get(id(s)) for s in nxt.outputs)
        members.append(merge)
        groups.append(
            ElasticGroup(
                name=meta.members[0],
                meta=meta,
                router_node=node,
                merge_node=merge,
                nodes=members,
                boundary=node.inputs[0],
                parallelism=node.router.num_shards,
            )
        )
    return groups


class ElasticController:
    """Rescales keyed-replicated groups of a live threaded deployment."""

    def __init__(
        self,
        scheduler: ThreadedScheduler,
        nodes: list[Node],
        config: ElasticConfig,
        plan: PlanConfig | None = None,
        obs: Any | None = None,
        checkpointer: Any | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._nodes = nodes  # the engine's live list; spliced in place
        self._config = config
        self._plan = plan
        self._obs = obs
        self._checkpointer = checkpointer
        self._policy: ScalePolicy = (
            config.policy if config.policy is not None else HysteresisPolicy()
        )
        # live clamp for policy targets; starts at the config bounds but can
        # be moved at runtime (set_bounds) by an external budget owner —
        # this is how the fleet scheduler lends and reclaims replicas
        self._min_parallelism = config.min_parallelism
        self._max_parallelism = config.max_parallelism
        self.groups = discover_groups(nodes)
        if not self.groups:
            raise PlanError(
                "elastic deployment found no keyed-replicated operator group "
                "to rescale; mark at least one keyed stage replicable (or "
                "declare parallelism) before enabling ElasticConfig"
            )
        base_batch = plan.edge_batch_size if plan is not None else 1
        for group in self.groups:
            group.batch_size = base_batch
        self.events: deque[dict[str, Any]] = deque(maxlen=256)
        self._rescales_up = 0
        self._rescales_down = 0
        self._last_rescale_s = 0.0
        self._epoch_counter = itertools.count()
        self._prev_qos_violations = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        if obs is not None and hasattr(obs, "registry"):
            obs.registry.register_collector("elastic", self._collect_metrics)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise ElasticError("elastic controller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="elastic-controller", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the control loop; waits for an in-flight rescale to finish."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def bounds(self) -> tuple[int, int]:
        """The live (min, max) parallelism clamp applied to policy targets."""
        with self._lock:
            return (self._min_parallelism, self._max_parallelism)

    def set_bounds(self, min_parallelism: int, max_parallelism: int) -> None:
        """Move the parallelism clamp at runtime (fleet bound lending).

        The policy keeps making its own QoS-driven decisions; this only
        changes the range those decisions are clamped into, taking effect
        at the next :meth:`tick`. A shrink does not force an immediate
        rescale — the controller drains down on its own tick cadence,
        which is what keeps lending cheap (no barrier unless the clamp
        actually binds).
        """
        min_parallelism = int(min_parallelism)
        max_parallelism = int(max_parallelism)
        if min_parallelism < 1:
            raise ElasticError("min_parallelism must be >= 1")
        if max_parallelism < min_parallelism:
            raise ElasticError(
                f"max_parallelism ({max_parallelism}) must be >= "
                f"min_parallelism ({min_parallelism})"
            )
        with self._lock:
            if (min_parallelism, max_parallelism) == (
                self._min_parallelism, self._max_parallelism
            ):
                return
            self._min_parallelism = min_parallelism
            self._max_parallelism = max_parallelism
        self.events.append(
            {
                "kind": "bounds",
                "min_parallelism": min_parallelism,
                "max_parallelism": max_parallelism,
                "wall_time": time.time(),
            }
        )

    def summary(self) -> dict[str, Any]:
        """Decision history and final shape, for run reports and the CLI."""
        return {
            "groups": {g.name: g.parallelism for g in self.groups},
            "rescales_up": self._rescales_up,
            "rescales_down": self._rescales_down,
            "last_rescale_seconds": self._last_rescale_s,
            "events": list(self.events),
        }

    # -- control loop -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self._config.tick_s):
            if self._scheduler.stopping or not self._scheduler.alive():
                return
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive: keep monitoring
                logger.exception("elastic tick failed")

    def tick(self) -> None:
        """One sampling + decision round (public for deterministic tests)."""
        qos_delta = self._qos_violation_delta()
        executors = self._scheduler.executors
        for group in self.groups:
            signals = self._signals(group, executors, qos_delta)
            target = self._policy.decide(group.name, signals, group.parallelism)
            with self._lock:
                low, high = self._min_parallelism, self._max_parallelism
            target = max(low, min(high, target))
            if (
                target != group.parallelism
                and time.monotonic() - group.last_rescale >= self._config.cooldown_s
            ):
                self.rescale(group, target, signals=signals)
            elif self._config.adaptive_batching:
                self._adapt_batching(group, signals, executors)

    def _qos_violation_delta(self) -> int:
        watchdog = getattr(self._obs, "watchdog", None)
        if watchdog is None:
            return 0
        total = watchdog.violations
        delta = total - self._prev_qos_violations
        self._prev_qos_violations = total
        return max(0, delta)

    def _group_executors(
        self, group: ElasticGroup, executors: list[NodeExecutor]
    ) -> list[NodeExecutor]:
        ids = group.node_ids
        return [ex for ex in executors if id(ex.node) in ids and not ex.retired]

    def _signals(
        self,
        group: ElasticGroup,
        executors: list[NodeExecutor],
        qos_delta: int,
    ) -> GroupSignals:
        fill = len(group.boundary) / max(1, group.boundary.capacity)
        group_exec = self._group_executors(group, executors)
        busy_total = sum(ex.stats.processing_seconds for ex in group_exec)
        busy_delta = max(0.0, busy_total - group.prev_busy_s)
        group.prev_busy_s = busy_total
        busy_fraction = busy_delta / (self._config.tick_s * max(1, group.parallelism))
        source_taus = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "source" and not math.isnan(ex.stats.last_tau)
        ]
        sink_taus = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "sink" and not math.isnan(ex.stats.last_tau)
        ]
        lag = 0.0
        if source_taus and sink_taus:
            lag = max(0.0, max(source_taus) - min(sink_taus))
        return GroupSignals(
            queue_fill=fill,
            busy_fraction=busy_fraction,
            watermark_lag_s=lag,
            qos_violation_delta=qos_delta,
            parallelism=group.parallelism,
        )

    # -- adaptive batching --------------------------------------------------

    def _adapt_batching(
        self,
        group: ElasticGroup,
        signals: GroupSignals,
        executors: list[NodeExecutor],
    ) -> None:
        """Multiplicative-increase / multiplicative-decrease batch tuning.

        Backlog on the boundary means queue synchronization is worth
        amortizing harder; an idle group pays batch linger for nothing.
        """
        current = group.batch_size
        if signals.queue_fill >= 0.5:
            target = min(self._config.batch_max, max(2, current * 2))
        elif signals.queue_fill <= 0.05 and signals.busy_fraction <= 0.2:
            target = max(self._config.batch_min, current // 2)
        else:
            return
        if target == current:
            return
        group.batch_size = target
        for ex in self._group_executors(group, executors):
            if ex.node.kind != "source":
                ex.set_batching(target)
        self._record_event(
            "batch", group, {"batch_size": target, "queue_fill": signals.queue_fill}
        )

    # -- rescale protocol ---------------------------------------------------

    def rescale(
        self,
        group: ElasticGroup,
        target: int,
        signals: GroupSignals | None = None,
    ) -> bool:
        """Drain, re-shard, and resplice ``group`` at ``target`` replicas.

        Returns False when the rescale was abandoned because the group
        finished first (end-of-stream beat the barrier to the router) or
        the scheduler began shutting down.
        """
        if target < 1:
            raise ElasticError("target parallelism must be >= 1")
        if target == group.parallelism:
            return False
        started = time.monotonic()
        old_n = group.parallelism
        executors = self._scheduler.executors
        group_exec = [
            ex for ex in executors if id(ex.node) in group.node_ids
        ]
        scope = frozenset(n.name for n in group.nodes)
        epoch = RESCALE_EPOCH_BASE + next(self._epoch_counter)
        barrier = RescaleBarrier(epoch, scope, absorb_at=group.meta.merge_name)
        boundary = group.boundary
        # Inject one barrier copy per boundary producer, so the router's
        # alignment count matches the stream's producer arithmetic.
        for _ in range(boundary.num_producers):
            while not boundary.put(barrier, timeout=0.2):
                if self._drain_aborted(group_exec):
                    self._record_event("abort", group, {"phase": "inject"})
                    return False
        # Wait for the merge to absorb the barrier. No timeout-abort here:
        # once the router consumed the barrier the group is retiring, and
        # walking away would leave the dataflow headless. The only exits
        # are absorption, end-of-stream winning the race, or shutdown.
        while not barrier.wait_absorbed(timeout=0.2):
            if self._drain_aborted(group_exec):
                self._record_event("abort", group, {"phase": "drain"})
                return False
        snapshots = barrier.snapshots
        new_nodes, clone_ops = build_replicated_group(
            group.meta, target,
            inputs=[boundary], outputs=list(group.merge_node.outputs),
        )
        route = lambda key: hash_route(key, target)  # noqa: E731
        for j, member in enumerate(group.meta.members):
            states = [snapshots.get(f"{member}::{i}") for i in range(old_n)]
            prototype = group.meta.factories[j]()
            new_states = prototype.reshard_state(states, target, route)
            for i, state in enumerate(new_states):
                if state is not None:
                    clone_ops[f"{member}::{i}"].restore_state(state)
        if self._plan is not None and self._plan.fusion:
            new_nodes = fuse_linear_chains(new_nodes, vectorize=self._plan.vectorize)
        with self._lock:
            self._splice_node_list(group.nodes, new_nodes)
            if self._checkpointer is not None and hasattr(self._checkpointer, "rebind"):
                # Before the scheduler sees the new names: in-flight epochs
                # must expect acks from the replacement nodes, not the
                # retired ones, or those epochs never commit.
                self._checkpointer.rebind(self._nodes)
            if self._obs is not None and hasattr(self._obs, "rebind"):
                self._obs.rebind(self._nodes, retired=group_exec)
            self._scheduler.splice(new_nodes)
            group.nodes = new_nodes
            group.router_node = new_nodes[0]
            group.merge_node = new_nodes[-1]
            group.parallelism = target
            group.prev_busy_s = 0.0
            group.last_rescale = time.monotonic()
            if target > old_n:
                self._rescales_up += 1
            else:
                self._rescales_down += 1
            self._last_rescale_s = time.monotonic() - started
        if self._config.adaptive_batching and group.batch_size > 1:
            for ex in self._scheduler.executors:
                if id(ex.node) in group.node_ids and ex.node.kind != "source":
                    ex.set_batching(group.batch_size)
        self._record_event(
            "rescale",
            group,
            {
                "from": old_n,
                "to": target,
                "epoch": epoch,
                "duration_s": round(self._last_rescale_s, 6),
                "signals": None if signals is None else vars(signals),
            },
        )
        logger.info(
            "rescaled group %s: %d -> %d replicas in %.3fs",
            group.name, old_n, target, self._last_rescale_s,
        )
        return True

    def _drain_aborted(self, group_exec: list[NodeExecutor]) -> bool:
        """True when the drain can never complete (EOS won, or shutdown)."""
        if self._scheduler.stopping or not self._scheduler.alive():
            return True
        return any(ex.finalized for ex in group_exec)

    def _splice_node_list(self, old: list[Node], new: list[Node]) -> None:
        ids = {id(n) for n in old}
        positions = [i for i, n in enumerate(self._nodes) if id(n) in ids]
        insert_at = positions[0] if positions else len(self._nodes)
        kept_before = [
            n for n in self._nodes[:insert_at] if id(n) not in ids
        ]
        kept_after = [
            n for n in self._nodes[insert_at:] if id(n) not in ids
        ]
        self._nodes[:] = kept_before + new + kept_after

    # -- observability ------------------------------------------------------

    def _record_event(
        self, kind: str, group: ElasticGroup, detail: dict[str, Any]
    ) -> None:
        event = {
            "kind": kind,
            "group": group.name,
            "parallelism": group.parallelism,
            "wall_time": time.time(),
            **detail,
        }
        self.events.append(event)

    def _collect_metrics(self):
        from ..obs.registry import Sample

        samples: list[Sample] = []
        with self._lock:
            for group in self.groups:
                labels = (("group", group.name),)
                samples.append(
                    Sample("elastic_parallelism", labels, float(group.parallelism))
                )
                samples.append(
                    Sample("elastic_batch_size", labels, float(group.batch_size))
                )
            samples.append(
                Sample(
                    "elastic_rescales_total", (("direction", "up"),),
                    float(self._rescales_up), "counter",
                )
            )
            samples.append(
                Sample(
                    "elastic_rescales_total", (("direction", "down"),),
                    float(self._rescales_down), "counter",
                )
            )
            samples.append(
                Sample(
                    "elastic_last_rescale_seconds", (), float(self._last_rescale_s)
                )
            )
        return samples
