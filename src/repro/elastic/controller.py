"""The elastic controller: QoS-driven runtime adaptation of a live plan.

The controller watches the same signals an operator reads off the
``strata-repro top`` table — boundary-queue fill, per-replica busy
fraction, watermark lag, QoS watchdog violations, columnar block fill —
assembles them into one :class:`~repro.elastic.actions.WorkloadView` per
tick, and asks its :class:`~repro.elastic.actions.AdaptationPolicy` for a
sequence of typed actions. It can apply four plan mutations *while the
query runs*:

* **Rescale** a keyed-replicated group to a new replica count (the
  original elastic capability);
* **Unfuse** a fused linear chain into per-operator nodes, regaining
  pipeline parallelism when one thread becomes the bottleneck;
* **Fuse** an idle unfused chain back into a single node;
* **SetChainMode** — flip a fused chain between scalar and vectorized
  (columnar) execution from observed block fill ratios;
* **Migrate** is delegated to the distributed coordinator via a
  placement hook (moving a stage between forked workers is a process
  operation, not a thread-level splice).

Every mutation reuses the same drain/splice protocol:

1. **drain** — inject a :class:`~repro.spe.barrier.RescaleBarrier` scoped
   to the target nodes into their boundary stream; it aligns like a
   checkpoint barrier, so when the absorb node consumes it every
   in-flight tuple ahead of it has been fully processed;
2. **retire** — each scope node retires at alignment (rescale targets
   also snapshot their drained state into the barrier for re-sharding);
3. **rebuild** — replacement nodes are built: a replica group from its
   :class:`~repro.spe.plan.ReplicaGroupMeta` recipe with re-sharded
   state, a chain by re-wrapping the *same drained operator instances*
   in the new shape (state never leaves the process, so divergence
   stays 0 by construction);
4. **splice** — the checkpoint coordinator and observability context are
   re-bound, then the new nodes are handed to the live
   :class:`~repro.spe.scheduler.ThreadedScheduler`.

Between mutations the controller optionally retunes edge batching on
group executors. Every decision is recorded as a structured event and
exported through the metrics registry (``elastic_*`` /
``elastic_replan_*`` series).
"""

from __future__ import annotations

import itertools
import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..spe.barrier import RESCALE_EPOCH_BASE, RescaleBarrier
from ..spe.errors import PlanError, SPEError
from ..spe.operators.router import hash_route
from ..spe.plan import (
    FusedOperator,
    PlanConfig,
    ReplicaGroupMeta,
    VectorizedFusedOperator,
    _FusedPart,
    build_replicated_group,
    fuse_linear_chains,
)
from ..spe.query import Node
from ..spe.scheduler import NodeExecutor, ThreadedScheduler
from ..spe.stream import Stream
from .actions import (
    AdaptationAction,
    AdaptationPolicy,
    ChainSignals,
    Fuse,
    Migrate,
    NoOp,
    Rescale,
    ScalePolicyAdapter,
    SetChainMode,
    Unfuse,
    WorkloadView,
    is_legacy_scale_policy,
)
from .config import ElasticConfig
from .policy import GroupSignals, HysteresisPolicy
from .replan import AdaptiveChain, CostModelPolicy, discover_chains

logger = logging.getLogger("repro.elastic")


class ElasticError(SPEError):
    """Raised when the elastic runtime cannot operate on a deployment."""


@dataclass
class ElasticGroup:
    """One rescalable keyed-replicated operator group, live."""

    name: str
    meta: ReplicaGroupMeta
    router_node: Node
    merge_node: Node
    nodes: list[Node]
    boundary: Stream
    parallelism: int
    batch_size: int = 1
    last_rescale: float = field(default_factory=time.monotonic)
    # signal bookkeeping (previous-tick totals for delta computation)
    prev_busy_s: float = 0.0

    @property
    def node_ids(self) -> set[int]:
        return {id(n) for n in self.nodes}


def discover_groups(nodes: list[Node]) -> list[ElasticGroup]:
    """Find every rescalable replica group in a compiled node list.

    A group is announced by its router node's ``rescale_meta`` recipe; the
    member set is recovered by walking the streams from the router to the
    group's merge node (clone chains may be fused, so names are not enough).
    """
    consumer_of = {id(s): n for n in nodes for s in n.inputs}
    by_name = {n.name: n for n in nodes}
    groups: list[ElasticGroup] = []
    for node in nodes:
        meta = getattr(node, "rescale_meta", None)
        if meta is None:
            continue
        merge = by_name.get(meta.merge_name)
        if merge is None or not node.inputs:
            continue
        members: list[Node] = [node]
        seen = {id(node), id(merge)}
        frontier = [consumer_of.get(id(s)) for s in node.outputs]
        while frontier:
            nxt = frontier.pop()
            if nxt is None or id(nxt) in seen:
                continue
            seen.add(id(nxt))
            members.append(nxt)
            frontier.extend(consumer_of.get(id(s)) for s in nxt.outputs)
        members.append(merge)
        groups.append(
            ElasticGroup(
                name=meta.members[0],
                meta=meta,
                router_node=node,
                merge_node=merge,
                nodes=members,
                boundary=node.inputs[0],
                parallelism=node.router.num_shards,
            )
        )
    return groups


class ElasticController:
    """Adapts a live threaded deployment: replica counts and plan shape."""

    def __init__(
        self,
        scheduler: ThreadedScheduler,
        nodes: list[Node],
        config: ElasticConfig,
        plan: PlanConfig | None = None,
        obs: Any | None = None,
        checkpointer: Any | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._nodes = nodes  # the engine's live list; spliced in place
        self._config = config
        self._plan = plan
        self._obs = obs
        self._checkpointer = checkpointer
        self._replan = config.replan  # ReplanConfig | None (pre-resolved)
        self._policy = self._resolve_policy(config.policy)
        # live clamp for policy targets; starts at the config bounds but can
        # be moved at runtime (set_bounds) by an external budget owner —
        # this is how the fleet scheduler lends and reclaims replicas
        self._min_parallelism = config.min_parallelism
        self._max_parallelism = config.max_parallelism
        self.groups = discover_groups(nodes)
        group_node_ids = {id(n) for g in self.groups for n in g.nodes}
        self.chains: list[AdaptiveChain] = (
            discover_chains(nodes, group_node_ids)
            if self._replan is not None
            else []
        )
        if not self.groups and not self.chains:
            raise PlanError(
                "elastic deployment found no keyed-replicated operator group "
                "to rescale (and, with replan enabled, no adaptable fused "
                "chain); mark at least one keyed stage replicable (or "
                "declare parallelism) before enabling ElasticConfig"
            )
        base_batch = plan.edge_batch_size if plan is not None else 1
        for group in self.groups:
            group.batch_size = base_batch
        self.events: deque[dict[str, Any]] = deque(maxlen=256)
        self._rescales_up = 0
        self._rescales_down = 0
        self._last_rescale_s = 0.0
        self._action_counts: dict[str, int] = {}
        self._last_action_s = 0.0
        self._epoch_counter = itertools.count()
        self._prev_qos_violations = 0
        self._last_migration = 0.0
        # distributed placement hooks, wired by the coordinator: a loads
        # snapshot feeding WorkloadView.workers and a migrator callable
        # that actually moves a stage between forked workers
        self._worker_loads: Callable[[], dict[str, dict[str, Any]]] | None = None
        self._migrator: Callable[[str, str], bool] | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        if obs is not None and hasattr(obs, "registry"):
            obs.registry.register_collector("elastic", self._collect_metrics)

    def _resolve_policy(self, policy: Any) -> AdaptationPolicy:
        """Normalize ``config.policy`` into an AdaptationPolicy.

        ``None`` picks the default for the deployment shape: the full
        cost model when replanning is on, otherwise the classic
        hysteresis policy behind a silent shim. A user-supplied legacy
        :class:`ScalePolicy` goes through the same shim but *with* the
        one-time :class:`DeprecationWarning`.
        """
        if policy is None:
            if self._replan is not None:
                return CostModelPolicy(self._replan)
            return ScalePolicyAdapter(HysteresisPolicy(), warn=False)
        if is_legacy_scale_policy(policy):
            return ScalePolicyAdapter(policy)
        return policy

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise ElasticError("elastic controller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="elastic-controller", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the control loop; waits for an in-flight mutation to finish."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def bounds(self) -> tuple[int, int]:
        """The live (min, max) parallelism clamp applied to policy targets."""
        with self._lock:
            return (self._min_parallelism, self._max_parallelism)

    def set_bounds(self, min_parallelism: int, max_parallelism: int) -> None:
        """Move the parallelism clamp at runtime (fleet bound lending).

        The policy keeps making its own QoS-driven decisions; this only
        changes the range those decisions are clamped into. A shrink does
        not force an immediate rescale — the controller drains down on
        its own tick cadence, which is what keeps lending cheap (no
        barrier unless the clamp actually binds). A decision already in
        flight is re-clamped against the *live* bounds both when the
        rescale starts and again after the drain, so a concurrent shrink
        can never leave the group above the lent maximum.
        """
        min_parallelism = int(min_parallelism)
        max_parallelism = int(max_parallelism)
        if min_parallelism < 1:
            raise ElasticError("min_parallelism must be >= 1")
        if max_parallelism < min_parallelism:
            raise ElasticError(
                f"max_parallelism ({max_parallelism}) must be >= "
                f"min_parallelism ({min_parallelism})"
            )
        with self._lock:
            if (min_parallelism, max_parallelism) == (
                self._min_parallelism, self._max_parallelism
            ):
                return
            self._min_parallelism = min_parallelism
            self._max_parallelism = max_parallelism
        self.events.append(
            {
                "kind": "bounds",
                "min_parallelism": min_parallelism,
                "max_parallelism": max_parallelism,
                "wall_time": time.time(),
            }
        )

    def set_placement_hooks(
        self,
        worker_loads: Callable[[], dict[str, dict[str, Any]]] | None = None,
        migrator: Callable[[str, str], bool] | None = None,
    ) -> None:
        """Wire the distributed coordinator's placement surface.

        ``worker_loads`` feeds ``WorkloadView.workers`` each tick;
        ``migrator(stage, to_worker)`` performs a :class:`Migrate` action
        and returns whether the stage actually moved.
        """
        self._worker_loads = worker_loads
        self._migrator = migrator

    def summary(self) -> dict[str, Any]:
        """Decision history and final shape, for run reports and the CLI."""
        return {
            "groups": {g.name: g.parallelism for g in self.groups},
            "chains": {
                c.name: {
                    "mode": c.mode,
                    "fused": c.fused,
                    "last_action": c.last_action,
                }
                for c in self.chains
            },
            "rescales_up": self._rescales_up,
            "rescales_down": self._rescales_down,
            "last_rescale_seconds": self._last_rescale_s,
            "actions": dict(self._action_counts),
            "events": list(self.events),
        }

    # -- control loop -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self._config.tick_s):
            if self._scheduler.stopping or not self._scheduler.alive():
                return
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive: keep monitoring
                logger.exception("elastic tick failed")

    def workload_view(
        self, executors: list[NodeExecutor] | None = None
    ) -> WorkloadView:
        """One decision round's signals (public for tests and policies)."""
        if executors is None:
            executors = self._scheduler.executors
        qos_delta = self._qos_violation_delta()
        groups = {
            g.name: self._signals(g, executors, qos_delta) for g in self.groups
        }
        chains = {
            c.name: self._chain_signals(c, executors) for c in self.chains
        }
        workers: dict[str, dict[str, Any]] = {}
        if self._worker_loads is not None:
            try:
                workers = dict(self._worker_loads())
            except Exception:  # pragma: no cover - heartbeat races
                logger.exception("worker load snapshot failed")
        with self._lock:
            bounds = (self._min_parallelism, self._max_parallelism)
        return WorkloadView(
            groups=groups,
            chains=chains,
            workers=workers,
            bounds=bounds,
            tick_s=self._config.tick_s,
        )

    def tick(self) -> None:
        """One sampling + decision round (public for deterministic tests)."""
        executors = self._scheduler.executors
        view = self.workload_view(executors)
        actions = list(self._policy.decide(view) or ())
        rescaled: set[str] = set()
        budget = (
            self._replan.max_actions_per_tick if self._replan is not None else 0
        )
        now = time.monotonic()
        for action in actions:
            if isinstance(action, NoOp):
                continue
            if isinstance(action, Rescale):
                group = self._group_named(action.group)
                if group is None:
                    continue
                with self._lock:
                    low, high = self._min_parallelism, self._max_parallelism
                target = max(low, min(high, action.target))
                if (
                    target != group.parallelism
                    and now - group.last_rescale >= self._config.cooldown_s
                ):
                    if self.rescale(
                        group, target, signals=view.groups.get(group.name)
                    ):
                        rescaled.add(group.name)
                continue
            if self._replan is None or budget <= 0:
                continue
            if isinstance(action, Migrate):
                if now - self._last_migration >= self._replan.cooldown_s:
                    if self.apply_action(action):
                        budget -= 1
                continue
            chain = self._chain_named(getattr(action, "chain", ""))
            if chain is None:
                continue
            if now - chain.last_adapt < self._replan.cooldown_s:
                continue
            if self.apply_action(action):
                budget -= 1
        # Bounds are authoritative even when the policy sees no load: a
        # group left outside the live clamp (fleet lending moved it) is
        # pulled back in on the normal cooldown cadence.
        with self._lock:
            low, high = self._min_parallelism, self._max_parallelism
        for group in self.groups:
            if group.name in rescaled:
                continue
            clamped = max(low, min(high, group.parallelism))
            if (
                clamped != group.parallelism
                and now - group.last_rescale >= self._config.cooldown_s
            ):
                if self.rescale(group, clamped, signals=view.groups.get(group.name)):
                    rescaled.add(group.name)
        if self._config.adaptive_batching:
            for group in self.groups:
                if group.name not in rescaled and group.name in view.groups:
                    self._adapt_batching(group, view.groups[group.name], executors)

    def _group_named(self, name: str) -> ElasticGroup | None:
        for group in self.groups:
            if group.name == name:
                return group
        return None

    def _chain_named(self, name: str) -> AdaptiveChain | None:
        for chain in self.chains:
            if chain.name == name:
                return chain
        return None

    def _qos_violation_delta(self) -> int:
        watchdog = getattr(self._obs, "watchdog", None)
        if watchdog is None:
            return 0
        total = watchdog.violations
        delta = total - self._prev_qos_violations
        self._prev_qos_violations = total
        return max(0, delta)

    def _group_executors(
        self, group: ElasticGroup, executors: list[NodeExecutor]
    ) -> list[NodeExecutor]:
        ids = group.node_ids
        return [ex for ex in executors if id(ex.node) in ids and not ex.retired]

    def _signals(
        self,
        group: ElasticGroup,
        executors: list[NodeExecutor],
        qos_delta: int,
    ) -> GroupSignals:
        fill = len(group.boundary) / max(1, group.boundary.capacity)
        group_exec = self._group_executors(group, executors)
        busy_total = sum(ex.stats.processing_seconds for ex in group_exec)
        busy_delta = max(0.0, busy_total - group.prev_busy_s)
        group.prev_busy_s = busy_total
        busy_fraction = busy_delta / (self._config.tick_s * max(1, group.parallelism))
        source_taus = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "source" and not math.isnan(ex.stats.last_tau)
        ]
        sink_taus = [
            ex.stats.last_tau
            for ex in executors
            if ex.node.kind == "sink" and not math.isnan(ex.stats.last_tau)
        ]
        lag = 0.0
        if source_taus and sink_taus:
            lag = max(0.0, max(source_taus) - min(sink_taus))
        return GroupSignals(
            queue_fill=fill,
            busy_fraction=busy_fraction,
            watermark_lag_s=lag,
            qos_violation_delta=qos_delta,
            parallelism=group.parallelism,
        )

    def _chain_signals(
        self, chain: AdaptiveChain, executors: list[NodeExecutor]
    ) -> ChainSignals:
        ids = chain.node_ids
        chain_exec = [
            ex for ex in executors if id(ex.node) in ids and not ex.retired
        ]
        busy_total = sum(ex.stats.processing_seconds for ex in chain_exec)
        busy_delta = max(0.0, busy_total - chain.prev_busy_s)
        chain.prev_busy_s = busy_total
        busy_fraction = busy_delta / (
            self._config.tick_s * max(1, len(chain.nodes))
        )
        fill = len(chain.boundary) / max(1, chain.boundary.capacity)
        blocks_delta = 0
        block_fill = 0.0
        if chain.fused:
            op = chain.nodes[0].operator
            if isinstance(op, VectorizedFusedOperator):
                blocks_delta = max(0, op.blocks_in - chain.prev_blocks)
                rows_delta = max(0, op.block_rows_in - chain.prev_block_rows)
                chain.prev_blocks = op.blocks_in
                chain.prev_block_rows = op.block_rows_in
                if blocks_delta:
                    batch = (
                        self._plan.edge_batch_size if self._plan is not None else 1
                    )
                    block_fill = min(
                        1.0, rows_delta / blocks_delta / max(1, batch)
                    )
        return ChainSignals(
            name=chain.name,
            mode=chain.mode,
            members=chain.members,
            fused=chain.fused,
            queue_fill=fill,
            busy_fraction=busy_fraction,
            block_fill=block_fill,
            blocks_delta=blocks_delta,
            block_capable=chain.block_capable,
        )

    # -- adaptive batching --------------------------------------------------

    def _adapt_batching(
        self,
        group: ElasticGroup,
        signals: GroupSignals,
        executors: list[NodeExecutor],
    ) -> None:
        """Multiplicative-increase / multiplicative-decrease batch tuning.

        Backlog on the boundary means queue synchronization is worth
        amortizing harder; an idle group pays batch linger for nothing.
        """
        current = group.batch_size
        if signals.queue_fill >= 0.5:
            target = min(self._config.batch_max, max(2, current * 2))
        elif signals.queue_fill <= 0.05 and signals.busy_fraction <= 0.2:
            target = max(self._config.batch_min, current // 2)
        else:
            return
        if target == current:
            return
        group.batch_size = target
        for ex in self._group_executors(group, executors):
            if ex.node.kind != "source":
                ex.set_batching(target)
        self._record_event(
            "batch", group, {"batch_size": target, "queue_fill": signals.queue_fill}
        )

    # -- action engine ------------------------------------------------------

    def apply_action(self, action: AdaptationAction) -> bool:
        """Apply one typed action to the running plan (public for tests).

        Returns True when the plan actually changed. Cooldowns and bounds
        policy live in :meth:`tick`; direct callers get the raw mutation
        (targets are still clamped to the live bounds — see
        :meth:`rescale`).
        """
        if isinstance(action, NoOp):
            return False
        if isinstance(action, Rescale):
            group = self._group_named(action.group)
            if group is None:
                return False
            return self.rescale(group, action.target)
        if isinstance(action, Migrate):
            return self._migrate(action)
        chain = self._chain_named(getattr(action, "chain", ""))
        if chain is None:
            return False
        if isinstance(action, Unfuse):
            return self._unfuse_chain(chain)
        if isinstance(action, Fuse):
            return self._fuse_chain(chain)
        if isinstance(action, SetChainMode):
            return self._set_chain_mode(chain, action.mode)
        return False

    def _migrate(self, action: Migrate) -> bool:
        """Delegate a Migrate action to the coordinator's placement hook."""
        if self._migrator is None:
            self.events.append(
                {
                    "kind": "migrate_skipped",
                    "stage": action.stage,
                    "to_worker": action.to_worker,
                    "reason": "no distributed coordinator attached",
                    "wall_time": time.time(),
                }
            )
            return False
        started = time.monotonic()
        moved = bool(self._migrator(action.stage, action.to_worker))
        if moved:
            self._last_migration = time.monotonic()
            with self._lock:
                self._count_action("migrate", time.monotonic() - started)
            self.events.append(
                {
                    "kind": "migrate",
                    "stage": action.stage,
                    "to_worker": action.to_worker,
                    "duration_s": round(time.monotonic() - started, 6),
                    "wall_time": time.time(),
                }
            )
        return moved

    def _count_action(self, kind: str, duration_s: float) -> None:
        """Update action counters (caller holds ``self._lock``)."""
        self._action_counts[kind] = self._action_counts.get(kind, 0) + 1
        self._last_action_s = duration_s

    # -- chain mutation protocol --------------------------------------------

    def _drain_chain(
        self,
        chain: AdaptiveChain,
        scope: frozenset[str],
        absorb_at: str,
        chain_exec: list[NodeExecutor],
    ) -> bool:
        """Scoped drain of a chain via the rescale-barrier protocol.

        One barrier copy per boundary producer is injected at the chain
        head; every scope node retires at alignment and the ``absorb_at``
        node (the chain's last live node) absorbs the barrier, which is
        the fully-drained signal. Intermediate edges of an unfused chain
        are drained by FIFO order: the barrier only reaches node *i+1*
        after node *i* forwarded everything ahead of it.
        """
        epoch = RESCALE_EPOCH_BASE + next(self._epoch_counter)
        barrier = RescaleBarrier(epoch, scope, absorb_at=absorb_at)
        boundary = chain.boundary
        for _ in range(boundary.num_producers):
            while not boundary.put(barrier, timeout=0.2):
                if self._drain_aborted(chain_exec):
                    self._record_chain_event(
                        "abort", chain, {"phase": "inject"}
                    )
                    return False
        while not barrier.wait_absorbed(timeout=0.2):
            if self._drain_aborted(chain_exec):
                self._record_chain_event("abort", chain, {"phase": "drain"})
                return False
        return True

    def _splice_chain(
        self,
        chain: AdaptiveChain,
        new_nodes: list[Node],
        retired_exec: list[NodeExecutor],
    ) -> None:
        """Swap a chain's nodes in the live dataflow (rescale ordering)."""
        with self._lock:
            self._splice_node_list(chain.nodes, new_nodes)
            if self._checkpointer is not None and hasattr(self._checkpointer, "rebind"):
                # Before the scheduler sees the new shape: in-flight epochs
                # must expect acks from the replacement nodes. Chain
                # manifests are keyed by member names in every shape, so
                # the expected names do not change — only the node objects.
                self._checkpointer.rebind(self._nodes)
            if self._obs is not None and hasattr(self._obs, "rebind"):
                self._obs.rebind(self._nodes, retired=retired_exec)
            self._scheduler.splice(new_nodes)
            chain.nodes = new_nodes
            chain.reset_counters()
            chain.last_adapt = time.monotonic()

    def _chain_executors(self, chain: AdaptiveChain) -> list[NodeExecutor]:
        ids = chain.node_ids
        return [ex for ex in self._scheduler.executors if id(ex.node) in ids]

    def _unfuse_chain(self, chain: AdaptiveChain) -> bool:
        """Break a fused chain into one node (and thread) per constituent."""
        if not chain.fused:
            return False
        started = time.monotonic()
        node = chain.nodes[0]
        operator = node.operator
        chain_exec = self._chain_executors(chain)
        if not self._drain_chain(
            chain, frozenset({node.name}), node.name, chain_exec
        ):
            return False
        # Rebuild from the *live* drained operator instances: state never
        # leaves the process, so nothing is lost or duplicated.
        new_nodes: list[Node] = []
        prev: Node | None = None
        for part in operator.parts:
            fresh = Node(
                part.name, "operator", operator=part.operator,
                base_name=part.base_name,
            )
            if prev is None:
                fresh.inputs = list(node.inputs)
            else:
                stream = Stream(
                    f"{prev.name}->{part.name}", chain.boundary.capacity
                )
                prev.outputs.append(stream)
                fresh.inputs.append(stream)
            new_nodes.append(fresh)
            prev = fresh
        tail = new_nodes[-1]
        tail.outputs = list(node.outputs)
        tail.router = node.router
        self._splice_chain(chain, new_nodes, chain_exec)
        with self._lock:
            chain.fused = False
            chain.mode = "unfused"
            chain.last_action = "unfuse"
            self._count_action("unfuse", time.monotonic() - started)
        self._record_chain_event(
            "unfuse",
            chain,
            {
                "members": list(chain.members),
                "duration_s": round(time.monotonic() - started, 6),
            },
        )
        logger.info(
            "unfused chain %s into %d nodes in %.3fs",
            chain.name, len(new_nodes), time.monotonic() - started,
        )
        return True

    def _fuse_chain(self, chain: AdaptiveChain) -> bool:
        """Collapse a previously unfused chain back into one fused node."""
        if chain.fused:
            return False
        started = time.monotonic()
        nodes = chain.nodes
        chain_exec = self._chain_executors(chain)
        scope = frozenset(n.name for n in nodes)
        if not self._drain_chain(chain, scope, nodes[-1].name, chain_exec):
            return False
        parts = [
            _FusedPart(n.name, n.base_name, n.operator) for n in nodes
        ]
        vectorize = self._plan is not None and self._plan.vectorize
        capable = any(
            bool(getattr(n.operator, "supports_block", False)) for n in nodes
        )
        operator: FusedOperator
        if vectorize and capable:
            operator = VectorizedFusedOperator(chain.name, parts)
        else:
            operator = FusedOperator(chain.name, parts)
        fused = Node(
            chain.name, "operator", operator=operator, router=nodes[-1].router
        )
        fused.mode_reason = "replan: re-fused at runtime"
        fused.inputs = list(nodes[0].inputs)
        fused.outputs = list(nodes[-1].outputs)
        self._splice_chain(chain, [fused], chain_exec)
        with self._lock:
            chain.fused = True
            chain.mode = operator.execution_mode
            chain.last_action = "fuse"
            self._count_action("fuse", time.monotonic() - started)
        self._record_chain_event(
            "fuse",
            chain,
            {
                "mode": chain.mode,
                "duration_s": round(time.monotonic() - started, 6),
            },
        )
        logger.info(
            "re-fused chain %s (%s) in %.3fs",
            chain.name, chain.mode, time.monotonic() - started,
        )
        return True

    def _set_chain_mode(self, chain: AdaptiveChain, mode: str) -> bool:
        """Flip a fused chain between scalar and vectorized execution."""
        if mode not in ("scalar", "vectorized"):
            raise ElasticError(
                f"chain mode must be 'scalar' or 'vectorized', got {mode!r}"
            )
        if not chain.fused or chain.mode == mode:
            return False
        if mode == "vectorized" and not chain.block_capable:
            self._record_chain_event(
                "mode_skipped", chain,
                {"mode": mode, "reason": "no member provides a block variant"},
            )
            return False
        started = time.monotonic()
        node = chain.nodes[0]
        chain_exec = self._chain_executors(chain)
        if not self._drain_chain(
            chain, frozenset({node.name}), node.name, chain_exec
        ):
            return False
        parts = node.operator.parts
        operator: FusedOperator
        if mode == "vectorized":
            operator = VectorizedFusedOperator(chain.name, parts)
        else:
            operator = FusedOperator(chain.name, parts)
        fresh = Node(
            chain.name, "operator", operator=operator, router=node.router
        )
        fresh.mode_reason = f"replan: flipped to {mode} at runtime"
        fresh.inputs = list(node.inputs)
        fresh.outputs = list(node.outputs)
        self._splice_chain(chain, [fresh], chain_exec)
        with self._lock:
            chain.mode = mode
            chain.last_action = f"mode={mode}"
            self._count_action("set_chain_mode", time.monotonic() - started)
        self._record_chain_event(
            "set_chain_mode",
            chain,
            {"mode": mode, "duration_s": round(time.monotonic() - started, 6)},
        )
        logger.info(
            "flipped chain %s to %s in %.3fs",
            chain.name, mode, time.monotonic() - started,
        )
        return True

    # -- rescale protocol ---------------------------------------------------

    def rescale(
        self,
        group: ElasticGroup,
        target: int,
        signals: GroupSignals | None = None,
    ) -> bool:
        """Drain, re-shard, and resplice ``group`` at ``target`` replicas.

        ``target`` is clamped to the live bounds at entry *and* re-read
        after the drain, so a concurrent :meth:`set_bounds` shrink can
        never leave the group above the lent maximum. Returns False when
        the rescale was abandoned because the group finished first
        (end-of-stream beat the barrier to the router), the scheduler
        began shutting down, or clamping made it a no-op.
        """
        if target < 1:
            raise ElasticError("target parallelism must be >= 1")
        with self._lock:
            low, high = self._min_parallelism, self._max_parallelism
        target = max(low, min(high, target))
        if target == group.parallelism:
            return False
        started = time.monotonic()
        old_n = group.parallelism
        executors = self._scheduler.executors
        group_exec = [
            ex for ex in executors if id(ex.node) in group.node_ids
        ]
        scope = frozenset(n.name for n in group.nodes)
        epoch = RESCALE_EPOCH_BASE + next(self._epoch_counter)
        barrier = RescaleBarrier(epoch, scope, absorb_at=group.meta.merge_name)
        boundary = group.boundary
        # Inject one barrier copy per boundary producer, so the router's
        # alignment count matches the stream's producer arithmetic.
        for _ in range(boundary.num_producers):
            while not boundary.put(barrier, timeout=0.2):
                if self._drain_aborted(group_exec):
                    self._record_event("abort", group, {"phase": "inject"})
                    return False
        # Wait for the merge to absorb the barrier. No timeout-abort here:
        # once the router consumed the barrier the group is retiring, and
        # walking away would leave the dataflow headless. The only exits
        # are absorption, end-of-stream winning the race, or shutdown.
        while not barrier.wait_absorbed(timeout=0.2):
            if self._drain_aborted(group_exec):
                self._record_event("abort", group, {"phase": "drain"})
                return False
        # The drain may have raced a set_bounds shrink; the group is
        # already retired, so rebuild at the freshly clamped target (old_n
        # if the clamp collapsed the change — still a correct rebuild).
        with self._lock:
            low, high = self._min_parallelism, self._max_parallelism
        target = max(low, min(high, target))
        snapshots = barrier.snapshots
        new_nodes, clone_ops = build_replicated_group(
            group.meta, target,
            inputs=[boundary], outputs=list(group.merge_node.outputs),
        )
        route = lambda key: hash_route(key, target)  # noqa: E731
        for j, member in enumerate(group.meta.members):
            states = [snapshots.get(f"{member}::{i}") for i in range(old_n)]
            prototype = group.meta.factories[j]()
            new_states = prototype.reshard_state(states, target, route)
            for i, state in enumerate(new_states):
                if state is not None:
                    clone_ops[f"{member}::{i}"].restore_state(state)
        if self._plan is not None and self._plan.fusion:
            new_nodes = fuse_linear_chains(new_nodes, vectorize=self._plan.vectorize)
        with self._lock:
            self._splice_node_list(group.nodes, new_nodes)
            if self._checkpointer is not None and hasattr(self._checkpointer, "rebind"):
                # Before the scheduler sees the new names: in-flight epochs
                # must expect acks from the replacement nodes, not the
                # retired ones, or those epochs never commit.
                self._checkpointer.rebind(self._nodes)
            if self._obs is not None and hasattr(self._obs, "rebind"):
                self._obs.rebind(self._nodes, retired=group_exec)
            self._scheduler.splice(new_nodes)
            group.nodes = new_nodes
            group.router_node = new_nodes[0]
            group.merge_node = new_nodes[-1]
            group.parallelism = target
            group.prev_busy_s = 0.0
            group.last_rescale = time.monotonic()
            if target > old_n:
                self._rescales_up += 1
            elif target < old_n:
                self._rescales_down += 1
            self._last_rescale_s = time.monotonic() - started
            self._count_action("rescale", self._last_rescale_s)
        if self._config.adaptive_batching and group.batch_size > 1:
            for ex in self._scheduler.executors:
                if id(ex.node) in group.node_ids and ex.node.kind != "source":
                    ex.set_batching(group.batch_size)
        self._record_event(
            "rescale",
            group,
            {
                "from": old_n,
                "to": target,
                "epoch": epoch,
                "duration_s": round(self._last_rescale_s, 6),
                "signals": None if signals is None else vars(signals),
            },
        )
        logger.info(
            "rescaled group %s: %d -> %d replicas in %.3fs",
            group.name, old_n, target, self._last_rescale_s,
        )
        return target != old_n

    def _drain_aborted(self, group_exec: list[NodeExecutor]) -> bool:
        """True when the drain can never complete (EOS won, or shutdown)."""
        if self._scheduler.stopping or not self._scheduler.alive():
            return True
        return any(ex.finalized for ex in group_exec)

    def _splice_node_list(self, old: list[Node], new: list[Node]) -> None:
        ids = {id(n) for n in old}
        positions = [i for i, n in enumerate(self._nodes) if id(n) in ids]
        insert_at = positions[0] if positions else len(self._nodes)
        kept_before = [
            n for n in self._nodes[:insert_at] if id(n) not in ids
        ]
        kept_after = [
            n for n in self._nodes[insert_at:] if id(n) not in ids
        ]
        self._nodes[:] = kept_before + new + kept_after

    # -- observability ------------------------------------------------------

    def _record_event(
        self, kind: str, group: ElasticGroup, detail: dict[str, Any]
    ) -> None:
        event = {
            "kind": kind,
            "group": group.name,
            "parallelism": group.parallelism,
            "wall_time": time.time(),
            **detail,
        }
        self.events.append(event)

    def _record_chain_event(
        self, kind: str, chain: AdaptiveChain, detail: dict[str, Any]
    ) -> None:
        event = {
            "kind": kind,
            "chain": chain.name,
            "wall_time": time.time(),
            **detail,
        }
        self.events.append(event)

    def _collect_metrics(self):
        from ..obs.registry import Sample

        samples: list[Sample] = []
        with self._lock:
            for group in self.groups:
                labels = (("group", group.name),)
                samples.append(
                    Sample("elastic_parallelism", labels, float(group.parallelism))
                )
                samples.append(
                    Sample("elastic_batch_size", labels, float(group.batch_size))
                )
            samples.append(
                Sample(
                    "elastic_rescales_total", (("direction", "up"),),
                    float(self._rescales_up), "counter",
                )
            )
            samples.append(
                Sample(
                    "elastic_rescales_total", (("direction", "down"),),
                    float(self._rescales_down), "counter",
                )
            )
            samples.append(
                Sample(
                    "elastic_last_rescale_seconds", (), float(self._last_rescale_s)
                )
            )
            for chain in self.chains:
                samples.append(
                    Sample(
                        "elastic_chain_mode",
                        (("chain", chain.name), ("mode", chain.mode)),
                        1.0,
                    )
                )
                if chain.last_action:
                    for node in chain.nodes:
                        samples.append(
                            Sample(
                                "elastic_last_adaptation",
                                (
                                    ("operator", node.name),
                                    ("action", chain.last_action),
                                ),
                                float(chain.last_adapt),
                            )
                        )
            for kind, count in sorted(self._action_counts.items()):
                samples.append(
                    Sample(
                        "elastic_replan_actions_total",
                        (("action", kind),),
                        float(count),
                        "counter",
                    )
                )
            samples.append(
                Sample(
                    "elastic_replan_last_action_seconds",
                    (),
                    float(self._last_action_s),
                )
            )
        return samples
