"""The typed adaptation-action algebra consumed by the elastic controller.

The original elastic API spoke only one word: ``ScalePolicy.decide(group,
signals, current) -> int`` — a replica count. Runtime re-planning needs a
richer vocabulary (Strider, arXiv 1705.05688: switch the *logical plan*
from workload statistics), so policies now return a sequence of typed
:data:`AdaptationAction` values:

* :class:`Rescale`       — change a keyed replica group's parallelism;
* :class:`Unfuse`        — break a fused linear chain into per-operator
                           nodes (pipeline parallelism across threads);
* :class:`Fuse`          — re-fuse a previously unfused chain;
* :class:`SetChainMode`  — flip a fused chain between scalar and
                           vectorized (columnar) execution;
* :class:`Migrate`       — move a pipeline stage to another dist worker;
* :class:`NoOp`          — explicitly decide nothing (with a reason).

:class:`AdaptationPolicy` is the new protocol: one ``decide(view)`` over a
:class:`WorkloadView` snapshot of every group's and chain's signals.
Legacy :class:`~repro.elastic.policy.ScalePolicy` objects keep working
through :class:`ScalePolicyAdapter`, which emits only :class:`Rescale`
actions and a one-time :class:`DeprecationWarning`.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, Sequence, Union, runtime_checkable

from .policy import GroupSignals, ScalePolicy


@dataclass(frozen=True)
class Rescale:
    """Change ``group``'s replica count to ``target`` (pre-clamping)."""

    group: str
    target: int
    kind = "rescale"

    def describe(self) -> str:
        return f"rescale {self.group} -> x{self.target}"


@dataclass(frozen=True)
class Fuse:
    """Collapse the (currently unfused) chain back into one fused node."""

    chain: str
    kind = "fuse"

    def describe(self) -> str:
        return f"fuse {self.chain}"


@dataclass(frozen=True)
class Unfuse:
    """Break the fused chain into one node (and thread) per constituent."""

    chain: str
    kind = "unfuse"

    def describe(self) -> str:
        return f"unfuse {self.chain}"


@dataclass(frozen=True)
class SetChainMode:
    """Flip a fused chain's execution mode (``scalar``/``vectorized``)."""

    chain: str
    mode: str
    kind = "set_chain_mode"

    def __post_init__(self) -> None:
        if self.mode not in ("scalar", "vectorized"):
            raise ValueError(
                f"chain mode must be 'scalar' or 'vectorized', got {self.mode!r}"
            )

    def describe(self) -> str:
        return f"{self.mode} {self.chain}"


@dataclass(frozen=True)
class Migrate:
    """Move pipeline stage ``stage`` onto dist worker ``to_worker``."""

    stage: str
    to_worker: str
    kind = "migrate"

    def describe(self) -> str:
        return f"migrate {self.stage} -> {self.to_worker}"


@dataclass(frozen=True)
class NoOp:
    """An explicit decision to change nothing this tick."""

    reason: str = ""
    kind = "noop"

    def describe(self) -> str:
        return f"noop({self.reason})" if self.reason else "noop"


#: The closed set of decisions an AdaptationPolicy may return.
AdaptationAction = Union[Rescale, Fuse, Unfuse, SetChainMode, Migrate, NoOp]


@dataclass(frozen=True)
class ChainSignals:
    """One tick's worth of load evidence for one adaptable linear chain.

    ``mode``          ``"vectorized"``/``"scalar"`` for a fused chain,
                      ``"unfused"`` after an :class:`Unfuse`;
    ``members``       the constituent operators' original node names;
    ``queue_fill``    the chain head's input-queue depth / capacity;
    ``busy_fraction`` mean fraction of the tick the chain's node(s) spent
                      processing;
    ``block_fill``    mean ColumnarBlock fill since the last tick, as a
                      fraction of the plan's edge batch size (vectorized
                      chains only — 0.0 elsewhere);
    ``blocks_delta``  columnar blocks formed since the last tick;
    ``block_capable`` at least one member offers a block kernel, so
                      ``SetChainMode("vectorized")`` is applicable.
    """

    name: str
    mode: str
    members: tuple[str, ...]
    fused: bool
    queue_fill: float = 0.0
    busy_fraction: float = 0.0
    block_fill: float = 0.0
    blocks_delta: int = 0
    block_capable: bool = False


@dataclass(frozen=True)
class WorkloadView:
    """Everything a policy may look at for one decision round.

    ``groups``  per-replica-group :class:`GroupSignals`;
    ``chains``  per-adaptable-chain :class:`ChainSignals`;
    ``workers`` per-dist-worker load summaries (busy fraction and stage
                names), present only under a distributed coordinator;
    ``bounds``  the live (min, max) parallelism clamp;
    ``tick_s``  the sampling period the deltas were measured over.
    """

    groups: Mapping[str, GroupSignals] = field(default_factory=dict)
    chains: Mapping[str, ChainSignals] = field(default_factory=dict)
    workers: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    bounds: tuple[int, int] = (1, 4)
    tick_s: float = 0.25


@runtime_checkable
class AdaptationPolicy(Protocol):
    """Pluggable decision logic over the full workload view."""

    def decide(self, view: WorkloadView) -> Sequence[AdaptationAction]:
        """The actions to apply this tick (may be empty)."""
        ...


def is_legacy_scale_policy(policy: Any) -> bool:
    """True when ``policy.decide`` has the old 3-argument ScalePolicy shape.

    ``AdaptationPolicy.decide`` takes one positional argument (the view);
    the legacy contract took three (group, signals, current). Signature
    arity is the only reliable discriminator — both protocols name their
    method ``decide``, so ``isinstance`` against the runtime-checkable
    protocols cannot tell them apart.
    """
    decide = getattr(policy, "decide", None)
    if decide is None or not callable(decide):
        return False
    try:
        signature = inspect.signature(decide)
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False
    positional = [
        p
        for p in signature.parameters.values()
        if p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        and p.name != "self"
    ]
    return len(positional) >= 3


class ScalePolicyAdapter:
    """Bridge a legacy :class:`ScalePolicy` into the action protocol.

    Emits one :class:`Rescale` per group whose legacy target differs from
    its current parallelism — exactly the decisions the old controller
    acted on — and nothing else, so a legacy policy deploys unchanged
    apart from the :class:`DeprecationWarning` raised here.
    """

    def __init__(self, policy: ScalePolicy, warn: bool = True) -> None:
        self._policy = policy
        if warn:
            warnings.warn(
                f"{type(policy).__name__} implements the legacy "
                "ScalePolicy.decide(group, signals, current) -> int contract; "
                "implement AdaptationPolicy.decide(view) -> "
                "Sequence[AdaptationAction] to control re-planning too",
                DeprecationWarning,
                stacklevel=3,
            )

    @property
    def wrapped(self) -> ScalePolicy:
        """The legacy policy this adapter drives."""
        return self._policy

    def decide(self, view: WorkloadView) -> list[AdaptationAction]:
        actions: list[AdaptationAction] = []
        for name, signals in view.groups.items():
            target = self._policy.decide(name, signals, signals.parallelism)
            if target != signals.parallelism:
                actions.append(Rescale(group=name, target=target))
        return actions
