"""Configuration for the elastic runtime controller."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .replan import ReplanConfig


@dataclass(frozen=True)
class ElasticConfig:
    """Knobs for :class:`~repro.elastic.controller.ElasticController`.

    ``min_parallelism``/``max_parallelism`` bound the replica count of
    every keyed-replicated group; ``initial_parallelism`` (default: the
    minimum) is where a deployment starts. ``tick_s`` is the signal
    sampling period, ``cooldown_s`` the minimum spacing between rescales
    of one group. ``adaptive_batching`` lets the controller retune edge
    batch size between rescales, within ``batch_min``/``batch_max``.
    ``policy`` overrides the default policy (any object implementing
    :class:`~repro.elastic.actions.AdaptationPolicy`, or a legacy
    :class:`~repro.elastic.policy.ScalePolicy`, which adapts through a
    deprecation shim). ``replan`` enables runtime plan adaptation —
    ``True`` for defaults or a
    :class:`~repro.elastic.replan.ReplanConfig`; off, the controller
    only rescales replica groups.
    """

    min_parallelism: int = 1
    max_parallelism: int = 4
    initial_parallelism: int | None = None
    tick_s: float = 0.25
    cooldown_s: float = 2.0
    adaptive_batching: bool = True
    batch_min: int = 1
    batch_max: int = 256
    policy: Any | None = None
    replan: Any | None = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "replan", ReplanConfig.resolve(self.replan))
        except TypeError as exc:
            raise ValueError(str(exc)) from exc
        if self.min_parallelism < 1:
            raise ValueError("min_parallelism must be >= 1")
        if self.max_parallelism < self.min_parallelism:
            raise ValueError("max_parallelism must be >= min_parallelism")
        if self.initial_parallelism is not None and not (
            self.min_parallelism <= self.initial_parallelism <= self.max_parallelism
        ):
            raise ValueError(
                "initial_parallelism must fall within [min_parallelism, "
                "max_parallelism]"
            )
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.batch_min < 1:
            raise ValueError("batch_min must be >= 1")
        if self.batch_max < self.batch_min:
            raise ValueError("batch_max must be >= batch_min")

    @property
    def start_parallelism(self) -> int:
        """The replica count a fresh elastic deployment starts at."""
        if self.initial_parallelism is not None:
            return self.initial_parallelism
        return self.min_parallelism

    @classmethod
    def resolve(cls, elastic: "ElasticConfig | bool | None") -> "ElasticConfig | None":
        """Normalize the ``elastic=`` argument of user-facing APIs."""
        if elastic is None or elastic is False:
            return None
        if elastic is True:
            return cls()
        if isinstance(elastic, cls):
            return elastic
        raise TypeError(
            f"elastic must be bool, None or ElasticConfig, got {elastic!r}"
        )

    def describe(self) -> str:
        text = (
            f"parallelism {self.min_parallelism}..{self.max_parallelism} "
            f"(start {self.start_parallelism}), tick {self.tick_s}s, "
            f"cooldown {self.cooldown_s}s, "
            f"batching {'adaptive' if self.adaptive_batching else 'fixed'}"
        )
        if self.replan is not None:
            text += f", replan({self.replan.describe()})"
        return text
