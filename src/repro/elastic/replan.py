"""Runtime re-planning: the cost model and the adaptive-chain registry.

This module holds the pieces of PR "adaptive re-planning" that are pure
decision logic or bookkeeping — no drain/splice mechanics (those live in
:class:`~repro.elastic.controller.ElasticController`):

* :class:`ReplanConfig`    — validated knobs, resolved into
                             ``ElasticConfig.replan`` and round-tripped
                             through the ``[elastic.replan]`` TOML table;
* :class:`AdaptiveChain`   — one fused linear chain the controller may
                             rewrite at runtime, with its live nodes and
                             the per-tick counters deltas are taken over;
* :func:`discover_chains`  — find every adaptable chain in a compiled
                             plan (fused, single-input, outside every
                             keyed replica group);
* :class:`CostModelPolicy` — the default :class:`AdaptationPolicy`: the
                             classic hysteresis policy for replica
                             counts plus a chain cost model over the
                             observed busy/queue/block-fill statistics;
* :func:`plan_migration`   — the placement rule the dist coordinator
                             applies to heartbeat load summaries.

The cost model is deliberately simple and explainable. For a fused chain,
fusion saves one queue hop per edge but serializes the members onto one
thread: when the chain is both backlogged and busy, the pipeline
parallelism regained by unfusing (up to ``len(members)`` threads) beats
the hop cost, so the model emits :class:`Unfuse`; when an unfused chain
goes idle, the hop cost dominates again and it emits :class:`Fuse`.
For a vectorized chain, columnar execution pays a fixed per-block
conversion overhead amortized across the block's rows: observed fill
below ``vector_min_fill`` means the blocks are too empty to pay for
themselves (:class:`SetChainMode` scalar), while a backlogged scalar
chain with block-capable members flips the other way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..spe.plan import FusedOperator
from ..spe.query import Node
from ..spe.stream import Stream
from .actions import (
    AdaptationAction,
    ChainSignals,
    Fuse,
    Migrate,
    Rescale,
    SetChainMode,
    Unfuse,
    WorkloadView,
)
from .policy import HysteresisPolicy, ScalePolicy


@dataclass(frozen=True)
class ReplanConfig:
    """Knobs for runtime plan adaptation (``ElasticConfig.replan``).

    ``cooldown_s`` is the minimum spacing between adaptations of one
    chain; ``max_actions_per_tick`` caps how many plan mutations one tick
    may apply (rescales are budgeted separately by the group cooldown).
    ``streak_ticks`` is the hysteresis: a threshold must hold for that
    many consecutive ticks before the matching action fires. The
    remaining thresholds parameterize the cost model — see the module
    docstring for how each one is read.
    """

    enabled: bool = True
    cooldown_s: float = 1.0
    max_actions_per_tick: int = 1
    streak_ticks: int = 2
    unfuse_queue_fill: float = 0.5
    unfuse_busy: float = 0.8
    refuse_queue_fill: float = 0.05
    refuse_busy: float = 0.2
    vector_min_fill: float = 0.25
    vector_queue_fill: float = 0.5
    migrate: bool = False
    migrate_busy_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.cooldown_s < 0:
            raise ValueError("replan.cooldown_s must be non-negative")
        if self.max_actions_per_tick < 1:
            raise ValueError("replan.max_actions_per_tick must be >= 1")
        if self.streak_ticks < 1:
            raise ValueError("replan.streak_ticks must be >= 1")
        for name in (
            "unfuse_queue_fill",
            "unfuse_busy",
            "refuse_queue_fill",
            "refuse_busy",
            "vector_min_fill",
            "vector_queue_fill",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"replan.{name} must be within [0, 1]")
        if self.refuse_queue_fill > self.unfuse_queue_fill:
            raise ValueError(
                "replan.refuse_queue_fill must not exceed unfuse_queue_fill "
                "(the fuse/unfuse thresholds would oscillate)"
            )
        if self.migrate_busy_ratio < 1.0:
            raise ValueError("replan.migrate_busy_ratio must be >= 1.0")

    @classmethod
    def resolve(cls, replan: "ReplanConfig | bool | None") -> "ReplanConfig | None":
        """Normalize the ``replan=`` argument of user-facing APIs."""
        if replan is None or replan is False:
            return None
        if replan is True:
            return cls()
        if isinstance(replan, cls):
            return replan if replan.enabled else None
        raise TypeError(
            f"replan must be bool, None or ReplanConfig, got {replan!r}"
        )

    def describe(self) -> str:
        parts = [
            f"cooldown {self.cooldown_s}s",
            f"<= {self.max_actions_per_tick} action/tick",
        ]
        if self.migrate:
            parts.append("migration on")
        return ", ".join(parts)


@dataclass
class AdaptiveChain:
    """One linear operator chain the controller may rewrite at runtime.

    ``name`` is the stable chain identity: the fused node's name at
    discovery time, kept through every unfuse/fuse/mode-flip round trip.
    ``nodes`` tracks the chain's current live node(s) — one fused node, or
    one node per member after an unfuse. Checkpoint manifests are keyed by
    the member names in both shapes, so recovery stays portable across any
    adaptation history.
    """

    name: str
    members: tuple[str, ...]
    nodes: list[Node]
    boundary: Stream
    fused: bool = True
    mode: str = "scalar"
    block_capable: bool = False
    last_adapt: float = field(default_factory=time.monotonic)
    last_action: str = ""
    # signal bookkeeping (previous-tick totals for delta computation)
    prev_busy_s: float = 0.0
    prev_blocks: int = 0
    prev_block_rows: int = 0

    @property
    def node_ids(self) -> set[int]:
        return {id(n) for n in self.nodes}

    def reset_counters(self) -> None:
        """Forget totals after a rewrite (new operators start from zero)."""
        self.prev_busy_s = 0.0
        self.prev_blocks = 0
        self.prev_block_rows = 0


def discover_chains(
    nodes: list[Node], exclude_ids: set[int] | None = None
) -> list[AdaptiveChain]:
    """Find every runtime-adaptable fused chain in a compiled node list.

    A chain is adaptable when it is a fused single-input operator node
    outside every keyed replica group (``exclude_ids``: the groups' node
    ids — their clone chains rescale as a unit and are rebuilt from the
    group recipe, never adapted individually).
    """
    exclude = exclude_ids or set()
    chains: list[AdaptiveChain] = []
    for node in nodes:
        if id(node) in exclude or node.kind != "operator":
            continue
        op = node.operator
        if not isinstance(op, FusedOperator) or len(node.inputs) != 1:
            continue
        if any("::" in part for part in op.part_names()):
            # replica clone chain that escaped exclusion — never adapt
            continue
        chains.append(
            AdaptiveChain(
                name=node.name,
                members=tuple(op.part_names()),
                nodes=[node],
                boundary=node.inputs[0],
                fused=True,
                mode=op.execution_mode,
                block_capable=any(
                    bool(getattr(part.operator, "supports_block", False))
                    for part in op.parts
                ),
            )
        )
    return chains


class CostModelPolicy:
    """Default :class:`~repro.elastic.actions.AdaptationPolicy`.

    Replica-count decisions delegate to a classic
    :class:`~repro.elastic.policy.ScalePolicy` (hysteresis by default);
    chain decisions come from the cost model described in the module
    docstring, with the same streak-based hysteresis the scale policy
    uses so one noisy tick never rewrites the plan.
    """

    def __init__(
        self,
        replan: ReplanConfig | None = None,
        scale: ScalePolicy | None = None,
    ) -> None:
        self._cfg = replan if replan is not None else ReplanConfig()
        self._scale = scale if scale is not None else HysteresisPolicy()
        self._streaks: dict[tuple[str, str], int] = {}

    def decide(self, view: WorkloadView) -> list[AdaptationAction]:
        actions: list[AdaptationAction] = []
        for name, signals in view.groups.items():
            target = self._scale.decide(name, signals, signals.parallelism)
            if target != signals.parallelism:
                actions.append(Rescale(group=name, target=target))
        for name, chain in view.chains.items():
            action = self._chain_action(chain)
            if action is not None:
                actions.append(action)
        if self._cfg.migrate and view.workers:
            migration = plan_migration(view.workers, self._cfg)
            if migration is not None:
                actions.append(migration)
        return actions

    def _streak(self, chain: str, rule: str, active: bool) -> bool:
        """Advance the (chain, rule) streak; True once it reaches the bar.

        Every other rule's streak for the chain resets when this one
        advances, so competing rules cannot both ripen from stale ticks.
        """
        key = (chain, rule)
        if not active:
            self._streaks.pop(key, None)
            return False
        streak = self._streaks.get(key, 0) + 1
        if streak >= self._cfg.streak_ticks:
            self._streaks.pop(key, None)
            return True
        self._streaks[key] = streak
        return False

    def _chain_action(self, chain: ChainSignals) -> AdaptationAction | None:
        cfg = self._cfg
        # Rule 1 — vectorized chain forming starved blocks: the per-block
        # conversion overhead amortizes over block rows; below the minimum
        # fill the columnar path costs more than the scalar cascade saves.
        starved = (
            chain.fused
            and chain.mode == "vectorized"
            and chain.blocks_delta > 0
            and chain.block_fill < cfg.vector_min_fill
        )
        if self._streak(chain.name, "to_scalar", starved):
            return SetChainMode(chain=chain.name, mode="scalar")
        # Rule 2 — backlogged scalar chain with block kernels available:
        # full queues mean full blocks, so the columnar path pays off.
        vectorizable = (
            chain.fused
            and chain.mode == "scalar"
            and chain.block_capable
            and chain.queue_fill >= cfg.vector_queue_fill
        )
        if self._streak(chain.name, "to_vectorized", vectorizable):
            return SetChainMode(chain=chain.name, mode="vectorized")
        # Rule 3 — saturated fused chain: one thread is the bottleneck;
        # unfusing regains up to len(members)-way pipeline parallelism,
        # worth the extra queue hops while the chain is busy *and* backed
        # up (busy alone means the thread still keeps pace).
        saturated = (
            chain.fused
            and len(chain.members) >= 2
            and chain.queue_fill >= cfg.unfuse_queue_fill
            and chain.busy_fraction >= cfg.unfuse_busy
        )
        if self._streak(chain.name, "unfuse", saturated):
            return Unfuse(chain=chain.name)
        # Rule 4 — idle unfused chain: the queue hops now dominate the
        # (absent) pipeline-parallelism gain; collapse back to one node.
        idle = (
            not chain.fused
            and chain.queue_fill <= cfg.refuse_queue_fill
            and chain.busy_fraction <= cfg.refuse_busy
        )
        if self._streak(chain.name, "fuse", idle):
            return Fuse(chain=chain.name)
        return None


def plan_migration(
    workers: Mapping[str, Mapping[str, Any]], cfg: ReplanConfig
) -> Migrate | None:
    """Pick one stage to move off the busiest dist worker, or ``None``.

    ``workers`` maps worker name to a load summary with ``busy_fraction``
    and ``stages`` (the stage names it currently runs). The rule fires
    only when the busiest worker runs more than one stage (moving its
    only stage just relocates the hot spot) and is at least
    ``migrate_busy_ratio`` times as busy as the idlest one.
    """
    loads = {
        name: float(info.get("busy_fraction", 0.0)) for name, info in workers.items()
    }
    if len(loads) < 2:
        return None
    hot = max(loads, key=lambda n: loads[n])
    cold = min(loads, key=lambda n: loads[n])
    if hot == cold:
        return None
    hot_stages = list(workers[hot].get("stages", ()))
    if len(hot_stages) < 2:
        return None
    if loads[hot] < max(loads[cold], 1e-9) * cfg.migrate_busy_ratio:
        return None
    # move the hot worker's last stage: downstream stages are the ones a
    # backlogged pipeline starves, and the choice is deterministic
    return Migrate(stage=hot_stages[-1], to_worker=cold)


__all__ = [
    "AdaptiveChain",
    "CostModelPolicy",
    "ReplanConfig",
    "discover_chains",
    "plan_migration",
]
