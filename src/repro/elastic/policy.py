"""Scale policies: turn observed load signals into replica-count targets.

The controller samples one :class:`GroupSignals` per replica group per
tick and asks its policy for a target parallelism. Policies are pure
decision logic — bounds clamping, cooldown enforcement, and the actual
rescale mechanics stay in the controller, so a policy can be as simple as
a pair of thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class GroupSignals:
    """One tick's worth of load evidence for one replica group.

    ``queue_fill``          boundary-queue depth as a fraction of capacity;
    ``busy_fraction``       mean fraction of the tick the group's replicas
                            spent processing (0..~1 per replica);
    ``watermark_lag_s``     event-time distance between sources and sinks;
    ``qos_violation_delta`` QoS watchdog violations since the last tick;
    ``parallelism``         the group's current replica count.
    """

    queue_fill: float = 0.0
    busy_fraction: float = 0.0
    watermark_lag_s: float = 0.0
    qos_violation_delta: int = 0
    parallelism: int = 1


@runtime_checkable
class ScalePolicy(Protocol):
    """Pluggable decision logic for the elastic controller."""

    def decide(self, group: str, signals: GroupSignals, current: int) -> int:
        """Target replica count for ``group`` (pre-clamping)."""
        ...


class HysteresisPolicy:
    """Threshold policy with streak-based hysteresis.

    Scale-up is eager (doubling) and triggers after ``up_ticks``
    consecutive overloaded ticks — or immediately on a QoS violation when
    ``qos_boost`` is set, because a missed recoat-gap deadline means the
    build is already printing over unassessed layers. Scale-down is
    conservative (one replica at a time) and needs ``down_ticks``
    consecutive idle ticks, so transient lulls between layer bursts do not
    thrash the group.
    """

    def __init__(
        self,
        up_queue_fill: float = 0.5,
        up_busy: float = 0.85,
        down_queue_fill: float = 0.10,
        down_busy: float = 0.35,
        up_ticks: int = 2,
        down_ticks: int = 6,
        qos_boost: bool = True,
    ) -> None:
        self.up_queue_fill = up_queue_fill
        self.up_busy = up_busy
        self.down_queue_fill = down_queue_fill
        self.down_busy = down_busy
        self.up_ticks = max(1, up_ticks)
        self.down_ticks = max(1, down_ticks)
        self.qos_boost = qos_boost
        self._up_streak: dict[str, int] = {}
        self._down_streak: dict[str, int] = {}

    def decide(self, group: str, signals: GroupSignals, current: int) -> int:
        overloaded = (
            signals.queue_fill >= self.up_queue_fill
            or signals.busy_fraction >= self.up_busy
            or signals.qos_violation_delta > 0
        )
        idle = (
            signals.queue_fill <= self.down_queue_fill
            and signals.busy_fraction <= self.down_busy
            and signals.qos_violation_delta == 0
        )
        if overloaded:
            self._down_streak[group] = 0
            streak = self._up_streak.get(group, 0) + 1
            self._up_streak[group] = streak
            if self.qos_boost and signals.qos_violation_delta > 0:
                self._up_streak[group] = 0
                return current * 2
            if streak >= self.up_ticks:
                self._up_streak[group] = 0
                return current * 2
            return current
        self._up_streak[group] = 0
        if idle and current > 1:
            streak = self._down_streak.get(group, 0) + 1
            self._down_streak[group] = streak
            if streak >= self.down_ticks:
                self._down_streak[group] = 0
                return current - 1
            return current
        self._down_streak[group] = 0
        return current
