"""repro.elastic — QoS-driven runtime rescaling.

Rescales keyed-replicated operator groups while a query runs: a scoped
aligned barrier drains the group, keyed state is re-sharded across the
new replica count, and replacement nodes are spliced into the live
threaded scheduler — no restart, no lost or duplicated tuples. Policies
are pluggable; the default is a hysteresis policy driven by queue fill,
busy fraction, and QoS watchdog alerts.
"""

from .config import ElasticConfig
from .controller import (
    ElasticController,
    ElasticError,
    ElasticGroup,
    discover_groups,
)
from .policy import GroupSignals, HysteresisPolicy, ScalePolicy
from .reshard import merge_keyed, split_keyed, split_scalar

__all__ = [
    "ElasticConfig",
    "ElasticController",
    "ElasticError",
    "ElasticGroup",
    "GroupSignals",
    "HysteresisPolicy",
    "ScalePolicy",
    "discover_groups",
    "merge_keyed",
    "split_keyed",
    "split_scalar",
]
