"""repro.elastic — QoS-driven runtime rescaling and re-planning.

Adapts a live query without restarting it: a scoped aligned barrier
drains the target nodes, then replacements are spliced into the running
threaded scheduler — no lost or duplicated tuples. Two families of
mutation share that protocol:

* **rescaling** keyed-replicated operator groups (state re-sharded
  across the new replica count);
* **re-planning** fused linear chains — unfuse/fuse, scalar/vectorized
  mode flips, and dist-worker stage migration — driven by the typed
  :data:`~repro.elastic.actions.AdaptationAction` algebra returned by an
  :class:`~repro.elastic.actions.AdaptationPolicy` (default:
  :class:`~repro.elastic.replan.CostModelPolicy`). Legacy
  :class:`~repro.elastic.policy.ScalePolicy` objects still work through
  a deprecation shim emitting only ``Rescale`` actions.
"""

from .actions import (
    AdaptationAction,
    AdaptationPolicy,
    ChainSignals,
    Fuse,
    Migrate,
    NoOp,
    Rescale,
    ScalePolicyAdapter,
    SetChainMode,
    Unfuse,
    WorkloadView,
    is_legacy_scale_policy,
)
from .config import ElasticConfig
from .controller import (
    ElasticController,
    ElasticError,
    ElasticGroup,
    discover_groups,
)
from .policy import GroupSignals, HysteresisPolicy, ScalePolicy
from .replan import (
    AdaptiveChain,
    CostModelPolicy,
    ReplanConfig,
    discover_chains,
    plan_migration,
)
from .reshard import merge_keyed, split_keyed, split_scalar

__all__ = [
    "AdaptationAction",
    "AdaptationPolicy",
    "AdaptiveChain",
    "ChainSignals",
    "CostModelPolicy",
    "ElasticConfig",
    "ElasticController",
    "ElasticError",
    "ElasticGroup",
    "Fuse",
    "GroupSignals",
    "HysteresisPolicy",
    "Migrate",
    "NoOp",
    "ReplanConfig",
    "Rescale",
    "ScalePolicy",
    "ScalePolicyAdapter",
    "SetChainMode",
    "Unfuse",
    "WorkloadView",
    "discover_chains",
    "discover_groups",
    "is_legacy_scale_policy",
    "merge_keyed",
    "plan_migration",
    "split_keyed",
    "split_scalar",
]
