"""Pluggable payload transports for broker connections.

A *transport* decides how record payloads travel between peers; the
framing, op table, and broker semantics stay identical regardless. Two
ship in-tree:

``tcp``
    Payload bytes ride inside the frame blobs. Always works, including
    across machines. This is the default and the fallback.

``shm``
    Payload ndarrays ride a shared-memory :class:`~repro.net.shm.SlabRing`
    and frames carry slab handles (see :mod:`repro.net.shm`). Only
    meaningful when every peer shares a kernel; peers that cannot attach
    the ring silently stay on tcp.

Negotiation is server-advertised: the client issues the ``transport`` op,
receives the server's descriptor (``{"name": "shm", "ring": ...}`` or
``{"name": "tcp"}``), and calls :func:`connect_transport` to build its
side. Old servers answer unknown ops with a :class:`ProtocolError`, which
the client treats as ``tcp`` — so a new client against an old broker
degrades instead of breaking.

Third-party transports register the same way the built-ins do::

    register_transport(TransportSpec(name="rdma", make_server=..., connect=...))
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable

from .shm import (
    SHM_MIN_BYTES,
    ShmProducerPlane,
    ShmServerPlane,
    SlabRing,
    SlabRingError,
    attach_ring,
)

logger = logging.getLogger(__name__)

#: defaults for the shm ring; sized so four in-flight 2000 px float64
#: layer images per stage fit with headroom
DEFAULT_SHM_SLOTS = 64
DEFAULT_SHM_SLAB_BYTES = 40 * 1024 * 1024


class ServerTransport:
    """Server half of a transport: advertised to clients, hooks the codec.

    The tcp base class is deliberately all no-ops — a transport only
    overrides what it changes.
    """

    name = "tcp"

    def describe(self) -> dict[str, Any]:
        """The descriptor sent back from the ``transport`` op."""
        return {"name": self.name}

    def decode_options(self) -> dict[str, Any]:
        """Extra :class:`~repro.serde.SerdeContext` options for produces."""
        return {}

    def encode_options(self) -> dict[str, Any]:
        """Extra context options when the server re-encodes for a fetch."""
        return {}

    def lease(self, conn_token: int, count: int) -> list[tuple[int, int]]:
        """Grant payload slabs to a connection (no-op on tcp)."""
        return []

    def release(self, conn_token: int, pairs: list[tuple[int, int]]) -> int:
        """Take back unused slabs from a connection (no-op on tcp)."""
        return 0

    def on_disconnect(self, conn_token: int) -> None:
        """A connection died; reclaim anything charged to it."""

    def stats(self) -> dict[str, Any]:
        return {}

    def close(self) -> None:
        pass


class ClientTransport:
    """Client half: per-connection encode/decode context hooks."""

    name = "tcp"

    def producer_options(
        self,
        lease_fn: Callable[[int], list[tuple[int, int]]],
        release_fn: Callable[[list[tuple[int, int]]], int],
    ) -> dict[str, Any]:
        """Encode-context options for one producer connection.

        ``lease_fn``/``release_fn`` are bound to that connection's typed
        ops so the server charges leases to the right socket.
        """
        return {}

    def consumer_options(self) -> dict[str, Any]:
        """Decode-context options for one consumer connection."""
        return {}

    def release_producer(self, options: dict[str, Any]) -> None:
        """Tear down whatever :meth:`producer_options` allocated."""

    def close(self) -> None:
        pass


@dataclass(frozen=True)
class TransportSpec:
    """Registry row: how to build each half of a named transport."""

    name: str
    #: ``make_server(**config) -> ServerTransport``
    make_server: Callable[..., ServerTransport]
    #: ``connect(descriptor) -> ClientTransport | None`` (None = can't use
    #: this transport from here, caller falls back to tcp)
    connect: Callable[[dict[str, Any]], "ClientTransport | None"]


TRANSPORTS: dict[str, TransportSpec] = {}


def register_transport(spec: TransportSpec, replace: bool = False) -> TransportSpec:
    if spec.name in TRANSPORTS and not replace:
        raise ValueError(f"transport {spec.name!r} already registered")
    TRANSPORTS[spec.name] = spec
    return spec


def make_server_transport(name: str, **config: Any) -> ServerTransport:
    """Build the server half of the named transport.

    Unknown names raise ``ValueError`` listing what is registered, so a
    typo in ``[dist] transport`` fails loudly at deploy time rather than
    silently running tcp.
    """
    spec = TRANSPORTS.get(name)
    if spec is None:
        known = ", ".join(sorted(TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (registered: {known})")
    return spec.make_server(**config)


def connect_transport(descriptor: dict[str, Any] | None) -> ClientTransport:
    """Build the client half for a server-advertised descriptor.

    Anything unusable — no descriptor, unknown name, or the named
    transport declining (e.g. an shm ring on another machine) — yields
    the tcp transport. The client can always talk tcp.
    """
    name = (descriptor or {}).get("name", "tcp")
    spec = TRANSPORTS.get(name)
    if spec is None:
        logger.info("unknown transport %r advertised; staying on tcp", name)
        return ClientTransport()
    client = spec.connect(descriptor or {})
    if client is None:
        logger.info("transport %r not usable from this process; using tcp", name)
        return ClientTransport()
    return client


# -- tcp ----------------------------------------------------------------------

register_transport(
    TransportSpec(
        name="tcp",
        make_server=lambda **_: ServerTransport(),
        connect=lambda descriptor: ClientTransport(),
    )
)


# -- shm ----------------------------------------------------------------------


class ShmServerTransport(ServerTransport):
    """Server side of the shared-memory payload plane."""

    name = "shm"

    def __init__(
        self,
        slots: int = DEFAULT_SHM_SLOTS,
        slab_bytes: int = DEFAULT_SHM_SLAB_BYTES,
        min_bytes: int = SHM_MIN_BYTES,
    ) -> None:
        ring = SlabRing.create(slots=slots, slab_bytes=slab_bytes)
        self.plane = ShmServerPlane(ring, min_bytes=min_bytes)

    def describe(self) -> dict[str, Any]:
        return self.plane.describe()

    def decode_options(self) -> dict[str, Any]:
        return {"shm_server": self.plane}

    def lease(self, conn_token: int, count: int) -> list[tuple[int, int]]:
        return self.plane.lease(conn_token, count)

    def release(self, conn_token: int, pairs: list[tuple[int, int]]) -> int:
        return self.plane.release(conn_token, pairs)

    def on_disconnect(self, conn_token: int) -> None:
        reclaimed = self.plane.reclaim_owner(conn_token)
        if reclaimed:
            logger.info(
                "reclaimed %d unbound slab lease(s) from dead connection %d",
                reclaimed,
                conn_token,
            )

    def stats(self) -> dict[str, Any]:
        return self.plane.stats()

    def close(self) -> None:
        self.plane.close()


class ShmClientTransport(ClientTransport):
    """Client side: producer planes over an attached ring."""

    name = "shm"

    def __init__(self, ring: SlabRing, min_bytes: int) -> None:
        self._ring = ring
        self._min_bytes = min_bytes

    def producer_options(
        self,
        lease_fn: Callable[[int], list[tuple[int, int]]],
        release_fn: Callable[[list[tuple[int, int]]], int],
    ) -> dict[str, Any]:
        plane = ShmProducerPlane(
            self._ring, lease_fn, release_fn, min_bytes=self._min_bytes
        )
        return {"shm_producer": plane}

    def consumer_options(self) -> dict[str, Any]:
        return {"shm_ring": self._ring}

    def release_producer(self, options: dict[str, Any]) -> None:
        plane = options.get("shm_producer")
        if plane is not None:
            plane.close()


def _connect_shm(descriptor: dict[str, Any]) -> ClientTransport | None:
    name = descriptor.get("ring")
    if not name:
        return None
    try:
        ring = attach_ring(name)
    except SlabRingError as exc:
        logger.info("cannot attach shm ring %r (%s); using tcp", name, exc)
        return None
    return ShmClientTransport(ring, int(descriptor.get("min_bytes", SHM_MIN_BYTES)))


register_transport(
    TransportSpec(
        name="shm",
        make_server=ShmServerTransport,
        connect=_connect_shm,
    )
)
