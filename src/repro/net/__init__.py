"""repro.net — networked broker transport.

A length-prefixed binary wire protocol (:mod:`repro.net.frames`), a TCP
:class:`BrokerServer` exposing an in-process broker, and drop-in
:class:`RemoteProducer`/:class:`RemoteConsumer` clients so the pub/sub
connectors cross machine boundaries unchanged — the decoupling the paper
gets from Kafka, over our own Kafka substitute.
"""

from .client import BrokerClient, Connection, RemoteConsumer, RemoteProducer
from .errors import ConnectionClosedError, NetError, ProtocolError, RpcError
from .frames import (
    MAGIC,
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    VERSION,
    Frame,
    encode_frame,
    read_frame,
    write_frame,
)
from .server import BrokerServer

__all__ = [
    "BrokerClient",
    "BrokerServer",
    "Connection",
    "ConnectionClosedError",
    "Frame",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "NetError",
    "ProtocolError",
    "RemoteConsumer",
    "RemoteProducer",
    "RpcError",
    "TYPE_ERROR",
    "TYPE_REQUEST",
    "TYPE_RESPONSE",
    "VERSION",
    "encode_frame",
    "read_frame",
    "write_frame",
]
