"""repro.net — networked broker transport.

A length-prefixed binary wire protocol (:mod:`repro.net.frames`) with a
typed op table shared by both peers (:mod:`repro.net.ops`), an async
selector-based :class:`BrokerServer` exposing an in-process broker, and
drop-in :class:`RemoteProducer`/:class:`RemoteConsumer` clients so the
pub/sub connectors cross machine boundaries unchanged — the decoupling
the paper gets from Kafka, over our own Kafka substitute.

Payloads ride a pluggable transport (:mod:`repro.net.transport`): plain
tcp everywhere, or a zero-copy shared-memory slab ring
(:mod:`repro.net.shm`) when the peers share a machine.
"""

from .client import BrokerClient, Connection, RemoteConsumer, RemoteProducer
from .errors import ConnectionClosedError, NetError, ProtocolError, RpcError
from .frames import (
    MAGIC,
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    VERSION,
    Frame,
    FrameDecoder,
    encode_frame,
    frame_iovecs,
    read_frame,
    write_frame,
    write_frames,
)
from .ops import OPS, OpSpec, register_op
from .server import BrokerServer
from .shm import (
    ShmProducerPlane,
    ShmServerPlane,
    SlabHandle,
    SlabRing,
    SlabRingError,
    StaleSlabError,
)
from .transport import (
    ClientTransport,
    ServerTransport,
    TransportSpec,
    connect_transport,
    make_server_transport,
    register_transport,
)

__all__ = [
    "BrokerClient",
    "BrokerServer",
    "ClientTransport",
    "Connection",
    "ConnectionClosedError",
    "Frame",
    "FrameDecoder",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "NetError",
    "OPS",
    "OpSpec",
    "ProtocolError",
    "RemoteConsumer",
    "RemoteProducer",
    "RpcError",
    "ServerTransport",
    "ShmProducerPlane",
    "ShmServerPlane",
    "SlabHandle",
    "SlabRing",
    "SlabRingError",
    "StaleSlabError",
    "TransportSpec",
    "TYPE_ERROR",
    "TYPE_REQUEST",
    "TYPE_RESPONSE",
    "VERSION",
    "connect_transport",
    "encode_frame",
    "frame_iovecs",
    "make_server_transport",
    "read_frame",
    "register_op",
    "register_transport",
    "write_frame",
    "write_frames",
]
