"""Async TCP server exposing an in-process :class:`~repro.pubsub.broker.Broker`.

One :class:`BrokerServer` wraps one broker instance and serves the full
client surface the connectors need — produce (single and batched), fetch
(with blocking waits), consumer-group commit/committed, topic admin —
plus worker heartbeats for the distributed runtime and the payload
transport handshake (``transport``/``lease``/``release``).

The server is a single selector event loop rather than a thread per
connection: sockets are non-blocking, reads go through an incremental
:class:`~repro.net.frames.FrameDecoder`, and replies leave through
per-connection write queues flushed with vectored I/O. Fast operations
run inline on the loop thread (the broker is thread-safe and every
handler is a dict lookup plus an append or read); only operations the op
table marks ``may_block`` — blocking fetches — are handed to short-lived
daemon threads so a quiet partition never stalls the loop. Requests are
parsed through the typed op table in :mod:`repro.net.ops`, so the server
has no string-dispatch surface of its own.

Record values cross the wire through the serde wire codec and are stored
*decoded*, which keeps in-process producers/consumers attached to the
same broker fully interoperable with remote ones. Under the shm
transport, "decoded" means a :class:`~repro.net.shm.SlabRef` — payload
arrays stay in the shared ring and fetch replies re-encode to ~100-byte
handles.

Pickle frames are refused by default (``allow_pickle=False``): a network
peer must not be able to run arbitrary bytecode in the broker process.
The distributed runtime, which owns both ends of its loopback links,
enables pickle explicitly.
"""

from __future__ import annotations

import itertools
import logging
import selectors
import socket
import threading
import time
from collections import deque
from typing import Any

from ..pubsub.broker import Broker
from ..pubsub.errors import InvalidOffsetError
from ..serde import SerdeContext, decode_wire, encode_wire
from .errors import ProtocolError
from .frames import (
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    Frame,
    FrameDecoder,
    frame_iovecs,
)
from .ops import (
    ClusterResponse,
    CommittedResponse,
    EndOffsetsResponse,
    FetchResponse,
    LeaseResponse,
    ListTopicsResponse,
    OffsetsResponse,
    PingResponse,
    ProduceBatchResponse,
    ProduceResponse,
    ReleaseResponse,
    TopicResponse,
    TransportResponse,
    parse_request,
    response_meta,
)
from .transport import ServerTransport, make_server_transport

logger = logging.getLogger(__name__)

#: cap on server-side blocking fetch waits, so a vanished client cannot
#: park a handler thread forever on a quiet partition
MAX_FETCH_BLOCK_S = 30.0

#: soft byte budget for one fetch reply: stop adding records once the
#: encoded blobs pass this, so a burst of large payloads never builds a
#: reply frame over MAX_FRAME_BYTES (the client just fetches again)
FETCH_REPLY_SOFT_BYTES = 32 * 1024 * 1024

_RECV_CHUNK = 1 << 18
_IOV_BATCH = 512


class _Conn:
    """Per-connection loop state."""

    __slots__ = ("sock", "token", "decoder", "out", "off", "close_after_flush")

    def __init__(self, sock: socket.socket, token: int, max_frame: int) -> None:
        self.sock = sock
        self.token = token
        self.decoder = FrameDecoder(max_frame)
        self.out: deque[bytes] = deque()  # pending outbound buffers
        self.off = 0  # bytes of out[0] already sent
        self.close_after_flush = False


class BrokerServer:
    """Serves one broker over TCP until :meth:`stop`."""

    def __init__(
        self,
        broker: Broker,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_pickle: bool = False,
        max_frame: int = MAX_FRAME_BYTES,
        transport: "str | ServerTransport" = "tcp",
        transport_options: dict[str, Any] | None = None,
    ) -> None:
        self._broker = broker
        self._host = host
        self._port = port
        self._allow_pickle = allow_pickle
        self._max_frame = max_frame
        if isinstance(transport, str):
            transport = make_server_transport(transport, **(transport_options or {}))
        self._transport = transport
        self._decode_ctx = SerdeContext(
            allow_pickle, options=transport.decode_options()
        )
        self._encode_ctx = SerdeContext(
            allow_pickle, options=transport.encode_options()
        )
        self._listener: socket.socket | None = None
        self._loop_thread: threading.Thread | None = None
        self._selector: selectors.BaseSelector | None = None
        self._conns: dict[socket.socket, _Conn] = {}
        self._tokens = itertools.count(1)
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._drain_deadline: float | None = None
        self._deadline_hit = False
        # cross-thread reply completions (blocking fetches) + wakeup pipe
        self._pending: deque[tuple[_Conn, Frame]] = deque()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        # worker name -> {"info": ..., "metrics": ..., "last_seen": ...}
        self._heartbeats: dict[str, dict[str, Any]] = {}
        self._handlers = {
            "ping": self._handle_ping,
            "produce": self._handle_produce,
            "produce_batch": self._handle_produce_batch,
            "fetch": self._handle_fetch,
            "commit": self._handle_commit,
            "committed": self._handle_committed,
            "reset_group": self._handle_reset_group,
            "create_topic": self._handle_create_topic,
            "ensure_topic": self._handle_ensure_topic,
            "list_topics": self._handle_list_topics,
            "partitions": self._handle_partitions,
            "offsets": self._handle_offsets,
            "end_offsets": self._handle_end_offsets,
            "heartbeat": self._handle_heartbeat,
            "cluster": self._handle_cluster,
            "transport": self._handle_transport,
            "lease": self._handle_lease,
            "release": self._handle_release,
        }

    @property
    def broker(self) -> Broker:
        return self._broker

    @property
    def transport(self) -> ServerTransport:
        return self._transport

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start the event loop, and return the bound address."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._listener.setblocking(False)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="broker-server-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    def stop(self, timeout: float = 5.0) -> bool:
        """Drain write queues, then shut down the loop.

        Connections with queued replies are flushed until ``timeout``
        seconds elapse; everything else closes immediately. Returns
        ``True`` when the deadline was hit with bytes still queued (some
        replies were dropped), ``False`` on a clean drain.
        """
        if self._loop_thread is None:
            self._transport.close()
            return False
        self._drain_deadline = time.monotonic() + max(0.0, timeout)
        self._stopping.set()
        self._wake()
        self._loop_thread.join(timeout=timeout + 1.0)
        self._transport.close()
        return self._deadline_hit

    def __enter__(self) -> "BrokerServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- worker registry (read by the dist coordinator) --------------------

    def workers(self) -> dict[str, dict[str, Any]]:
        """Latest heartbeat per worker: info, metrics, seconds since seen."""
        now = time.monotonic()
        with self._lock:
            return {
                name: {
                    "info": beat["info"],
                    "metrics": beat["metrics"],
                    "age_s": now - beat["last_seen"],
                }
                for name, beat in self._heartbeats.items()
            }

    # -- event loop ----------------------------------------------------------

    def _wake(self) -> None:
        if self._wake_w is None:
            return
        try:
            self._wake_w.send(b"\x00")
        except OSError:  # pragma: no cover - loop already gone
            pass

    def _run_loop(self) -> None:
        assert self._selector is not None
        try:
            while True:
                if self._stopping.is_set() and self._shutdown_step():
                    return
                events = self._selector.select(timeout=0.2)
                self._drain_pending()
                for key, mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            while self._wake_r.recv(4096):  # type: ignore[union-attr]
                                pass
                        except (BlockingIOError, OSError):
                            pass
                        self._drain_pending()
                    else:
                        conn: _Conn = key.data
                        if mask & selectors.EVENT_WRITE:
                            self._flush(conn)
                        if mask & selectors.EVENT_READ and conn.sock in self._conns:
                            self._read(conn)
        except Exception:  # pragma: no cover - loop must never die silently
            logger.exception("broker server event loop crashed")
        finally:
            self._teardown()

    def _shutdown_step(self) -> bool:
        """One drain iteration while stopping; True when the loop may exit."""
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)  # type: ignore[union-attr]
            except (KeyError, ValueError):
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        self._drain_pending()
        # close everything with nothing left to say; keep flushing the rest
        for conn in list(self._conns.values()):
            if conn.out:
                self._want_write(conn, reading=False)
            else:
                self._close_conn(conn)
        if not self._conns:
            return True
        deadline = self._drain_deadline or 0.0
        if time.monotonic() >= deadline:
            self._deadline_hit = True
            logger.warning(
                "stop() deadline hit with %d connection(s) undrained",
                len(self._conns),
            )
            return True
        return False

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for sock in (self._wake_r, self._wake_w, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
        if self._selector is not None:
            self._selector.close()

    def _accept(self) -> None:
        assert self._listener is not None
        try:
            sock, _addr = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not a TCP socket
            pass
        conn = _Conn(sock, next(self._tokens), self._max_frame)
        self._conns[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, conn)  # type: ignore[union-attr]

    def _close_conn(self, conn: _Conn) -> None:
        if conn.sock not in self._conns:
            return
        del self._conns[conn.sock]
        try:
            self._selector.unregister(conn.sock)  # type: ignore[union-attr]
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._transport.on_disconnect(conn.token)

    def _want_write(self, conn: _Conn, reading: bool = True) -> None:
        if conn.sock not in self._conns:
            return
        events = selectors.EVENT_READ if reading and not self._stopping.is_set() else 0
        if conn.out:
            events |= selectors.EVENT_WRITE
        if events == 0:
            events = selectors.EVENT_READ
        self._selector.modify(conn.sock, events, conn)  # type: ignore[union-attr]

    # -- reads ---------------------------------------------------------------

    def _read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.decoder.feed(data)
        try:
            for frame in conn.decoder.frames():
                self._handle_frame(conn, frame)
                if conn.close_after_flush or conn.sock not in self._conns:
                    break
        except ProtocolError as exc:
            self._enqueue(conn, Frame(TYPE_ERROR, 0, _error_meta(exc)))
            conn.close_after_flush = True
        self._after_enqueue(conn)

    def _handle_frame(self, conn: _Conn, frame: Frame) -> None:
        if frame.type != TYPE_REQUEST:
            self._enqueue(
                conn,
                Frame(
                    TYPE_ERROR,
                    frame.corr_id,
                    _error_meta(ProtocolError("expected a request frame")),
                ),
            )
            conn.close_after_flush = True
            return
        try:
            spec, request = parse_request(frame.meta)
        except Exception as exc:
            self._enqueue(conn, Frame(TYPE_ERROR, frame.corr_id, _error_meta(exc)))
            return
        if spec.may_block is not None and spec.may_block(request):
            threading.Thread(
                target=self._run_blocking,
                args=(conn, frame, spec.name, request),
                name=f"broker-server-{spec.name}",
                daemon=True,
            ).start()
            return
        try:
            meta, blobs = self._handlers[spec.name](conn, request, frame.blobs)
            reply = Frame(TYPE_RESPONSE, frame.corr_id, meta, tuple(blobs))
        except Exception as exc:  # typed error travels to the client
            reply = Frame(TYPE_ERROR, frame.corr_id, _error_meta(exc))
        self._enqueue(conn, reply)

    def _run_blocking(
        self, conn: _Conn, frame: Frame, op: str, request: Any
    ) -> None:
        """Execute a may-block op off the loop, then hand the reply back."""
        try:
            meta, blobs = self._handlers[op](conn, request, frame.blobs)
            reply = Frame(TYPE_RESPONSE, frame.corr_id, meta, tuple(blobs))
        except Exception as exc:
            reply = Frame(TYPE_ERROR, frame.corr_id, _error_meta(exc))
        with self._lock:
            self._pending.append((conn, reply))
        self._wake()

    def _drain_pending(self) -> None:
        while True:
            with self._lock:
                if not self._pending:
                    return
                conn, reply = self._pending.popleft()
            if conn.sock in self._conns:
                self._enqueue(conn, reply)
                self._after_enqueue(conn)

    # -- writes --------------------------------------------------------------

    def _enqueue(self, conn: _Conn, frame: Frame) -> None:
        conn.out.extend(frame_iovecs(frame))

    def _after_enqueue(self, conn: _Conn) -> None:
        """Flush optimistically; fall back to WRITE interest if blocked."""
        if conn.sock not in self._conns:
            return
        self._flush(conn)

    def _flush(self, conn: _Conn) -> None:
        if conn.sock not in self._conns:
            return
        try:
            while conn.out:
                window: list[Any] = [memoryview(conn.out[0])[conn.off :]]
                total = len(window[0])
                for buf in itertools.islice(conn.out, 1, _IOV_BATCH):
                    window.append(buf)
                    total += len(buf)
                if hasattr(conn.sock, "sendmsg"):
                    sent = conn.sock.sendmsg(window)
                else:  # pragma: no cover - non-POSIX fallback
                    sent = conn.sock.send(b"".join(window))
                partial = sent < total
                while conn.out:
                    rem0 = len(conn.out[0]) - conn.off
                    if sent >= rem0:
                        sent -= rem0
                        conn.out.popleft()
                        conn.off = 0
                    else:
                        conn.off += sent
                        break
                if partial:  # socket buffer full: wait for writability
                    break
        except BlockingIOError:
            pass
        except OSError:
            self._close_conn(conn)
            return
        if not conn.out and conn.close_after_flush:
            self._close_conn(conn)
            return
        self._want_write(conn)

    # -- operations ----------------------------------------------------------

    def _handle_ping(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        return response_meta(PingResponse()), []

    def _append_one(
        self,
        topic: Any,
        key: Any,
        value: Any,
        timestamp: Any,
        headers: Any,
        partition: Any,
    ) -> tuple[int, int]:
        return topic.append(key, value, timestamp, headers, partition)

    def _resolve_topic(self, name: str, auto_create: bool, partitions: int) -> Any:
        if auto_create:
            return self._broker.ensure_topic(name, int(partitions))
        return self._broker.topic(name)

    def _handle_produce(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        value = decode_wire(blobs[0], context=self._decode_ctx)
        topic = self._resolve_topic(req.topic, req.auto_create, req.partitions)
        partition, offset = self._append_one(
            topic, req.key, value, req.timestamp, req.headers, req.partition
        )
        return response_meta(ProduceResponse(partition, offset)), []

    def _handle_produce_batch(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        if len(req.entries) != len(blobs):
            raise ProtocolError(
                f"produce_batch carries {len(blobs)} blob(s) for "
                f"{len(req.entries)} entries"
            )
        topic = self._resolve_topic(req.topic, req.auto_create, req.partitions)
        results = []
        for entry, blob in zip(req.entries, blobs):
            value = decode_wire(blob, context=self._decode_ctx)
            partition, offset = self._append_one(
                topic,
                entry.get("key"),
                value,
                entry.get("timestamp"),
                entry.get("headers"),
                entry.get("partition"),
            )
            results.append([partition, offset])
        return response_meta(ProduceBatchResponse(results)), []

    def _handle_fetch(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        log = self._broker.topic(req.topic).log(int(req.partition))
        offset = int(req.offset)
        max_records = int(req.max_records)
        timeout = float(req.timeout)
        if timeout > 0:
            records = log.read_blocking(
                offset, max_records, min(timeout, MAX_FETCH_BLOCK_S)
            )
        else:
            records = log.read(offset, max_records)
        out_records = []
        out_blobs = []
        budget = FETCH_REPLY_SOFT_BYTES
        for record in records:
            blob = encode_wire(record.value, context=self._encode_ctx)
            if out_blobs and budget - len(blob) < 0:
                break  # reply full; the client's next fetch resumes here
            budget -= len(blob)
            out_records.append(
                {
                    "offset": record.offset,
                    "key": record.key,
                    "timestamp": record.timestamp,
                    "headers": record.headers,
                }
            )
            out_blobs.append(blob)
        return response_meta(FetchResponse(out_records)), out_blobs

    def _handle_commit(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        offset = int(req.offset)
        if offset < 0:
            raise InvalidOffsetError(f"cannot commit negative offset {offset}")
        self._broker.commit(req.group, req.topic, int(req.partition), offset)
        return {}, []

    def _handle_committed(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        offset = self._broker.committed(req.group, req.topic, int(req.partition))
        return response_meta(CommittedResponse(offset)), []

    def _handle_reset_group(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        self._broker.reset_group(req.group, req.topics)
        return {}, []

    def _handle_create_topic(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        topic = self._broker.create_topic(
            req.topic, int(req.partitions), req.retention
        )
        return response_meta(TopicResponse(topic.num_partitions)), []

    def _handle_ensure_topic(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        topic = self._broker.ensure_topic(
            req.topic, int(req.partitions), req.retention
        )
        return response_meta(TopicResponse(topic.num_partitions)), []

    def _handle_list_topics(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        return response_meta(ListTopicsResponse(self._broker.topics())), []

    def _handle_partitions(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        topic = self._broker.topic(req.topic)
        return response_meta(TopicResponse(topic.num_partitions)), []

    def _handle_offsets(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        log = self._broker.topic(req.topic).log(int(req.partition))
        return response_meta(OffsetsResponse(log.start_offset, log.end_offset)), []

    def _handle_end_offsets(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        topic = self._broker.topic(req.topic)
        offsets = {str(p): end for p, end in topic.end_offsets().items()}
        return response_meta(EndOffsetsResponse(offsets)), []

    def _handle_heartbeat(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        with self._lock:
            self._heartbeats[req.worker] = {
                "info": req.info,
                "metrics": req.metrics,
                "last_seen": time.monotonic(),
            }
        return {}, []

    def _handle_cluster(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        workers = self.workers()
        if not req.include_metrics:
            workers = {
                name: {"info": w["info"], "age_s": w["age_s"]}
                for name, w in workers.items()
            }
        return response_meta(ClusterResponse(workers)), []

    def _handle_transport(
        self, conn: _Conn, req: Any, blobs: tuple
    ) -> tuple[dict, list]:
        return response_meta(TransportResponse(self._transport.describe())), []

    def _handle_lease(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        pairs = self._transport.lease(conn.token, int(req.count))
        return response_meta(LeaseResponse([list(p) for p in pairs])), []

    def _handle_release(self, conn: _Conn, req: Any, blobs: tuple) -> tuple[dict, list]:
        pairs = [(int(s), int(g)) for s, g in req.slots]
        released = self._transport.release(conn.token, pairs)
        return response_meta(ReleaseResponse(released)), []


def _error_meta(exc: Exception) -> dict:
    return {"error": type(exc).__name__, "message": str(exc)}
