"""TCP server exposing an in-process :class:`~repro.pubsub.broker.Broker`.

One :class:`BrokerServer` wraps one broker instance and serves the full
client surface the connectors need — produce, fetch (with blocking waits),
consumer-group commit/committed, topic admin — plus worker heartbeats for
the distributed runtime. Each accepted connection gets its own handler
thread; the broker itself is already thread-safe, so handlers call it
directly. Record values cross the wire through the serde wire codec and
are stored *decoded*, which keeps in-process producers/consumers attached
to the same broker fully interoperable with remote ones.

Pickle frames are refused by default (``allow_pickle=False``): a network
peer must not be able to run arbitrary bytecode in the broker process.
The distributed runtime, which owns both ends of its loopback links,
enables pickle explicitly.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import Any

from ..pubsub.broker import Broker
from ..pubsub.errors import InvalidOffsetError
from ..serde import decode_wire, encode_wire
from .errors import ConnectionClosedError, ProtocolError
from .frames import (
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    Frame,
    read_frame,
    write_frame,
)

logger = logging.getLogger(__name__)

#: cap on server-side blocking fetch waits, so a vanished client cannot
#: park a handler thread forever on a quiet partition
MAX_FETCH_BLOCK_S = 30.0


class BrokerServer:
    """Serves one broker over TCP until :meth:`stop`."""

    def __init__(
        self,
        broker: Broker,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_pickle: bool = False,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self._broker = broker
        self._host = host
        self._port = port
        self._allow_pickle = allow_pickle
        self._max_frame = max_frame
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        # worker name -> {"info": ..., "metrics": ..., "last_seen": ...}
        self._heartbeats: dict[str, dict[str, Any]] = {}

    @property
    def broker(self) -> Broker:
        return self._broker

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start accepting, and return the bound address."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="broker-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self, timeout: float = 5.0) -> None:
        """Close the listener and every live connection."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)

    def __enter__(self) -> "BrokerServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- worker registry (read by the dist coordinator) --------------------

    def workers(self) -> dict[str, dict[str, Any]]:
        """Latest heartbeat per worker: info, metrics, seconds since seen."""
        now = time.monotonic()
        with self._lock:
            return {
                name: {
                    "info": beat["info"],
                    "metrics": beat["metrics"],
                    "age_s": now - beat["last_seen"],
                }
                for name, beat in self._heartbeats.items()
            }

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed
            conn.settimeout(None)
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="broker-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    request = read_frame(conn, self._max_frame)
                except (ConnectionClosedError, OSError):
                    return
                except ProtocolError as exc:
                    self._safe_send(
                        conn,
                        Frame(TYPE_ERROR, 0, _error_meta(exc)),
                    )
                    return
                if request.type != TYPE_REQUEST:
                    self._safe_send(
                        conn,
                        Frame(
                            TYPE_ERROR,
                            request.corr_id,
                            _error_meta(ProtocolError("expected a request frame")),
                        ),
                    )
                    return
                try:
                    meta, blobs = self._dispatch(request)
                    reply = Frame(TYPE_RESPONSE, request.corr_id, meta, tuple(blobs))
                except Exception as exc:  # typed error travels to the client
                    reply = Frame(TYPE_ERROR, request.corr_id, _error_meta(exc))
                if not self._safe_send(conn, reply):
                    return
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _safe_send(self, conn: socket.socket, frame: Frame) -> bool:
        try:
            write_frame(conn, frame)
            return True
        except OSError:
            return False

    # -- operations ----------------------------------------------------------

    def _dispatch(self, request: Frame) -> tuple[dict, list[bytes]]:
        op = request.meta.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(f"unknown operation {op!r}")
        return handler(request.meta, request.blobs)

    def _op_ping(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        return {"ok": True}, []

    def _op_produce(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        value = decode_wire(blobs[0], allow_pickle=self._allow_pickle)
        if meta.get("auto_create", True):
            topic = self._broker.ensure_topic(
                meta["topic"], int(meta.get("partitions", 1))
            )
        else:
            topic = self._broker.topic(meta["topic"])
        partition, offset = topic.append(
            meta.get("key"),
            value,
            meta.get("timestamp"),
            meta.get("headers"),
            meta.get("partition"),
        )
        return {"partition": partition, "offset": offset}, []

    def _op_fetch(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        log = self._broker.topic(meta["topic"]).log(int(meta["partition"]))
        offset = int(meta["offset"])
        max_records = int(meta.get("max_records", 1024))
        timeout = float(meta.get("timeout", 0.0))
        if timeout > 0:
            records = log.read_blocking(
                offset, max_records, min(timeout, MAX_FETCH_BLOCK_S)
            )
        else:
            records = log.read(offset, max_records)
        out_records = []
        out_blobs = []
        for record in records:
            out_records.append(
                {
                    "offset": record.offset,
                    "key": record.key,
                    "timestamp": record.timestamp,
                    "headers": record.headers,
                }
            )
            out_blobs.append(encode_wire(record.value, self._allow_pickle))
        return {"records": out_records}, out_blobs

    def _op_commit(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        offset = int(meta["offset"])
        if offset < 0:
            raise InvalidOffsetError(f"cannot commit negative offset {offset}")
        self._broker.commit(meta["group"], meta["topic"], int(meta["partition"]), offset)
        return {}, []

    def _op_committed(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        offset = self._broker.committed(
            meta["group"], meta["topic"], int(meta["partition"])
        )
        return {"offset": offset}, []

    def _op_reset_group(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        self._broker.reset_group(meta["group"], meta.get("topics"))
        return {}, []

    def _op_create_topic(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        topic = self._broker.create_topic(
            meta["topic"], int(meta.get("partitions", 1)), meta.get("retention")
        )
        return {"partitions": topic.num_partitions}, []

    def _op_ensure_topic(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        topic = self._broker.ensure_topic(
            meta["topic"], int(meta.get("partitions", 1)), meta.get("retention")
        )
        return {"partitions": topic.num_partitions}, []

    def _op_list_topics(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        return {"topics": self._broker.topics()}, []

    def _op_partitions(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        topic = self._broker.topic(meta["topic"])
        return {"partitions": topic.num_partitions}, []

    def _op_offsets(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        log = self._broker.topic(meta["topic"]).log(int(meta["partition"]))
        return {"start": log.start_offset, "end": log.end_offset}, []

    def _op_end_offsets(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        topic = self._broker.topic(meta["topic"])
        return {
            "offsets": {str(p): end for p, end in topic.end_offsets().items()}
        }, []

    def _op_heartbeat(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        with self._lock:
            self._heartbeats[meta["worker"]] = {
                "info": meta.get("info", {}),
                "metrics": meta.get("metrics"),
                "last_seen": time.monotonic(),
            }
        return {}, []

    def _op_cluster(self, meta: dict, blobs: tuple) -> tuple[dict, list]:
        workers = self.workers()
        if not meta.get("include_metrics", False):
            workers = {
                name: {"info": w["info"], "age_s": w["age_s"]}
                for name, w in workers.items()
            }
        return {"workers": workers}, []


def _error_meta(exc: Exception) -> dict:
    return {"error": type(exc).__name__, "message": str(exc)}
