"""The shared-memory payload plane: ndarray slabs that never ride TCP.

On a multi-core box every stage boundary of a distributed deployment is a
loopback socket, so a 2000×2000 OT image pays serialization plus four
memory copies per hop for data that never leaves the machine. This module
gives the wire codec an ``ndarray-shm`` escape hatch: payload arrays are
written once into a slab of a :class:`SlabRing` (one
``multiprocessing.shared_memory`` block shared by the whole deployment)
and the frames crossing sockets carry ~100-byte **slab handles** instead
of pixels.

Ownership is explicit and server-authoritative:

* a producer **leases** slots over the broker connection (``lease`` op),
  writes pixels, and publishes a handle; the lease is charged to the
  connection, so a producer that dies before publishing is reclaimed the
  moment its socket closes;
* on produce the server **binds** the slot to the stored record via a
  :class:`SlabRef` — a lazy reference the broker keeps *instead of* the
  array. Fetches re-encode the handle (tiny frame); replay re-reads the
  same slab;
* when the ring is full, the server **reclaims** the oldest bound slot by
  materializing its pixels back into the broker's private memory (one
  memcpy) — or for free, if the record was already trimmed — so the ring
  recycles without ever losing replayable data. Producers whose lease
  request still comes back empty fall back to inline payloads; remote
  peers that cannot attach the ring never negotiate shm at all.

Staleness is detected with a per-slot generation seqlock: readers check
the generation before and after copying out, and a mismatch raises
:class:`StaleSlabError`, which the remote consumer answers by re-fetching
the record (the server will have inlined it by then).
"""

from __future__ import annotations

import json
import logging
import struct
import threading
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from ..serde import (
    SerdeContext,
    SerdeError,
    encode_ndarray_body,
    register_codec,
)

logger = logging.getLogger(__name__)

TAG_NDARRAY_SHM = b"S"

#: arrays smaller than this are cheaper inline than through a lease
SHM_MIN_BYTES = 32 * 1024

#: how many slots a producer leases per round trip (amortizes the op)
LEASE_BATCH = 8

_HEADER = struct.Struct("!4sIQ")  # magic, slots, slab_bytes
_GEN = struct.Struct("!Q")
_MAGIC = b"SLAB"

#: rings created by this process — attaching one of these must NOT
#: unregister it from the resource tracker (the tracker's cache is a set,
#: so the create-time registration would be lost and unlink would warn)
_CREATED: set[str] = set()


class StaleSlabError(SerdeError):
    """A slab handle's generation no longer matches the ring (slot reused).

    Recoverable: the record that carried the handle has been materialized
    server-side, so re-fetching the same offset returns inline pixels.
    """


class SlabRingError(SerdeError):
    """The ring is malformed or not attachable from this process."""


@dataclass(frozen=True)
class SlabHandle:
    """Wire identity of one slab payload (what the frame actually carries)."""

    ring: str
    slot: int
    gen: int
    dtype: str
    shape: tuple[int, ...]

    def encode(self) -> bytes:
        header = json.dumps(
            {
                "ring": self.ring,
                "slot": self.slot,
                "gen": self.gen,
                "dtype": self.dtype,
                "shape": list(self.shape),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        return TAG_NDARRAY_SHM + header

    @classmethod
    def decode(cls, body: bytes) -> "SlabHandle":
        try:
            meta = json.loads(body.decode("utf-8"))
            return cls(
                ring=meta["ring"],
                slot=int(meta["slot"]),
                gen=int(meta["gen"]),
                dtype=meta["dtype"],
                shape=tuple(int(n) for n in meta["shape"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise SerdeError(f"malformed ndarray-shm handle: {exc}") from exc

    @property
    def nbytes(self) -> int:
        import numpy as np

        count = 1
        for n in self.shape:
            count *= n
        return count * np.dtype(self.dtype).itemsize


class SlabRing:
    """A shared-memory block of fixed-size ndarray slabs + generation words.

    Layout: 16-byte header (magic, slot count, slab size), one big-endian
    ``u64`` generation per slot, then the slab data region. The *server*
    owns generation assignment; everyone else only ever reads them to
    validate handles (seqlock style).
    """

    def __init__(self, shm: Any, slots: int, slab_bytes: int, owner: bool) -> None:
        self._shm = shm
        self.slots = slots
        self.slab_bytes = slab_bytes
        self._owner = owner
        self._data_off = _HEADER.size + slots * _GEN.size
        self._closed = False

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, slots: int, slab_bytes: int) -> "SlabRing":
        from multiprocessing import shared_memory

        if slots < 1:
            raise SlabRingError("a slab ring needs at least one slot")
        if slab_bytes < 1:
            raise SlabRingError("slab_bytes must be positive")
        size = _HEADER.size + slots * _GEN.size + slots * slab_bytes
        shm = shared_memory.SharedMemory(create=True, size=size)
        _CREATED.add(shm.name)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, slots, slab_bytes)
        ring = cls(shm, slots, slab_bytes, owner=True)
        for slot in range(slots):
            ring.set_gen(slot, 0)
        return ring

    @classmethod
    def attach(cls, name: str) -> "SlabRing":
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise SlabRingError(f"shm ring {name!r} is not attachable: {exc}") from exc
        # Non-owners must not let the resource tracker unlink the ring when
        # they exit (Python registers every attach, not just the create).
        if name not in _CREATED:
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        try:
            magic, slots, slab_bytes = _HEADER.unpack_from(shm.buf, 0)
        except struct.error as exc:
            shm.close()
            raise SlabRingError(f"shm ring {name!r} is truncated") from exc
        if magic != _MAGIC:
            shm.close()
            raise SlabRingError(f"shm ring {name!r} has bad magic {magic!r}")
        return cls(shm, slots, slab_bytes, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- generations ---------------------------------------------------------

    def gen(self, slot: int) -> int:
        return _GEN.unpack_from(self._shm.buf, _HEADER.size + slot * _GEN.size)[0]

    def set_gen(self, slot: int, gen: int) -> None:
        _GEN.pack_into(self._shm.buf, _HEADER.size + slot * _GEN.size, gen)

    # -- slab I/O ------------------------------------------------------------

    def write(self, slot: int, array: Any) -> None:
        """Copy ``array`` (C-contiguous view taken) into ``slot``."""
        import numpy as np

        contiguous = np.ascontiguousarray(array)
        if contiguous.nbytes > self.slab_bytes:
            raise SlabRingError(
                f"array of {contiguous.nbytes} bytes exceeds the "
                f"{self.slab_bytes}-byte slab"
            )
        offset = self._data_off + slot * self.slab_bytes
        dst = np.ndarray(
            (contiguous.nbytes,), dtype=np.uint8, buffer=self._shm.buf, offset=offset
        )
        dst[:] = contiguous.view(np.uint8).reshape(-1)

    def read(self, handle: SlabHandle) -> Any:
        """Copy the slab out as a private ndarray, seqlock-validated."""
        import numpy as np

        if not 0 <= handle.slot < self.slots:
            raise SlabRingError(f"slab slot {handle.slot} out of range")
        if self.gen(handle.slot) != handle.gen:
            raise StaleSlabError(
                f"slab {handle.slot} of ring {self.name} was reclaimed "
                f"(gen {self.gen(handle.slot)} != handle gen {handle.gen})"
            )
        offset = self._data_off + handle.slot * self.slab_bytes
        src = np.ndarray(
            handle.shape,
            dtype=np.dtype(handle.dtype),
            buffer=self._shm.buf,
            offset=offset,
        )
        out = src.copy()
        if self.gen(handle.slot) != handle.gen:
            raise StaleSlabError(
                f"slab {handle.slot} of ring {self.name} was reclaimed mid-read"
            )
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        _CREATED.discard(self.name)
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


# -- attachment cache (consumer-side decode) ----------------------------------

_ATTACHED: dict[str, SlabRing] = {}
_ATTACH_LOCK = threading.Lock()


def attach_ring(name: str) -> SlabRing:
    """Attach (or reuse an attachment of) a ring by name, process-wide."""
    with _ATTACH_LOCK:
        ring = _ATTACHED.get(name)
        if ring is None:
            ring = SlabRing.attach(name)
            _ATTACHED[name] = ring
        return ring


def detach_ring(name: str) -> None:
    with _ATTACH_LOCK:
        ring = _ATTACHED.pop(name, None)
    if ring is not None:
        ring.close()


# -- server side ---------------------------------------------------------------


class SlabRef:
    """What the broker stores in place of a payload array.

    Holds the handle while the slab is live; :meth:`materialize` pulls the
    pixels into this process (used when the ring reclaims the slot). The
    server plane tracks these by weakref, so a record trimmed from the
    broker log frees its slot without any copy at all.
    """

    __slots__ = ("handle", "_ring", "_array", "_lock", "__weakref__")

    def __init__(self, handle: SlabHandle, ring: SlabRing) -> None:
        self.handle = handle
        self._ring = ring
        self._array: Any | None = None
        self._lock = threading.Lock()

    @property
    def array(self) -> Any | None:
        """The materialized pixels, or None while they still live in shm."""
        return self._array

    def materialize(self) -> Any:
        """Copy the pixels out of the ring into this process (idempotent)."""
        with self._lock:
            if self._array is None:
                self._array = self._ring.read(self.handle)
            return self._array


@dataclass
class _Lease:
    owner: int  # opaque connection token
    gen: int


class ShmServerPlane:
    """Server-side slab bookkeeping: lease, bind, reclaim, account.

    One instance per :class:`~repro.net.server.BrokerServer` running the
    shm transport. All state transitions happen under one lock; the slot
    population is fixed, so every operation is O(1) amortized.
    """

    def __init__(self, ring: SlabRing, min_bytes: int = SHM_MIN_BYTES) -> None:
        self.ring = ring
        self.min_bytes = min_bytes
        self._lock = threading.Lock()
        self._free: deque[int] = deque(range(ring.slots))
        self._leased: dict[int, _Lease] = {}
        self._bound: OrderedDict[int, weakref.ref] = OrderedDict()
        self._next_gen = 1
        # accounting, surfaced through stats()
        self.leases_granted = 0
        self.leases_reclaimed = 0
        self.slabs_bound = 0
        self.slabs_materialized = 0
        self.slabs_trimmed = 0

    def describe(self) -> dict[str, Any]:
        """The transport descriptor the server advertises to clients."""
        return {
            "name": "shm",
            "ring": self.ring.name,
            "slots": self.ring.slots,
            "slab_bytes": self.ring.slab_bytes,
            "min_bytes": self.min_bytes,
            "version": 1,
        }

    # -- lease / release -----------------------------------------------------

    def lease(self, owner: int, count: int) -> list[tuple[int, int]]:
        """Grant up to ``count`` (slot, gen) pairs to ``owner``.

        When the free list runs dry, bound slots are reclaimed oldest
        first (trimmed records for free, live ones via materialization).
        Returns fewer — possibly zero — pairs when the ring is truly full,
        which is the caller's cue to fall back to inline payloads.
        """
        granted: list[tuple[int, int]] = []
        with self._lock:
            for _ in range(max(0, count)):
                if not self._free and not self._reclaim_one_locked():
                    break
                slot = self._free.popleft()
                gen = self._next_gen
                self._next_gen += 1
                self.ring.set_gen(slot, gen)
                self._leased[slot] = _Lease(owner=owner, gen=gen)
                granted.append((slot, gen))
            self.leases_granted += len(granted)
        return granted

    def release(self, owner: int, pairs: list[tuple[int, int]]) -> int:
        """Return unused leases; foreign or stale pairs are ignored."""
        released = 0
        with self._lock:
            for slot, gen in pairs:
                lease = self._leased.get(slot)
                if lease is None or lease.owner != owner or lease.gen != gen:
                    continue
                del self._leased[slot]
                self._retire_locked(slot)
                released += 1
        return released

    def reclaim_owner(self, owner: int) -> int:
        """Free every unbound lease charged to ``owner`` (connection died)."""
        with self._lock:
            dead = [s for s, lease in self._leased.items() if lease.owner == owner]
            for slot in dead:
                del self._leased[slot]
                self._retire_locked(slot)
            self.leases_reclaimed += len(dead)
        return len(dead)

    # -- bind (produce) / encode hooks ---------------------------------------

    def bind(self, handle: SlabHandle) -> SlabRef:
        """Transition a leased slot to record-bound; returns its SlabRef.

        Called from the serde decode hook while the server stores a
        produced record. A handle that does not match a live lease (e.g. a
        replayed produce after a reclaim) yields a ref that will simply
        read stale and materialize to an error — but in practice the
        producing client just wrote it under a valid lease.
        """
        ref = SlabRef(handle, self.ring)
        with self._lock:
            lease = self._leased.get(handle.slot)
            if lease is not None and lease.gen == handle.gen:
                del self._leased[handle.slot]
                self._bound[handle.slot] = weakref.ref(ref)
                self.slabs_bound += 1
            elif handle.slot in self._bound:  # re-produce of a bound slab
                self._bound.move_to_end(handle.slot, last=False)
        return ref

    # -- reclamation ---------------------------------------------------------

    def _retire_locked(self, slot: int) -> None:
        self.ring.set_gen(slot, self._next_gen)  # invalidate outstanding handles
        self._next_gen += 1
        self._free.append(slot)

    def _reclaim_one_locked(self) -> bool:
        """Free the oldest bound slot; True when a slot was recovered."""
        while self._bound:
            slot, ref_w = self._bound.popitem(last=False)
            ref = ref_w()
            if ref is None:
                # the broker log already dropped the record: free for free
                self.slabs_trimmed += 1
                self._retire_locked(slot)
                return True
            if self.ring.gen(slot) != ref.handle.gen:
                # already invalidated (shouldn't happen, but never spin)
                self._retire_locked(slot)
                return True
            try:
                ref.materialize()
            except SerdeError:  # pragma: no cover - seqlock paranoia
                pass
            self.slabs_materialized += 1
            self._retire_locked(slot)
            return True
        return False

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "slots": self.ring.slots,
                "free": len(self._free),
                "leased": len(self._leased),
                "bound": len(self._bound),
                "leases_granted": self.leases_granted,
                "leases_reclaimed": self.leases_reclaimed,
                "slabs_bound": self.slabs_bound,
                "slabs_materialized": self.slabs_materialized,
                "slabs_trimmed": self.slabs_trimmed,
            }

    def close(self) -> None:
        self.ring.close()
        if self.ring._owner:
            self.ring.unlink()


# -- producer side -------------------------------------------------------------


class ShmProducerPlane:
    """Client-side slab writer: a pool of leased slots, refilled in batches.

    Not thread-safe by design — each producer owns a private connection
    and a private plane, mirroring the one-connection-per-producer rule of
    :mod:`repro.net.client`.
    """

    def __init__(
        self,
        ring: SlabRing,
        lease_fn: Any,
        release_fn: Any,
        min_bytes: int = SHM_MIN_BYTES,
        lease_batch: int = LEASE_BATCH,
    ) -> None:
        self._ring = ring
        self._lease_fn = lease_fn
        self._release_fn = release_fn
        self.min_bytes = min_bytes
        self._lease_batch = max(1, lease_batch)
        self._pool: deque[tuple[int, int]] = deque()
        self._starved = False  # last refill came back empty
        self.slabs_written = 0
        self.inline_fallbacks = 0

    def eligible(self, array: Any) -> bool:
        return self.min_bytes <= array.nbytes <= self._ring.slab_bytes

    def put(self, array: Any) -> SlabHandle | None:
        """Write ``array`` into a leased slab; None = fall back to inline."""
        import numpy as np

        if not self._pool:
            try:
                self._pool.extend(self._lease_fn(self._lease_batch))
            except Exception:  # lease op unavailable: permanent inline
                self._pool.clear()
                self._starved = True
                self.inline_fallbacks += 1
                return None
            if not self._pool:
                self._starved = True
                self.inline_fallbacks += 1
                return None
        self._starved = False
        slot, gen = self._pool.popleft()
        contiguous = np.ascontiguousarray(array)
        self._ring.write(slot, contiguous)
        self.slabs_written += 1
        return SlabHandle(
            ring=self._ring.name,
            slot=slot,
            gen=gen,
            dtype=contiguous.dtype.str,
            shape=tuple(contiguous.shape),
        )

    def close(self) -> None:
        """Return every unused lease to the server (best effort)."""
        if self._pool:
            pairs = list(self._pool)
            self._pool.clear()
            try:
                self._release_fn(pairs)
            except Exception:  # pragma: no cover - connection already gone
                pass


# -- the ndarray-shm wire codec ------------------------------------------------


def _matches_shm(value: Any, ctx: SerdeContext) -> bool:
    if isinstance(value, SlabRef):
        return True
    plane = ctx.options.get("shm_producer")
    if plane is None:
        return False
    import numpy as np

    return (
        isinstance(value, np.ndarray)
        and not value.dtype.hasobject
        and plane.eligible(value)
    )


def _encode_shm(value: Any, ctx: SerdeContext) -> bytes:
    if isinstance(value, SlabRef):
        array = value.array
        if array is not None:  # reclaimed: the pixels live here now
            return encode_ndarray_body(array)
        return value.handle.encode()
    plane = ctx.options["shm_producer"]
    handle = plane.put(value)
    if handle is None:  # ring full (or lease path gone): inline fallback
        return encode_ndarray_body(value)
    return handle.encode()


def _decode_shm(body: bytes, ctx: SerdeContext) -> Any:
    handle = SlabHandle.decode(body)
    plane = ctx.options.get("shm_server")
    if plane is not None and handle.ring == plane.ring.name:
        return plane.bind(handle)
    ring = ctx.options.get("shm_ring")
    if ring is None or ring.name != handle.ring:
        ring = attach_ring(handle.ring)
    return ring.read(handle)


register_codec(
    TAG_NDARRAY_SHM,
    _encode_shm,
    _decode_shm,
    matches=_matches_shm,
    priority=90,  # above the plain ndarray codec: claims eligible arrays
    name="ndarray-shm",
)
