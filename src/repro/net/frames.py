"""Length-prefixed binary wire frames.

Every exchange on a broker connection is one request frame answered by one
response (or error) frame. The layout is deliberately minimal::

    header   !2sBBII   magic "SR" | version | type | corr_id | body_len
    body     !I meta_len | meta (UTF-8 JSON) | !I blob_count
             then per blob: !I len | raw bytes

The JSON ``meta`` names the operation and its scalar arguments; ``blobs``
carry opaque payloads (serde-encoded record values) so binary data never
rides through JSON. ``corr_id`` correlates a response with its request —
clients check it even over a single-in-flight connection, so a desynced
stream is detected instead of silently mis-attributed.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

from .errors import ConnectionClosedError, ProtocolError

MAGIC = b"SR"
VERSION = 1

TYPE_REQUEST = 0
TYPE_RESPONSE = 1
TYPE_ERROR = 2

HEADER = struct.Struct("!2sBBII")
_U32 = struct.Struct("!I")

#: refuse frames larger than this (a single OT layer image is ~4 MB at the
#: paper's 2000 px resolution; 64 MiB leaves ample headroom)
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: int
    corr_id: int
    meta: dict
    blobs: tuple[bytes, ...] = ()


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame, header included."""
    meta = json.dumps(frame.meta, separators=(",", ":")).encode("utf-8")
    parts = [_U32.pack(len(meta)), meta, _U32.pack(len(frame.blobs))]
    for blob in frame.blobs:
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    body = b"".join(parts)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds the maximum")
    header = HEADER.pack(MAGIC, VERSION, frame.type, frame.corr_id, len(body))
    return header + body


def decode_body(frame_type: int, corr_id: int, body: bytes) -> Frame:
    """Parse a frame body (everything after the header)."""
    try:
        meta_len = _U32.unpack_from(body)[0]
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
        cursor = 4 + meta_len
        blob_count = _U32.unpack_from(body, cursor)[0]
        cursor += 4
        blobs = []
        for _ in range(blob_count):
            blob_len = _U32.unpack_from(body, cursor)[0]
            cursor += 4
            blobs.append(body[cursor : cursor + blob_len])
            cursor += blob_len
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("frame meta must be a JSON object")
    return Frame(type=frame_type, corr_id=corr_id, meta=meta, blobs=tuple(blobs))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ConnectionClosedError."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosedError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, max_frame: int = MAX_FRAME_BYTES) -> Frame:
    """Read one complete frame from a socket."""
    header = _recv_exact(sock, HEADER.size)
    magic, version, frame_type, corr_id, body_len = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (not a strata-repro peer?)")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if frame_type not in (TYPE_REQUEST, TYPE_RESPONSE, TYPE_ERROR):
        raise ProtocolError(f"unknown frame type {frame_type}")
    if body_len > max_frame:
        raise ProtocolError(f"frame body of {body_len} bytes exceeds the maximum")
    body = _recv_exact(sock, body_len)
    return decode_body(frame_type, corr_id, body)


def write_frame(sock: socket.socket, frame: Frame) -> None:
    """Write one complete frame to a socket."""
    sock.sendall(encode_frame(frame))
