"""Length-prefixed binary wire frames.

Every exchange on a broker connection is one request frame answered by one
response (or error) frame. The layout is deliberately minimal::

    header   !2sBBII   magic "SR" | version | type | corr_id | body_len
    body     !I meta_len | meta (UTF-8 JSON) | !I blob_count
             then per blob: !I len | raw bytes

The JSON ``meta`` names the operation and its scalar arguments; ``blobs``
carry opaque payloads (serde-encoded record values) so binary data never
rides through JSON. ``corr_id`` correlates a response with its request —
clients check it even over a single-in-flight connection, so a desynced
stream is detected instead of silently mis-attributed.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

from .errors import ConnectionClosedError, ProtocolError

MAGIC = b"SR"
VERSION = 1

TYPE_REQUEST = 0
TYPE_RESPONSE = 1
TYPE_ERROR = 2

HEADER = struct.Struct("!2sBBII")
_U32 = struct.Struct("!I")

#: refuse frames larger than this (a single OT layer image is ~4 MB at the
#: paper's 2000 px resolution; 64 MiB leaves ample headroom)
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: int
    corr_id: int
    meta: dict
    blobs: tuple[bytes, ...] = ()


def frame_iovecs(frame: Frame) -> list[bytes]:
    """The frame as a buffer list for vectored I/O, header first.

    Large blobs are *referenced*, not copied into one contiguous byte
    string — a 4 MB image payload contributes its original ``bytes``
    object to the list, so the only copy left on the send path is the
    kernel's. Byte-for-byte identical to :func:`encode_frame` once
    concatenated.
    """
    meta = json.dumps(frame.meta, separators=(",", ":")).encode("utf-8")
    body_len = 8 + len(meta) + sum(4 + len(blob) for blob in frame.blobs)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {body_len} bytes exceeds the maximum")
    head = (
        HEADER.pack(MAGIC, VERSION, frame.type, frame.corr_id, body_len)
        + _U32.pack(len(meta))
        + meta
        + _U32.pack(len(frame.blobs))
    )
    vecs = [head]
    for blob in frame.blobs:
        vecs.append(_U32.pack(len(blob)))
        vecs.append(blob)
    return vecs


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame, header included."""
    return b"".join(frame_iovecs(frame))


def decode_body(frame_type: int, corr_id: int, body: bytes) -> Frame:
    """Parse a frame body (everything after the header)."""
    try:
        meta_len = _U32.unpack_from(body)[0]
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
        cursor = 4 + meta_len
        blob_count = _U32.unpack_from(body, cursor)[0]
        cursor += 4
        blobs = []
        for _ in range(blob_count):
            blob_len = _U32.unpack_from(body, cursor)[0]
            cursor += 4
            blobs.append(body[cursor : cursor + blob_len])
            cursor += blob_len
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("frame meta must be a JSON object")
    return Frame(type=frame_type, corr_id=corr_id, meta=meta, blobs=tuple(blobs))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ConnectionClosedError."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosedError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, max_frame: int = MAX_FRAME_BYTES) -> Frame:
    """Read one complete frame from a socket."""
    header = _recv_exact(sock, HEADER.size)
    magic, version, frame_type, corr_id, body_len = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (not a strata-repro peer?)")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if frame_type not in (TYPE_REQUEST, TYPE_RESPONSE, TYPE_ERROR):
        raise ProtocolError(f"unknown frame type {frame_type}")
    if body_len > max_frame:
        raise ProtocolError(f"frame body of {body_len} bytes exceeds the maximum")
    body = _recv_exact(sock, body_len)
    return decode_body(frame_type, corr_id, body)


#: sendmsg is capped at IOV_MAX buffers per call (1024 on Linux); stay
#: comfortably below so one burst never trips EINVAL
_IOV_BATCH = 512


def write_frames(sock: socket.socket, frames: list[Frame]) -> None:
    """Write many frames with vectored I/O (one ``sendmsg`` per burst).

    The batched producer path sends dozens of small control frames per
    flush; gathering them into a single syscall is what amortizes the
    per-frame cost. Partial sends are resumed from the exact buffer
    offset, so the stream stays byte-identical to sequential
    :func:`write_frame` calls.
    """
    vecs: list[bytes] = []
    for frame in frames:
        vecs.extend(frame_iovecs(frame))
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX fallback
        sock.sendall(b"".join(vecs))
        return
    index = 0
    offset = 0  # bytes of vecs[index] already sent
    while index < len(vecs):
        window: list[memoryview | bytes] = []
        if offset:
            window.append(memoryview(vecs[index])[offset:])
            window.extend(vecs[index + 1 : index + _IOV_BATCH])
        else:
            window = vecs[index : index + _IOV_BATCH]
        sent = sock.sendmsg(window)
        sent += offset
        while index < len(vecs) and sent >= len(vecs[index]):
            sent -= len(vecs[index])
            index += 1
        offset = sent


def write_frame(sock: socket.socket, frame: Frame) -> None:
    """Write one complete frame to a socket."""
    write_frames(sock, [frame])


class FrameDecoder:
    """Incremental frame parser over a growing byte buffer.

    The async server reads whatever the socket has and feeds it here;
    :meth:`frames` yields every complete frame and keeps the trailing
    partial bytes for the next read. Raises :class:`ProtocolError` exactly
    as :func:`read_frame` would.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self._max_frame = max_frame

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def frames(self):
        """Yield complete frames parsed so far (generator)."""
        while True:
            if len(self._buf) < HEADER.size:
                return
            magic, version, frame_type, corr_id, body_len = HEADER.unpack_from(
                self._buf
            )
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad magic {bytes(magic)!r} (not a strata-repro peer?)"
                )
            if version != VERSION:
                raise ProtocolError(f"unsupported protocol version {version}")
            if frame_type not in (TYPE_REQUEST, TYPE_RESPONSE, TYPE_ERROR):
                raise ProtocolError(f"unknown frame type {frame_type}")
            if body_len > self._max_frame:
                raise ProtocolError(
                    f"frame body of {body_len} bytes exceeds the maximum"
                )
            end = HEADER.size + body_len
            if len(self._buf) < end:
                return
            body = bytes(self._buf[HEADER.size : end])
            del self._buf[:end]
            yield decode_body(frame_type, corr_id, body)
