"""Exception hierarchy for the network transport."""

from __future__ import annotations


class NetError(Exception):
    """Base class for all repro.net errors."""


class ProtocolError(NetError):
    """A frame violated the wire protocol (bad magic, version, size)."""


class ConnectionClosedError(NetError):
    """The peer closed the connection mid-exchange."""


class RpcError(NetError):
    """The server reported an error with no richer local mapping.

    ``kind`` carries the server-side exception class name so callers can
    still branch on failure modes the client does not model explicitly.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
