"""Clients for a networked broker.

:class:`BrokerClient` is the connection factory plus the broker-shaped
admin surface (``ensure_topic``/``topics``/``committed``/...) that the
pub/sub connectors duck-type against. :class:`RemoteProducer` and
:class:`RemoteConsumer` mirror the in-process
:class:`~repro.pubsub.producer.Producer` / :class:`~repro.pubsub.consumer.
Consumer` interfaces exactly, so ``PubSubWriterSink``/``PubSubReaderSource``
work unchanged over TCP.

Requests are built through the typed op table in :mod:`repro.net.ops`
(:meth:`Connection.call`), so the client has no hand-rolled meta dicts to
drift from the server; the string :meth:`Connection.request` survives for
raw protocol poking. On first use the client negotiates the payload
transport (``transport`` op): a server running the shm plane advertises
its slab ring, and a client on the same machine attaches it so ndarray
payloads stop riding TCP. Old servers answer the negotiation with an
unknown-op error, new clients treat that as tcp — both directions of
version skew degrade instead of breaking.

Each producer/consumer owns a private connection: a consumer's blocking
fetch parks its connection server-side, and sharing that socket with a
producer in another scheduler thread would stall the whole stage. Every
connection allows one in-flight request and verifies the response
correlation id.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Callable, Iterator

from ..pubsub.errors import (
    BrokerClosedError,
    InvalidOffsetError,
    TopicExistsError,
    UnknownTopicError,
)
from ..serde import PickleRefusedError, SerdeContext, SerdeError, decode_wire, encode_wire
from .errors import ProtocolError, RpcError
from .frames import (
    MAX_FRAME_BYTES,
    TYPE_ERROR,
    TYPE_REQUEST,
    Frame,
    read_frame,
    write_frame,
)
from .ops import (
    OPS,
    FetchRequest,
    LeaseRequest,
    ProduceBatchRequest,
    ProduceRequest,
    ReleaseRequest,
    parse_response,
    request_meta,
)
from .shm import SlabRingError, StaleSlabError
from .transport import ClientTransport, connect_transport

#: server-side exception names mapped back to local exception types
_ERROR_TYPES: dict[str, type[Exception]] = {
    "UnknownTopicError": UnknownTopicError,
    "TopicExistsError": TopicExistsError,
    "InvalidOffsetError": InvalidOffsetError,
    "BrokerClosedError": BrokerClosedError,
    "PickleRefusedError": PickleRefusedError,
    "SerdeError": SerdeError,
    "StaleSlabError": StaleSlabError,
    "SlabRingError": SlabRingError,
    "ProtocolError": ProtocolError,
    "ValueError": ValueError,
}

#: a stale slab handle means the server reclaimed the slot mid-fetch; the
#: record is materialized server-side by then, so a couple of refetches
#: always converge
_STALE_RETRIES = 3


def _raise_remote(meta: dict) -> None:
    kind = meta.get("error", "RpcError")
    message = meta.get("message", "")
    exc_type = _ERROR_TYPES.get(kind)
    if exc_type is not None:
        raise exc_type(message)
    raise RpcError(kind, message)


class Connection:
    """One socket to a broker server; single in-flight request."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=10.0)
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._max_frame = max_frame
        self._corr = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False

    def request(
        self, op: str, meta: dict | None = None, blobs: tuple[bytes, ...] = ()
    ) -> Frame:
        """Send one request and return its (validated) response frame."""
        payload = {"op": op}
        if meta:
            payload.update(meta)
        with self._lock:
            if self._closed:
                raise BrokerClosedError("connection is closed")
            corr_id = next(self._corr) & 0xFFFFFFFF
            write_frame(self._sock, Frame(TYPE_REQUEST, corr_id, payload, blobs))
            reply = read_frame(self._sock, self._max_frame)
        if reply.corr_id != corr_id:
            raise ProtocolError(
                f"response correlation id {reply.corr_id} != request {corr_id}"
            )
        if reply.type == TYPE_ERROR:
            _raise_remote(reply.meta)
        return reply

    def call(
        self, name: str, request: Any, blobs: tuple[bytes, ...] = ()
    ) -> tuple[Any, Frame]:
        """Issue a typed request; returns ``(typed response, raw frame)``."""
        spec = OPS[name]
        meta = request_meta(name, request)
        del meta["op"]  # request() re-adds it
        frame = self.request(name, meta, blobs)
        return parse_response(spec, frame.meta), frame

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass


class BrokerClient:
    """Endpoint handle: admin surface + producer/consumer factory.

    Duck-types the slice of :class:`~repro.pubsub.broker.Broker` that the
    connectors and the distributed runtime use; anything record-weight
    goes through a dedicated :class:`RemoteProducer`/:class:`RemoteConsumer`
    with its own connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        allow_pickle: bool = False,
        timeout: float | None = 60.0,
    ) -> None:
        self._host = host
        self._port = port
        self._allow_pickle = allow_pickle
        self._timeout = timeout
        self._admin: Connection | None = None
        self._lock = threading.Lock()
        self._transport: ClientTransport | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self._port)

    @property
    def allow_pickle(self) -> bool:
        return self._allow_pickle

    def connect(self) -> Connection:
        """A fresh private connection (caller owns its lifecycle)."""
        return Connection(self._host, self._port, timeout=self._timeout)

    def _admin_conn(self) -> Connection:
        with self._lock:
            if self._admin is None:
                self._admin = self.connect()
            return self._admin

    def close(self) -> None:
        with self._lock:
            if self._admin is not None:
                self._admin.close()
                self._admin = None

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- payload transport ----------------------------------------------------

    @property
    def transport(self) -> ClientTransport:
        """The negotiated payload transport (lazily resolved, cached).

        Any failure to negotiate or attach — an old server that has never
        heard of the ``transport`` op, an shm ring on another machine —
        resolves to plain tcp.
        """
        with self._lock:
            if self._transport is not None:
                return self._transport
        descriptor: dict[str, Any] = {"name": "tcp"}
        try:
            reply = self._admin_conn().request("transport")
            advertised = reply.meta.get("transport")
            if isinstance(advertised, dict):
                descriptor = advertised
        except (ProtocolError, RpcError):
            pass  # pre-transport server: tcp it is
        transport = connect_transport(descriptor)
        with self._lock:
            if self._transport is None:
                self._transport = transport
            return self._transport

    # -- readiness ----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._admin_conn().request("ping").meta.get("ok"))

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Block until the server answers a ping (connection retries)."""
        import time

        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                if self.ping():
                    return
            except (OSError, ProtocolError) as exc:
                last = exc
                with self._lock:
                    if self._admin is not None:
                        self._admin.close()
                        self._admin = None
            time.sleep(interval)
        raise TimeoutError(
            f"broker at {self._host}:{self._port} not ready within {timeout}s"
        ) from last

    # -- broker-shaped admin surface ----------------------------------------

    def create_topic(
        self, name: str, partitions: int = 1, retention: int | None = None
    ) -> int:
        reply = self._admin_conn().request(
            "create_topic",
            {"topic": name, "partitions": partitions, "retention": retention},
        )
        return int(reply.meta["partitions"])

    def ensure_topic(
        self, name: str, partitions: int = 1, retention: int | None = None
    ) -> int:
        reply = self._admin_conn().request(
            "ensure_topic",
            {"topic": name, "partitions": partitions, "retention": retention},
        )
        return int(reply.meta["partitions"])

    def topics(self) -> list[str]:
        return list(self._admin_conn().request("list_topics").meta["topics"])

    def has_topic(self, name: str) -> bool:
        return name in self.topics()

    def partitions(self, topic: str) -> int:
        return int(
            self._admin_conn().request("partitions", {"topic": topic}).meta["partitions"]
        )

    def end_offsets(self, topic: str) -> dict[int, int]:
        reply = self._admin_conn().request("end_offsets", {"topic": topic})
        return {int(p): int(end) for p, end in reply.meta["offsets"].items()}

    def committed(self, group: str, topic: str, partition: int) -> int | None:
        reply = self._admin_conn().request(
            "committed", {"group": group, "topic": topic, "partition": partition}
        )
        offset = reply.meta["offset"]
        return None if offset is None else int(offset)

    def commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        self._admin_conn().request(
            "commit",
            {"group": group, "topic": topic, "partition": partition, "offset": offset},
        )

    def reset_group(self, group: str, topics: list[str] | None = None) -> None:
        self._admin_conn().request(
            "reset_group", {"group": group, "topics": list(topics) if topics else None}
        )

    # -- distributed-runtime surface ----------------------------------------

    def heartbeat(
        self,
        worker: str,
        info: dict | None = None,
        metrics: dict | None = None,
    ) -> None:
        self._admin_conn().request(
            "heartbeat", {"worker": worker, "info": info or {}, "metrics": metrics}
        )

    def cluster(self, include_metrics: bool = False) -> dict[str, dict]:
        reply = self._admin_conn().request(
            "cluster", {"include_metrics": include_metrics}
        )
        return dict(reply.meta["workers"])

    # -- client factory -------------------------------------------------------

    def producer(
        self, auto_create: bool = True, default_partitions: int = 1
    ) -> "RemoteProducer":
        transport = self.transport
        conn = self.connect()

        def lease_fn(count: int) -> list[tuple[int, int]]:
            response, _ = conn.call("lease", LeaseRequest(count=count))
            return [(int(s), int(g)) for s, g in response.slots]

        def release_fn(pairs: list[tuple[int, int]]) -> int:
            response, _ = conn.call(
                "release", ReleaseRequest(slots=[list(p) for p in pairs])
            )
            return int(response.released)

        options = transport.producer_options(lease_fn, release_fn)
        return RemoteProducer(
            conn,
            allow_pickle=self._allow_pickle,
            auto_create=auto_create,
            default_partitions=default_partitions,
            serde_options=options,
            on_close=lambda: transport.release_producer(options),
        )

    def consumer(
        self,
        group: str,
        topics: list[str] | None = None,
        auto_offset_reset: str = "earliest",
        auto_commit: bool = True,
    ) -> "RemoteConsumer":
        transport = self.transport
        return RemoteConsumer(
            self.connect(),
            group,
            topics,
            auto_offset_reset=auto_offset_reset,
            auto_commit=auto_commit,
            allow_pickle=self._allow_pickle,
            serde_options=transport.consumer_options(),
        )


class RemoteProducer:
    """Drop-in :class:`~repro.pubsub.producer.Producer` over a connection.

    Under the shm transport the serde context carries this connection's
    producer plane, so eligible ndarray payloads go into leased slabs and
    only their handles ride the socket. :meth:`send_batch` publishes many
    records in a single ``produce_batch`` frame written with vectored I/O
    — the path the pub/sub writer sink uses to amortize round trips.
    """

    def __init__(
        self,
        conn: Connection,
        allow_pickle: bool = False,
        auto_create: bool = True,
        default_partitions: int = 1,
        serde_options: dict[str, Any] | None = None,
        on_close: Callable[[], None] | None = None,
    ) -> None:
        self._conn = conn
        self._allow_pickle = allow_pickle
        self._auto_create = auto_create
        self._default_partitions = default_partitions
        self._ctx = SerdeContext(allow_pickle, options=serde_options or {})
        self._on_close = on_close
        self._sent = 0

    @property
    def records_sent(self) -> int:
        return self._sent

    def send(
        self,
        topic: str,
        value: Any,
        key: str | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
        partition: int | None = None,
    ) -> tuple[int, int]:
        """Publish one record; returns its ``(partition, offset)``."""
        blob = encode_wire(value, context=self._ctx)
        response, _ = self._conn.call(
            "produce",
            ProduceRequest(
                topic=topic,
                key=key,
                timestamp=timestamp,
                headers=headers,
                partition=partition,
                auto_create=self._auto_create,
                partitions=self._default_partitions,
            ),
            (blob,),
        )
        self._sent += 1
        return int(response.partition), int(response.offset)

    def send_batch(
        self, topic: str, records: list[dict[str, Any]]
    ) -> list[tuple[int, int]]:
        """Publish many records to one topic in a single round trip.

        Each record is a dict with ``value`` plus optional ``key`` /
        ``timestamp`` / ``headers`` / ``partition``. Returns the
        ``(partition, offset)`` pairs in input order.
        """
        if not records:
            return []
        blobs = tuple(
            encode_wire(record["value"], context=self._ctx) for record in records
        )
        entries = [
            {
                "key": record.get("key"),
                "timestamp": record.get("timestamp"),
                "headers": record.get("headers"),
                "partition": record.get("partition"),
            }
            for record in records
        ]
        response, _ = self._conn.call(
            "produce_batch",
            ProduceBatchRequest(
                topic=topic,
                entries=entries,
                auto_create=self._auto_create,
                partitions=self._default_partitions,
            ),
            blobs,
        )
        self._sent += len(records)
        return [(int(p), int(o)) for p, o in response.results]

    def partitions_of(self, topic: str) -> int:
        """Partition count of ``topic`` (for per-partition broadcasts)."""
        return int(
            self._conn.request("partitions", {"topic": topic}).meta["partitions"]
        )

    def close(self) -> None:
        if self._on_close is not None:
            try:
                self._on_close()  # returns unused slab leases over the conn
            except (OSError, BrokerClosedError, RpcError):  # pragma: no cover
                pass
            self._on_close = None
        self._conn.close()


class RemoteConsumer:
    """Drop-in :class:`~repro.pubsub.consumer.Consumer` over a connection.

    Mirrors the in-process consumer faithfully, including the Kafka-style
    behaviours the connectors rely on: position resolution from committed
    offsets, ``auto_offset_reset``, the reset-to-earliest fallback when
    retention trimmed past a position, and the blocking second pass on the
    first assigned partition.
    """

    def __init__(
        self,
        conn: Connection,
        group: str,
        topics: list[str] | None = None,
        auto_offset_reset: str = "earliest",
        auto_commit: bool = True,
        allow_pickle: bool = False,
        serde_options: dict[str, Any] | None = None,
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValueError("auto_offset_reset must be 'earliest' or 'latest'")
        self._conn = conn
        self._group = group
        self._auto_offset_reset = auto_offset_reset
        self._auto_commit = auto_commit
        self._allow_pickle = allow_pickle
        self._ctx = SerdeContext(allow_pickle, options=serde_options or {})
        self._positions: dict[tuple[str, int], int] = {}
        self._assignment: list[tuple[str, int]] = []
        self._subscribed: list[str] = []
        if topics:
            self.subscribe(topics)

    @property
    def group(self) -> str:
        return self._group

    @property
    def assignment(self) -> list[tuple[str, int]]:
        return list(self._assignment)

    def subscribe(self, topics: list[str]) -> None:
        """Subscribe to all partitions of the given topics."""
        self._subscribed = list(topics)
        self._assignment = []
        for name in topics:
            partitions = int(
                self._conn.request("partitions", {"topic": name}).meta["partitions"]
            )
            for partition in range(partitions):
                self._assignment.append((name, partition))
        self._resolve_positions()

    def assign(self, partitions: list[tuple[str, int]]) -> None:
        """Manually assign specific (topic, partition) pairs."""
        self._assignment = [(t, int(p)) for t, p in partitions]
        self._resolve_positions()

    def _log_offsets(self, topic: str, partition: int) -> tuple[int, int]:
        meta = self._conn.request(
            "offsets", {"topic": topic, "partition": partition}
        ).meta
        return int(meta["start"]), int(meta["end"])

    def _resolve_positions(self) -> None:
        for name, partition in self._assignment:
            if (name, partition) in self._positions:
                continue
            committed = self.committed(name, partition)
            if committed is not None:
                self._positions[(name, partition)] = committed
                continue
            start, end = self._log_offsets(name, partition)
            self._positions[(name, partition)] = (
                start if self._auto_offset_reset == "earliest" else end
            )

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Set the next read position for one partition."""
        if (topic, partition) not in self._assignment:
            raise InvalidOffsetError(f"{topic}/{partition} is not assigned")
        self._positions[(topic, partition)] = offset

    def position(self, topic: str, partition: int) -> int:
        """Next offset this consumer will read for the partition."""
        return self._positions[(topic, partition)]

    def _fetch_frame(
        self, topic: str, partition: int, offset: int, max_records: int, timeout: float
    ) -> tuple[Any, Frame]:
        return self._conn.call(
            "fetch",
            FetchRequest(
                topic=topic,
                partition=partition,
                offset=offset,
                max_records=max_records,
                timeout=timeout,
            ),
        )

    def _fetch(
        self, topic: str, partition: int, max_records: int, timeout: float
    ) -> list:
        from ..pubsub.message import Message

        for attempt in range(_STALE_RETRIES):
            try:
                response, frame = self._fetch_frame(
                    topic,
                    partition,
                    self._positions[(topic, partition)],
                    max_records,
                    timeout,
                )
            except InvalidOffsetError:
                # Retention trimmed past our position: skip to the oldest
                # retained record, as Kafka's 'earliest' reset would.
                start, _end = self._log_offsets(topic, partition)
                self._positions[(topic, partition)] = start
                response, frame = self._fetch_frame(
                    topic, partition, start, max_records, timeout
                )
            try:
                records = []
                for record_meta, blob in zip(response.records, frame.blobs):
                    records.append(
                        Message(
                            topic=topic,
                            partition=partition,
                            offset=int(record_meta["offset"]),
                            key=record_meta["key"],
                            value=decode_wire(blob, context=self._ctx),
                            timestamp=float(record_meta["timestamp"]),
                            headers=dict(record_meta.get("headers") or {}),
                        )
                    )
            except StaleSlabError:
                # The server reclaimed a slab between encoding the reply
                # and our copy-out; the record is materialized broker-side
                # now, so the refetch returns inline bytes. Position was
                # not advanced, so nothing is skipped.
                continue
            if records:
                self._positions[(topic, partition)] = records[-1].offset + 1
            return records
        raise StaleSlabError(
            f"fetch of {topic}/{partition} kept racing slab reclamation "
            f"({_STALE_RETRIES} attempts)"
        )

    def poll(self, max_records: int = 1024, timeout: float = 0.0) -> list:
        """Fetch available records across the assignment.

        Same contract as the in-process consumer: one non-blocking pass
        over every assigned partition, then — if nothing arrived and a
        timeout was given — one blocking fetch on the first partition.
        """
        out: list = []
        budget = max_records
        for name, partition in self._assignment:
            if budget <= 0:
                break
            records = self._fetch(name, partition, budget, 0.0)
            if records:
                out.extend(records)
                budget -= len(records)
        if not out and timeout > 0 and self._assignment:
            name, partition = self._assignment[0]
            out.extend(self._fetch(name, partition, max_records, timeout))
        if out and self._auto_commit:
            self.commit()
        return out

    def commit(
        self,
        topic: str | None = None,
        partition: int | None = None,
        offset: int | None = None,
    ) -> None:
        """Commit offsets to the broker (whole-assignment or per-partition)."""
        if topic is None:
            if partition is not None or offset is not None:
                raise ValueError("partition/offset require a topic")
            for (name, part), position in self._positions.items():
                if (name, part) in self._assignment:
                    self._commit_one(name, part, position)
            return
        if partition is None:
            raise ValueError("per-partition commit requires a partition")
        if offset is None:
            if (topic, partition) not in self._positions:
                raise InvalidOffsetError(f"{topic}/{partition} has no position")
            offset = self._positions[(topic, partition)]
        if offset < 0:
            raise InvalidOffsetError(f"cannot commit negative offset {offset}")
        self._commit_one(topic, partition, offset)

    def _commit_one(self, topic: str, partition: int, offset: int) -> None:
        self._conn.request(
            "commit",
            {
                "group": self._group,
                "topic": topic,
                "partition": partition,
                "offset": offset,
            },
        )

    def committed(self, topic: str, partition: int) -> int | None:
        """Offset last committed for this group+partition (None if never)."""
        offset = self._conn.request(
            "committed",
            {"group": self._group, "topic": topic, "partition": partition},
        ).meta["offset"]
        return None if offset is None else int(offset)

    def close(self) -> None:
        self._conn.close()

    def __iter__(self) -> Iterator:
        """Drain everything currently available (non-blocking)."""
        while True:
            batch = self.poll()
            if not batch:
                return
            yield from batch
