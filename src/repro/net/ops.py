"""The broker RPC surface as one typed op table.

Historically the server grew an ``_op_<name>`` method per operation and
the client grew a hand-rolled mirror method, so adding one op meant four
edits that could drift apart. This module is the single source of truth
both sides share: every operation is a **request dataclass**, a
**response dataclass**, and one :class:`OpSpec` row registering them
under the wire name. The server dispatches requests through the table
(:func:`parse_request`), the client builds them through it
(:func:`request_meta`), and adding an operation — the shm payload plane's
``lease``/``release``, for example — is one entry here plus one handler.

The wire format is unchanged: a request's meta is still a flat JSON
object ``{"op": <name>, ...fields...}`` with exactly the key names the
v2 frame protocol always used, so old and new peers interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable

from .errors import ProtocolError

# -- request/response dataclasses --------------------------------------------
# Field names ARE the wire meta keys; do not rename without a protocol bump.


@dataclass(frozen=True)
class PingRequest:
    pass


@dataclass(frozen=True)
class PingResponse:
    ok: bool = True


@dataclass(frozen=True)
class ProduceRequest:
    topic: str
    key: str | None = None
    timestamp: float | None = None
    headers: dict[str, Any] | None = None
    partition: int | None = None
    auto_create: bool = True
    partitions: int = 1


@dataclass(frozen=True)
class ProduceResponse:
    partition: int
    offset: int


@dataclass(frozen=True)
class ProduceBatchRequest:
    """Many records for one topic in a single frame (one blob each).

    ``entries`` carries the per-record scalars positionally aligned with
    the frame's blobs; the response returns one ``[partition, offset]``
    pair per record in the same order.
    """

    topic: str
    entries: list[dict[str, Any]] = field(default_factory=list)
    auto_create: bool = True
    partitions: int = 1


@dataclass(frozen=True)
class ProduceBatchResponse:
    results: list[list[int]] = field(default_factory=list)


@dataclass(frozen=True)
class FetchRequest:
    topic: str
    partition: int
    offset: int
    max_records: int = 1024
    timeout: float = 0.0


@dataclass(frozen=True)
class FetchResponse:
    records: list[dict[str, Any]] = field(default_factory=list)


@dataclass(frozen=True)
class CommitRequest:
    group: str
    topic: str
    partition: int
    offset: int


@dataclass(frozen=True)
class CommitResponse:
    pass


@dataclass(frozen=True)
class CommittedRequest:
    group: str
    topic: str
    partition: int


@dataclass(frozen=True)
class CommittedResponse:
    offset: int | None = None


@dataclass(frozen=True)
class ResetGroupRequest:
    group: str
    topics: list[str] | None = None


@dataclass(frozen=True)
class ResetGroupResponse:
    pass


@dataclass(frozen=True)
class CreateTopicRequest:
    topic: str
    partitions: int = 1
    retention: int | None = None


@dataclass(frozen=True)
class TopicResponse:
    partitions: int = 1


@dataclass(frozen=True)
class ListTopicsRequest:
    pass


@dataclass(frozen=True)
class ListTopicsResponse:
    topics: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class PartitionsRequest:
    topic: str


@dataclass(frozen=True)
class OffsetsRequest:
    topic: str
    partition: int


@dataclass(frozen=True)
class OffsetsResponse:
    start: int = 0
    end: int = 0


@dataclass(frozen=True)
class EndOffsetsRequest:
    topic: str


@dataclass(frozen=True)
class EndOffsetsResponse:
    offsets: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class HeartbeatRequest:
    worker: str
    info: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None


@dataclass(frozen=True)
class HeartbeatResponse:
    pass


@dataclass(frozen=True)
class ClusterRequest:
    include_metrics: bool = False


@dataclass(frozen=True)
class ClusterResponse:
    workers: dict[str, dict[str, Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class TransportRequest:
    """Ask the server which payload transport this broker speaks."""

    pass


@dataclass(frozen=True)
class TransportResponse:
    transport: dict[str, Any] = field(default_factory=lambda: {"name": "tcp"})


@dataclass(frozen=True)
class LeaseRequest:
    """Lease up to ``count`` payload slabs for this connection."""

    count: int = 1


@dataclass(frozen=True)
class LeaseResponse:
    #: granted ``[slot, generation]`` pairs; may be shorter than requested
    #: (empty = ring full, caller falls back to inline payloads)
    slots: list[list[int]] = field(default_factory=list)


@dataclass(frozen=True)
class ReleaseRequest:
    """Return unused leased slabs (``[slot, generation]`` pairs)."""

    slots: list[list[int]] = field(default_factory=list)


@dataclass(frozen=True)
class ReleaseResponse:
    released: int = 0


# -- the table ----------------------------------------------------------------


@dataclass(frozen=True)
class OpSpec:
    """One operation: wire name, typed shapes, server dispatch hints."""

    name: str
    request: type
    response: type
    #: given the parsed request, may the handler park its thread? (the
    #: async server runs such requests off the event loop)
    may_block: Callable[[Any], bool] | None = None


OPS: dict[str, OpSpec] = {}


def register_op(
    name: str,
    request: type,
    response: type,
    may_block: Callable[[Any], bool] | None = None,
) -> OpSpec:
    if name in OPS:
        raise ValueError(f"op {name!r} already registered")
    spec = OpSpec(name=name, request=request, response=response, may_block=may_block)
    OPS[name] = spec
    return spec


register_op("ping", PingRequest, PingResponse)
register_op("produce", ProduceRequest, ProduceResponse)
register_op("produce_batch", ProduceBatchRequest, ProduceBatchResponse)
register_op("fetch", FetchRequest, FetchResponse, may_block=lambda r: r.timeout > 0)
register_op("commit", CommitRequest, CommitResponse)
register_op("committed", CommittedRequest, CommittedResponse)
register_op("reset_group", ResetGroupRequest, ResetGroupResponse)
register_op("create_topic", CreateTopicRequest, TopicResponse)
register_op("ensure_topic", CreateTopicRequest, TopicResponse)
register_op("list_topics", ListTopicsRequest, ListTopicsResponse)
register_op("partitions", PartitionsRequest, TopicResponse)
register_op("offsets", OffsetsRequest, OffsetsResponse)
register_op("end_offsets", EndOffsetsRequest, EndOffsetsResponse)
register_op("heartbeat", HeartbeatRequest, HeartbeatResponse)
register_op("cluster", ClusterRequest, ClusterResponse)
register_op("transport", TransportRequest, TransportResponse)
register_op("lease", LeaseRequest, LeaseResponse)
register_op("release", ReleaseRequest, ReleaseResponse)


# -- meta <-> dataclass -------------------------------------------------------


def request_meta(name: str, request: Any) -> dict[str, Any]:
    """The wire meta object for a typed request (shallow, field = key)."""
    meta: dict[str, Any] = {"op": name}
    for f in fields(request):
        meta[f.name] = getattr(request, f.name)
    return meta


def parse_request(meta: dict[str, Any]) -> tuple[OpSpec, Any]:
    """Typed request from a frame's meta; unknown op raises ProtocolError."""
    op = meta.get("op")
    spec = OPS.get(op)
    if spec is None:
        raise ProtocolError(f"unknown operation {op!r}")
    known = {f.name for f in fields(spec.request)}
    kwargs = {k: v for k, v in meta.items() if k in known}
    try:
        return spec, spec.request(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"malformed {op!r} request: {exc}") from exc


def response_meta(response: Any) -> dict[str, Any]:
    """The wire meta object for a typed response."""
    return {f.name: getattr(response, f.name) for f in fields(response)}


def parse_response(spec: OpSpec, meta: dict[str, Any]) -> Any:
    """Typed response from a reply frame's meta (lenient to extra keys)."""
    known = {f.name for f in fields(spec.response)}
    kwargs = {k: v for k, v in meta.items() if k in known}
    try:
        return spec.response(**kwargs)
    except TypeError as exc:
        raise ProtocolError(
            f"malformed {spec.name!r} response: {exc}"
        ) from exc
