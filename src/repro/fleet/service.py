"""The fleet service: registry + admission + scheduler behind one facade.

:class:`FleetService` is the control plane the HTTP API (and tests, and
the benchmark) drive: ``submit`` validates the deploy config through the
:meth:`~repro.core.deploy.DeployConfig.from_dict` path, runs admission,
registers the job and launches a :class:`~repro.fleet.runner.JobRunner`;
``cancel`` drains a running job; ``snapshot`` merges every job's metrics
into one fleet-wide scrape with ``job``/``tenant`` labels stamped on every
sample, so a single Prometheus endpoint serves the whole fleet.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..core import DeployConfig
from ..kvstore.api import KVStore
from ..kvstore.memory import MemoryStore
from ..obs.context import _HELP as _OBS_HELP
from ..obs.exporters import to_prometheus
from ..obs.registry import MetricsRegistry, MetricsSnapshot
from .admission import AdmissionController, requested_parallelism
from .config import FleetConfig
from .errors import FleetError, UnknownJobError
from .registry import (
    ACTIVE_STATES,
    ADMITTED,
    CANCELLED,
    JobRecord,
    JobRegistry,
    new_job_id,
)
from .runner import JobRunner, resolve_workload
from .scheduler import FleetScheduler, JobLease


class FleetService:
    """A resident multi-tenant job control plane."""

    def __init__(
        self,
        config: FleetConfig | None = None,
        store: KVStore | None = None,
        version: str | None = None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self.store = store if store is not None else MemoryStore()
        self.registry = JobRegistry(self.store)
        self.registry.load()
        self.admission = AdmissionController(self.config, self.registry)
        self.scheduler = FleetScheduler(self.config)
        self.version = version if version is not None else _package_version()
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._runners: dict[str, JobRunner] = {}
        self._finished_runners: dict[str, JobRunner] = {}
        self.metrics = MetricsRegistry()
        for name, help_text in _OBS_HELP.items():
            self.metrics.set_help(name, help_text)
        self._submitted = self.metrics.counter(
            "fleet_jobs_submitted_total", "jobs accepted by admission control"
        )
        self._rejections: dict[str, Any] = {}
        self.metrics.gauge(
            "fleet_jobs_running", "jobs currently in the RUNNING state",
            fn=lambda: float(len(self._runners)),
        )
        self.metrics.gauge(
            "fleet_worker_budget", "total replica budget the scheduler shares"
        ).set(float(self.config.worker_budget))
        self.scheduler.start()

    # -- submission ---------------------------------------------------------

    def submit(self, body: dict[str, Any]) -> JobRecord:
        """Validate, admit, register and launch one job submission.

        ``body`` is the parsed request: ``tenant`` (optional), ``workload``
        (optional spec dict) and ``deploy`` (optional DeployConfig dict —
        the exact ``from_dict`` surface the TOML CLI uses). Raises
        :class:`~repro.core.errors.DeployConfigError` or ``ValueError`` on
        malformed bodies and :class:`~repro.fleet.errors.AdmissionError`
        on quota rejection.
        """
        if not isinstance(body, dict):
            raise ValueError(f"job submission must be a mapping, got {body!r}")
        unknown = set(body) - {"tenant", "workload", "deploy"}
        if unknown:
            raise ValueError(
                f"unknown submission key(s): {', '.join(sorted(unknown))}; "
                "expected tenant, workload, deploy"
            )
        tenant = str(body.get("tenant") or self.config.default_tenant)
        workload = resolve_workload(body.get("workload"))
        deploy = dict(body.get("deploy") or {})
        cfg = DeployConfig.from_dict(deploy)  # validate before admitting
        if cfg.fleet is not None:
            raise ValueError(
                "a job submission cannot carry a [fleet] section; fleet "
                "config belongs to the service, not to one job"
            )
        parallelism = requested_parallelism(deploy)
        with self._lock:
            decision = self.admission.decide(tenant, parallelism)
            if not decision.admitted:
                self._count_rejection(decision.code or "rejected")
                decision.raise_if_rejected()
            record = JobRecord(
                job_id=new_job_id(),
                tenant=tenant,
                workload=workload,
                deploy=deploy,
                parallelism=parallelism,
            )
            self.registry.register(record)
            self._submitted.inc()
        self.registry.transition(record.job_id, ADMITTED)
        self._launch(record)
        return self.registry.get(record.job_id)

    def _count_rejection(self, code: str) -> None:
        counter = self._rejections.get(code)
        if counter is None:
            counter = self.metrics.counter(
                "fleet_jobs_rejected_total",
                "submissions rejected by admission control",
                labels={"code": code},
            )
            self._rejections[code] = counter
        counter.inc()

    def _launch(self, record: JobRecord) -> None:
        runner = JobRunner(
            record.job_id,
            self.registry,
            workload=record.workload,
            deploy=record.deploy,
            on_done=self._runner_done,
        )
        elastic = record.deploy.get("elastic")
        floor = 1
        if isinstance(elastic, dict):
            floor = int(elastic.get("min_parallelism", 1))
        lease = JobLease(
            record.job_id,
            cap=record.parallelism,
            floor=floor,
            elastic=elastic is not None and elastic is not False,
            controller_fn=lambda: runner.controller,
        )
        with self._lock:
            self._runners[record.job_id] = runner
        self.scheduler.attach(lease)
        runner.start()

    def _runner_done(self, runner: JobRunner) -> None:
        self.scheduler.detach(runner.job_id)
        with self._lock:
            self._runners.pop(runner.job_id, None)
            self._finished_runners[runner.job_id] = runner
            # keep a bounded window of finished jobs' final snapshots
            while len(self._finished_runners) > 256:
                self._finished_runners.pop(next(iter(self._finished_runners)))

    # -- job control --------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        return self.registry.get(job_id)

    def list(
        self, tenant: str | None = None, state: str | None = None
    ) -> list[JobRecord]:
        return self.registry.list(tenant=tenant, state=state)

    def cancel(self, job_id: str, timeout: float = 10.0) -> JobRecord:
        """Cancel a job; for running jobs, drains and waits for CANCELLED."""
        record = self.registry.get(job_id)
        with self._lock:
            runner = self._runners.get(job_id)
        if runner is None:
            if record.state in ACTIVE_STATES:
                return self.registry.transition(
                    job_id, CANCELLED, reason="cancelled before launch"
                )
            raise FleetError(
                f"job {job_id!r} already finished ({record.state}); nothing to cancel"
            )
        runner.cancel()
        runner.join(timeout=timeout)
        return self.registry.get(job_id)

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until one job reaches a terminal state (tests, benchmark)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.registry.get(job_id)
            if not record.active:
                with self._lock:
                    runner = self._finished_runners.get(job_id)
                if runner is not None:
                    runner.join(timeout=max(0.0, deadline - time.monotonic()))
                return record
            time.sleep(0.02)
        raise FleetError(f"job {job_id!r} still {self.registry.get(job_id).state}")

    # -- observability ------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """One fleet-wide scrape: every job's metrics, job/tenant-labelled."""
        merged = self.metrics.snapshot()
        with self._lock:
            runners = {**self._finished_runners, **self._runners}
        for job_id, runner in runners.items():
            try:
                tenant = self.registry.get(job_id).tenant
            except UnknownJobError:  # pragma: no cover - registry is append-only
                tenant = "unknown"
            job_snap = runner.snapshot().with_labels(job=job_id, tenant=tenant)
            merged.samples.extend(job_snap.samples)
        return merged

    def prometheus(self) -> str:
        """The fleet-wide snapshot in Prometheus text exposition format."""
        return to_prometheus(self.snapshot(), self.metrics)

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": self.version,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": self.registry.counts(),
            "worker_budget": self.config.worker_budget,
            "shares": self.scheduler.shares(),
        }

    # -- shutdown -----------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: cancel every live job, then stop scheduling."""
        with self._lock:
            runners = list(self._runners.values())
        for runner in runners:
            try:
                runner.cancel()
            except FleetError:
                pass  # distributed jobs run to completion; wait below
        deadline = time.monotonic() + timeout
        for runner in runners:
            runner.join(timeout=max(0.1, deadline - time.monotonic()))
        for record in self.registry.active():
            try:
                self.registry.transition(
                    record.job_id, CANCELLED, reason="service shutdown"
                )
            except Exception:
                pass  # runner won the race to a terminal state
        self.scheduler.stop()


def _package_version() -> str:
    from .. import __version__

    return __version__
