"""The job runner: one thread driving one tenant job end to end.

A runner owns everything single-job: its own :class:`~repro.core.api.Strata`
instance (own KV store, own broker — tenants never share pipeline state),
its own :class:`~repro.obs.context.ObsContext` (so every metric and QoS
alert is attributable to exactly one job), and the workload pipeline built
from the submitted spec. The service holds one runner per RUNNING job and
routes lifecycle calls (cancel, scrape) at it.

Workload specs are plain dicts so they survive the KV store and the HTTP
API. Four kinds ship today — ``thermal`` (Alg. 1 defect detection),
``streaks`` (the recoater-streak use case), ``forecast`` (streaming
thermal state estimation) and ``reconstruct`` (laser-parameter
reconstruction) — all fully deterministic in their ``seed``, which is
what makes the fleet's divergence gate (same spec in-fleet and
standalone must yield identical results) checkable.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..am import BuildDataset, OTImageRenderer, make_job
from ..core import (
    DeployConfig,
    Strata,
    UseCaseConfig,
    build_streak_use_case,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)
from ..obs.context import ObsContext
from ..obs.registry import MetricsSnapshot
from ..spe.errors import EngineStateError
from . import registry as states
from .errors import FleetError
from .registry import JobRegistry

#: workload spec defaults — small enough that a job completes in seconds
WORKLOAD_DEFAULTS: dict[str, Any] = {
    "kind": "thermal",
    "name": "fleet-job",
    "image_px": 160,
    "layers": 6,
    "cell_edge": 8,
    "window": 4,
    "seed": 7,
    "defect_rate": 0.55,
    "streak_rate": 12.0,
}

WORKLOAD_KINDS = ("thermal", "streaks", "forecast", "reconstruct")


def resolve_workload(spec: dict[str, Any] | None) -> dict[str, Any]:
    """Validate a submitted workload spec and fill in the defaults."""
    spec = dict(spec or {})
    unknown = set(spec) - set(WORKLOAD_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown workload key(s): {', '.join(sorted(unknown))}; "
            f"expected {', '.join(sorted(WORKLOAD_DEFAULTS))}"
        )
    resolved = {**WORKLOAD_DEFAULTS, **spec}
    if resolved["kind"] not in WORKLOAD_KINDS:
        raise ValueError(
            f"workload kind must be one of {', '.join(WORKLOAD_KINDS)}, "
            f"got {resolved['kind']!r}"
        )
    if int(resolved["layers"]) < 1:
        raise ValueError("workload.layers must be >= 1")
    if int(resolved["image_px"]) < 16:
        raise ValueError("workload.image_px must be >= 16")
    return resolved


def _records(workload: dict[str, Any], streaks: bool):
    job = make_job(
        workload["name"],
        seed=int(workload["seed"]),
        defect_rate_per_stack=float(workload["defect_rate"]),
        streak_rate_per_100_layers=float(workload["streak_rate"]) if streaks else 0.0,
    )
    renderer = OTImageRenderer(
        image_px=int(workload["image_px"]), seed=int(workload["seed"])
    )
    records = list(BuildDataset(job, renderer).records(0, int(workload["layers"])))
    return job, renderer, records


def _thermal_build(workload: dict[str, Any]):
    """Synthesize the deterministic build the two thermal kinds stream."""
    from ..am.scanpath import Rect, ThermalBuildConfig, synthesize_thermal_build

    # derive the plate from image_px, snapped so the grid divides evenly:
    # region must be a multiple of cell_mm for integer cells, and the
    # melt image (2 px/mm) is then a multiple of the 3-px cell edge
    cell_mm = 1.5
    region_mm = max(18.0, cell_mm * round(int(workload["image_px"]) / 2.0 / cell_mm))
    s = region_mm / 60.0
    config = ThermalBuildConfig(
        job_id=workload["name"],
        layers=int(workload["layers"]),
        region_mm=region_mm,
        cell_mm=cell_mm,
        parts=(
            Rect(5.0 * s, 5.0 * s, 27.0 * s, 55.0 * s),
            Rect(33.0 * s, 5.0 * s, 55.0 * s, 55.0 * s),
        ),
        seed=int(workload["seed"]),
    )
    return synthesize_thermal_build(config)


def _build_thermal_pipeline(strata: Strata, workload: dict[str, Any]):
    from ..thermal import (
        ThermalPipelineConfig,
        build_forecast_pipeline,
        build_reconstruction_pipeline,
        calibrate_thermal_job,
    )

    build = _thermal_build(workload)
    config = ThermalPipelineConfig(window_layers=int(workload["window"]))
    if workload["kind"] == "forecast":
        pipeline = build_forecast_pipeline(
            iter(build.records), iter(build.records), build.config, config,
            strata=strata,
        )
        calibrate_thermal_job(strata.kv, build, laser=False)
    else:
        pipeline = build_reconstruction_pipeline(
            iter(build.records), build.config, config, strata=strata
        )
        calibrate_thermal_job(strata.kv, build)
    return pipeline.sink


def build_pipeline(strata: Strata, workload: dict[str, Any]):
    """Compose the workload's pipeline on ``strata``; returns its sink."""
    if workload["kind"] in ("forecast", "reconstruct"):
        return _build_thermal_pipeline(strata, workload)
    if workload["kind"] == "streaks":
        _, _, records = _records(workload, streaks=True)
        pipeline = build_streak_use_case(
            iter(records),
            iter(records),
            image_px=int(workload["image_px"]),
            window_layers=int(workload["window"]),
            strata=strata,
        )
        return pipeline.sink
    job, renderer, records = _records(workload, streaks=False)
    config = UseCaseConfig(
        image_px=int(workload["image_px"]),
        cell_edge_px=int(workload["cell_edge"]),
        window_layers=int(workload["window"]),
    )
    reference = make_job(f"{workload['name']}-ref", seed=1, defect_rate_per_stack=0.0)
    reference_images = [
        r.image for r in BuildDataset(reference, renderer).records(0, 3)
    ]
    calibrate_job(
        strata.kv,
        job.job_id,
        reference_images,
        config.cell_edge_px,
        regions=specimen_regions_px(job.specimens, config.image_px),
    )
    pipeline = build_use_case(iter(records), iter(records), config, strata=strata)
    return pipeline.sink


def result_ids(workload: dict[str, Any], results: list) -> list[list[Any]]:
    """Order-independent result identities, the divergence-gate currency."""
    if workload["kind"] == "forecast":
        keys = [
            [
                t.job, t.layer, t.specimen,
                round(float(t.payload["forecast_mean"]), 6),
                round(float(t.payload["forecast_max"]), 6),
            ]
            for t in results
        ]
    elif workload["kind"] == "reconstruct":
        keys = [
            [
                t.job, t.layer, t.specimen,
                round(float(t.payload["power_w_hat"]), 6),
                round(float(t.payload["speed_mm_s_hat"]), 6),
            ]
            for t in results
        ]
    elif workload["kind"] == "streaks":
        keys = [
            [t.job, t.layer, t.specimen, len(t.payload.get("streaks", ()))]
            for t in results
        ]
    else:
        keys = [
            [
                t.job, t.layer, t.specimen,
                t.payload.get("num_events"), t.payload.get("num_clusters"),
            ]
            for t in results
        ]
    return sorted(keys)


def run_standalone(workload: dict[str, Any] | None = None) -> list[list[Any]]:
    """One job's expected results, computed outside the fleet.

    The oracle the fleet's divergence gate compares against: same spec,
    fresh single-tenant Strata, default deployment.
    """
    workload = resolve_workload(workload)
    strata = Strata(engine_mode="threaded")
    sink = build_pipeline(strata, workload)
    strata.deploy()
    return result_ids(workload, sink.results)


class JobRunner:
    """Drives one admitted job: RUNNING -> {COMPLETED, FAILED, CANCELLED}."""

    def __init__(
        self,
        record_id: str,
        registry: JobRegistry,
        workload: dict[str, Any],
        deploy: dict[str, Any],
        on_done: Callable[["JobRunner"], None] | None = None,
    ) -> None:
        self.job_id = record_id
        self._registry = registry
        self._workload = workload
        self._deploy_dict = deploy
        self._on_done = on_done
        self.obs = ObsContext()
        self._lock = threading.Lock()
        self._cancel = False
        self._started_engine = False
        self._strata: Strata | None = None
        self.final_snapshot: MetricsSnapshot | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"fleet-job-{record_id}", daemon=True
        )

    # -- service-facing surface ---------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def controller(self) -> Any | None:
        """The job's live ElasticController, for fleet bound lending."""
        strata = self._strata
        return strata.elastic if strata is not None else None

    def snapshot(self) -> MetricsSnapshot:
        """The job's metrics right now (final snapshot once terminal)."""
        if self.final_snapshot is not None:
            return self.final_snapshot
        return self.obs.snapshot()

    def cancel(self) -> None:
        """Request cancellation: stop the engine and drain its threads."""
        with self._lock:
            self._cancel = True
            started = self._started_engine
            strata = self._strata
        if self._deploy_dict.get("dist") and started:
            raise FleetError(
                f"job {self.job_id!r} deployed distributed and runs to "
                "completion; cancel applies to in-process jobs"
            )
        if started and strata is not None:
            strata.stop()

    # -- the run ------------------------------------------------------------

    def _config(self) -> DeployConfig:
        cfg = DeployConfig.from_dict(self._deploy_dict)
        # every fleet job is observable under its own context, unless the
        # submission explicitly configured its own obs knobs
        return cfg

    def _run(self) -> None:
        started = time.monotonic()
        summary: dict[str, Any] | None = None
        outcome = states.COMPLETED
        reason: str | None = None
        try:
            cfg = self._config()
            distributed = cfg.dist is not None
            strata = Strata(
                engine_mode="threaded",
                connector_mode="pubsub" if distributed else "direct",
                obs=self.obs,
            )
            sink = build_pipeline(strata, self._workload)
            with self._lock:
                if self._cancel:
                    self._finish(states.CANCELLED, "cancelled before launch", None)
                    return
                self._strata = strata
            self._registry.transition(self.job_id, states.RUNNING)
            if distributed:
                with self._lock:
                    self._started_engine = True
                strata.deploy(cfg)
            else:
                strata.start(cfg)
                with self._lock:
                    self._started_engine = True
                if self._cancel:  # cancel raced the launch
                    strata.stop()
                try:
                    strata.wait(timeout=600)
                except EngineStateError:
                    pass  # a concurrent cancel already reaped the engine
            wall = time.monotonic() - started
            ids = result_ids(self._workload, list(sink.results))
            layers = int(self._workload["layers"])
            summary = {
                "results": len(ids),
                "result_ids": ids,
                "wall_seconds": round(wall, 4),
                "images": layers,
                "images_per_second": round(layers / wall, 3) if wall > 0 else 0.0,
            }
            if self._cancel:
                outcome, reason = states.CANCELLED, "cancelled by request"
        except Exception as exc:
            if self._cancel:
                outcome, reason = states.CANCELLED, "cancelled by request"
            else:
                outcome, reason = states.FAILED, f"{type(exc).__name__}: {exc}"
        self._finish(outcome, reason, summary)

    def _finish(
        self, outcome: str, reason: str | None, summary: dict[str, Any] | None
    ) -> None:
        self.final_snapshot = self.obs.snapshot()
        try:
            self._registry.transition(self.job_id, outcome, reason=reason, result=summary)
        except Exception:
            pass  # terminal-state race (e.g. cancel already recorded)
        if self._on_done is not None:
            self._on_done(self)
