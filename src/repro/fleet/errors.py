"""Typed errors of the fleet control plane."""

from __future__ import annotations


class FleetError(Exception):
    """Base class for every fleet control-plane error."""


class UnknownJobError(FleetError):
    """A job id that the registry has never seen."""


class InvalidTransitionError(FleetError):
    """A state change the job lifecycle machine does not allow."""


class AdmissionError(FleetError):
    """A job rejected by admission control, with a structured reason.

    ``code`` is a stable machine-readable reason (``tenant-jobs-quota``,
    ``tenant-parallelism-quota``, ``job-exceeds-budget``) and ``detail``
    carries the numbers behind the decision, so the HTTP layer can return
    a 429 body an operator's tooling can act on.
    """

    def __init__(self, code: str, message: str, detail: dict | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.detail = detail if detail is not None else {}

    def to_dict(self) -> dict:
        return {"code": self.code, "message": str(self), "detail": self.detail}
