"""Zero-dependency HTTP API over :class:`~repro.fleet.service.FleetService`.

A ``http.server.ThreadingHTTPServer`` (stdlib, one thread per request —
plenty for a control plane that does milliseconds of work per call)
exposing:

======  ==================  =============================================
POST    ``/jobs``           submit a job (JSON or TOML body)
GET     ``/jobs``           list jobs (``?tenant=`` / ``?state=`` filters)
GET     ``/jobs/{id}``      one job record with its transition history
DELETE  ``/jobs/{id}``      cancel a job (drains running pipelines)
GET     ``/metrics``        Prometheus scrape for the whole fleet
GET     ``/healthz``        liveness + version + per-state job counts
======  ==================  =============================================

Submission bodies reuse the exact config surface of the CLI: the
``deploy`` table is handed to :meth:`DeployConfig.from_dict`, so anything
a ``strata.toml`` can say, a POST body can say — send
``Content-Type: application/toml`` and the raw TOML document, or JSON
with the same shape. Errors map onto structured JSON: 400 for malformed
bodies/configs, 404 for unknown jobs, 409 for impossible cancels, and
429 with a machine-readable quota code for admission rejections.
"""

from __future__ import annotations

import json
import logging
import threading
import tomllib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..core.errors import DeployConfigError
from .errors import AdmissionError, FleetError, UnknownJobError
from .service import FleetService

logger = logging.getLogger("repro.fleet.http")

MAX_BODY_BYTES = 1 << 20  # a config document, not a dataset


class FleetRequestHandler(BaseHTTPRequestHandler):
    """Routes one request at the service; all state lives in the service."""

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    @property
    def service(self) -> FleetService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, code: str, message: str, detail: Any = None) -> None:
        self._send_json(
            status, {"code": code, "message": message, "detail": detail or {}}
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        content_type = (self.headers.get("Content-Type") or "application/json").split(
            ";"
        )[0].strip().lower()
        if content_type in ("application/toml", "text/toml", "text/x-toml"):
            try:
                return tomllib.loads(raw.decode())
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
                raise ValueError(f"invalid TOML body: {exc}") from exc
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if not isinstance(parsed, dict):
            raise ValueError("request body must be a JSON object")
        return parsed

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, self.service.health())
            elif parts == ["metrics"]:
                self._send_text(
                    200, self.service.prometheus(), "text/plain; version=0.0.4"
                )
            elif parts == ["jobs"]:
                query = parse_qs(url.query)
                records = self.service.list(
                    tenant=(query.get("tenant") or [None])[0],
                    state=(query.get("state") or [None])[0],
                )
                self._send_json(200, {"jobs": [r.to_dict() for r in records]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.get(parts[1]).to_dict())
            else:
                self._error(404, "not-found", f"no route for GET {url.path}")
        except UnknownJobError as exc:
            self._error(404, "unknown-job", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("GET %s failed", self.path)
            self._error(500, "internal", f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["jobs"]:
            self._error(404, "not-found", f"no route for POST {url.path}")
            return
        try:
            body = self._read_body()
            record = self.service.submit(body)
            self._send_json(201, record.to_dict())
        except AdmissionError as exc:
            self._send_json(429, exc.to_dict())
        except (DeployConfigError, ValueError) as exc:
            self._error(400, "invalid-submission", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("POST /jobs failed")
            self._error(500, "internal", f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, "not-found", f"no route for DELETE {url.path}")
            return
        try:
            record = self.service.cancel(parts[1])
            self._send_json(200, record.to_dict())
        except UnknownJobError as exc:
            self._error(404, "unknown-job", str(exc))
        except FleetError as exc:
            self._error(409, "not-cancellable", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("DELETE %s failed", self.path)
            self._error(500, "internal", f"{type(exc).__name__}: {exc}")


class FleetHTTPServer:
    """The fleet API server: a threading HTTP server plus its service."""

    def __init__(
        self,
        service: FleetService,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.service = service
        host = host if host is not None else service.config.host
        port = port if port is not None else service.config.port
        self._server = ThreadingHTTPServer((host, port), FleetRequestHandler)
        self._server.daemon_threads = True
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` request)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a background thread (tests, embedded use)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="fleet-http",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve`` verb)."""
        self._server.serve_forever(poll_interval=0.1)

    def stop(self, drain_timeout: float = 30.0) -> None:
        """Stop accepting requests, then drain the fleet."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.drain(timeout=drain_timeout)
