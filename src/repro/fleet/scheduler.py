"""The fleet scheduler: fair-sharing a bounded worker budget across jobs.

The fleet does not own a thread pool — each job's replicas are the
elastic runtime's replica threads. What the fleet *does* own is the
budget: a total replica count the machine is allowed to spend. The
scheduler divides that budget fairly across the currently RUNNING jobs
and lends each job its share by moving the job's
:class:`~repro.elastic.controller.ElasticController` bounds at runtime
(:meth:`set_bounds`): the controller's own QoS policy still decides when
to use the lent headroom, but it can never scale past its share, and when
a new job arrives the shares shrink and running jobs hand replicas back
at their next policy tick.

Static (non-elastic) jobs hold their declared parallelism for their whole
run; the scheduler subtracts that from the budget before sharing the rest
among the elastic jobs.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Callable

from .config import FleetConfig

logger = logging.getLogger("repro.fleet.scheduler")


def fair_shares(
    budget: int,
    caps: dict[str, int],
    floor: int = 1,
) -> dict[str, int]:
    """Split ``budget`` replicas across jobs, respecting per-job caps.

    Deterministic (jobs sorted by id), work-conserving (leftover budget
    below one job's cap is re-offered to the others), and floored: every
    job gets at least ``floor`` even when the fleet is oversubscribed —
    a job must always be able to make progress, so the floor is a
    guarantee, not a budget split.
    """
    if not caps:
        return {}
    shares = {job: floor for job in caps}
    remaining = budget - floor * len(caps)
    # round-robin the remaining budget one replica at a time so uneven
    # splits stay maximally even (e.g. budget 8 over 3 jobs -> 3/3/2)
    while remaining > 0:
        progressed = False
        for job in sorted(caps):
            if remaining <= 0:
                break
            if shares[job] < caps[job]:
                shares[job] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # every job is at its cap
            break
    return shares


class FleetScheduler:
    """Periodically recomputes shares and lends them to live controllers."""

    def __init__(self, config: FleetConfig) -> None:
        self._config = config
        self._lock = threading.Lock()
        # job_id -> callable returning the job's live lease view, set by
        # the service as runners start and cleared as they finish
        self._jobs: dict[str, "JobLease"] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._shares: dict[str, int] = {}

    # -- membership (called by the service) ---------------------------------

    def attach(self, lease: "JobLease") -> None:
        with self._lock:
            self._jobs[lease.job_id] = lease
        self.tick()

    def detach(self, job_id: str) -> None:
        with self._lock:
            self._jobs.pop(job_id, None)
        self.tick()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="fleet-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._config.tick_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive: keep scheduling
                logger.exception("fleet scheduler tick failed")

    # -- the share computation ----------------------------------------------

    def shares(self) -> dict[str, int]:
        """The most recently applied share per job id (for metrics/tests)."""
        with self._lock:
            return dict(self._shares)

    def tick(self) -> None:
        """Recompute fair shares and push them into the live controllers."""
        with self._lock:
            leases = list(self._jobs.values())
        static = [l for l in leases if not l.elastic]
        elastic = [l for l in leases if l.elastic]
        budget = self._config.worker_budget
        shares: dict[str, int] = {}
        for lease in static:
            shares[lease.job_id] = lease.cap
            budget -= lease.cap
        if elastic:
            budget = max(budget, self._config.min_share * len(elastic))
            shares.update(
                fair_shares(
                    budget,
                    {l.job_id: l.cap for l in elastic},
                    floor=self._config.min_share,
                )
            )
        for lease in elastic:
            lease.lend(shares[lease.job_id])
        with self._lock:
            self._shares = shares


class JobLease:
    """One job's scheduling view: its cap and a way to lend it replicas.

    ``controller_fn`` resolves to the job's live ElasticController (or
    None while it is still deploying / after it finished); ``cap`` is the
    job's own configured upper bound, ``floor`` its configured minimum.
    """

    def __init__(
        self,
        job_id: str,
        cap: int,
        floor: int = 1,
        elastic: bool = True,
        controller_fn: Callable[[], Any] | None = None,
    ) -> None:
        self.job_id = job_id
        self.cap = max(1, cap)
        self.floor = max(1, min(floor, self.cap))
        self.elastic = elastic
        self._controller_fn = controller_fn
        self.granted: int | None = None

    def lend(self, share: int) -> None:
        """Grant this job ``share`` replicas (clamped to its own bounds)."""
        share = max(self.floor, min(self.cap, share))
        if share == self.granted:
            return
        self.granted = share
        controller = self._controller_fn() if self._controller_fn else None
        if controller is not None and hasattr(controller, "set_bounds"):
            controller.set_bounds(min(self.floor, share), share)
