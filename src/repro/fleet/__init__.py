"""repro.fleet — the multi-tenant job control plane.

Turns the library into a resident service: tenants POST jobs (a workload
spec plus a :class:`~repro.core.deploy.DeployConfig` table), admission
control enforces per-tenant quotas, a fair-share scheduler lends a bounded
worker budget across the running jobs through their elastic controllers,
and one Prometheus scrape covers the whole fleet with ``job``/``tenant``
labels on every series. ``strata-repro serve`` is the front door.
"""

from .admission import AdmissionController, AdmissionDecision, requested_parallelism
from .config import FleetConfig
from .errors import (
    AdmissionError,
    FleetError,
    InvalidTransitionError,
    UnknownJobError,
)
from .http import FleetHTTPServer
from .registry import (
    ACTIVE_STATES,
    ADMITTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    JobRecord,
    JobRegistry,
    new_job_id,
)
from .runner import (
    WORKLOAD_DEFAULTS,
    WORKLOAD_KINDS,
    JobRunner,
    resolve_workload,
    result_ids,
    run_standalone,
)
from .scheduler import FleetScheduler, JobLease, fair_shares
from .service import FleetService

__all__ = [
    "FleetConfig",
    "FleetService",
    "FleetHTTPServer",
    "JobRegistry",
    "JobRecord",
    "JobRunner",
    "JobLease",
    "FleetScheduler",
    "AdmissionController",
    "AdmissionDecision",
    "requested_parallelism",
    "fair_shares",
    "resolve_workload",
    "result_ids",
    "run_standalone",
    "new_job_id",
    "WORKLOAD_DEFAULTS",
    "WORKLOAD_KINDS",
    "FleetError",
    "AdmissionError",
    "UnknownJobError",
    "InvalidTransitionError",
    "PENDING",
    "ADMITTED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
]
