"""Admission control: per-tenant quotas with reject-with-reason.

Admission runs before a job is registered, against the registry's current
*active* population (PENDING/ADMITTED/RUNNING — terminal jobs release
their quota). Each check yields a stable machine-readable code plus the
numbers behind the decision, so a 429 tells the tenant exactly which
quota they hit and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .config import FleetConfig
from .errors import AdmissionError
from .registry import JobRegistry


def requested_parallelism(deploy: dict[str, Any]) -> int:
    """Replica demand a deploy-config dict asks for, for quota accounting.

    An elastic job is charged its upper bound (the fleet may lend it that
    many workers); a static plan is charged its declared parallelism; a
    default deployment is one pipeline, charged 1.
    """
    elastic = deploy.get("elastic")
    if isinstance(elastic, dict):
        return int(elastic.get("max_parallelism", 4))
    if elastic is True:
        return 4  # ElasticConfig().max_parallelism default
    plan = deploy.get("plan")
    if isinstance(plan, dict):
        return max(1, int(plan.get("parallelism", 1)))
    return 1


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    code: str | None = None
    message: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def raise_if_rejected(self) -> None:
        if not self.admitted:
            raise AdmissionError(self.code or "rejected", self.message or "", self.detail)


class AdmissionController:
    """Evaluates tenant quotas against the live registry."""

    def __init__(self, config: FleetConfig, registry: JobRegistry) -> None:
        self._config = config
        self._registry = registry

    def decide(self, tenant: str, parallelism: int) -> AdmissionDecision:
        """Admit or reject one submission asking for ``parallelism`` replicas."""
        cfg = self._config
        if parallelism > cfg.worker_budget:
            return AdmissionDecision(
                False,
                code="job-exceeds-budget",
                message=(
                    f"job requests {parallelism} replicas but the fleet's "
                    f"worker budget is {cfg.worker_budget}"
                ),
                detail={"requested": parallelism, "worker_budget": cfg.worker_budget},
            )
        active = self._registry.active(tenant)
        if len(active) >= cfg.max_jobs_per_tenant:
            return AdmissionDecision(
                False,
                code="tenant-jobs-quota",
                message=(
                    f"tenant {tenant!r} already has {len(active)} concurrent "
                    f"job(s), quota is {cfg.max_jobs_per_tenant}"
                ),
                detail={
                    "tenant": tenant,
                    "active_jobs": len(active),
                    "max_jobs_per_tenant": cfg.max_jobs_per_tenant,
                },
            )
        committed = sum(r.parallelism for r in active)
        if committed + parallelism > cfg.max_parallelism_per_tenant:
            return AdmissionDecision(
                False,
                code="tenant-parallelism-quota",
                message=(
                    f"tenant {tenant!r} has {committed} replica(s) committed; "
                    f"adding {parallelism} would exceed the per-tenant "
                    f"parallelism quota of {cfg.max_parallelism_per_tenant}"
                ),
                detail={
                    "tenant": tenant,
                    "committed": committed,
                    "requested": parallelism,
                    "max_parallelism_per_tenant": cfg.max_parallelism_per_tenant,
                },
            )
        return AdmissionDecision(True)
