"""The job registry: lifecycle state machine with persisted transitions.

Every job the control plane accepts is a :class:`JobRecord` moving through

    PENDING -> ADMITTED -> RUNNING -> {COMPLETED, FAILED, CANCELLED}

(cancellation and failure are reachable from every non-terminal state, so
a job cancelled between admission and launch never starts). Each
transition is appended to the record's history and the whole record is
re-persisted on the KV store under ``fleet/jobs/<id>``, which makes the
registry rebuildable after a service restart: jobs that were mid-flight
when the process died come back as FAILED with an explicit reason rather
than silently vanishing.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..kvstore.api import KVStore
from .errors import InvalidTransitionError, UnknownJobError

PENDING = "PENDING"
ADMITTED = "ADMITTED"
RUNNING = "RUNNING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: states that still hold (or will hold) fleet resources
ACTIVE_STATES = frozenset({PENDING, ADMITTED, RUNNING})
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: the lifecycle machine: state -> states reachable from it
TRANSITIONS: dict[str, frozenset[str]] = {
    PENDING: frozenset({ADMITTED, FAILED, CANCELLED}),
    ADMITTED: frozenset({RUNNING, FAILED, CANCELLED}),
    RUNNING: frozenset({COMPLETED, FAILED, CANCELLED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

KEY_PREFIX = "fleet/jobs/"


def new_job_id() -> str:
    """A short unique job id (sortable enough for humans, unique enough
    for a fleet)."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class JobRecord:
    """One job as the control plane sees it.

    ``deploy`` and ``workload`` are plain dicts (the submitted body after
    validation), so the record round-trips through the KV store and the
    HTTP API without touching live objects. ``parallelism`` is the
    replica demand admission charged against the tenant's quota.
    """

    job_id: str
    tenant: str
    state: str = PENDING
    deploy: dict[str, Any] = field(default_factory=dict)
    workload: dict[str, Any] = field(default_factory=dict)
    parallelism: int = 1
    created: float = field(default_factory=time.time)
    reason: str | None = None
    result: dict[str, Any] | None = None
    transitions: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "deploy": self.deploy,
            "workload": self.workload,
            "parallelism": self.parallelism,
            "created": self.created,
            "reason": self.reason,
            "result": self.result,
            "transitions": list(self.transitions),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        return cls(**data)

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES


class JobRegistry:
    """Thread-safe job table, persisted transition-by-transition."""

    def __init__(self, store: KVStore, prefix: str = KEY_PREFIX) -> None:
        self._store = store
        self._prefix = prefix
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}

    # -- persistence --------------------------------------------------------

    def _persist(self, record: JobRecord) -> None:
        self._store.put(self._prefix + record.job_id, record.to_dict())

    def load(self) -> int:
        """Rehydrate from the store; orphaned in-flight jobs become FAILED.

        Returns the number of records loaded. Meant for service startup
        against a persistent (LSM) store: COMPLETED/FAILED/CANCELLED jobs
        come back verbatim, while jobs that were PENDING/ADMITTED/RUNNING
        when the previous process died are marked FAILED with an explicit
        reason — their runner threads did not survive the restart.
        """
        loaded = 0
        with self._lock:
            for key, value in self._store.scan(self._prefix, self._prefix + "\x7f"):
                record = JobRecord.from_dict(value)
                if record.state in ACTIVE_STATES:
                    self._append_transition(
                        record, FAILED, "control plane restarted while job was in flight"
                    )
                    self._persist(record)
                self._jobs[record.job_id] = record
                loaded += 1
        return loaded

    # -- lifecycle ----------------------------------------------------------

    def register(self, record: JobRecord) -> JobRecord:
        """Add a new PENDING job and persist it."""
        with self._lock:
            if record.job_id in self._jobs:
                raise InvalidTransitionError(f"job {record.job_id!r} already registered")
            if not record.transitions:
                record.transitions.append(
                    {"state": record.state, "at": record.created, "reason": None}
                )
            self._jobs[record.job_id] = record
            self._persist(record)
        return record

    @staticmethod
    def _append_transition(record: JobRecord, state: str, reason: str | None) -> None:
        record.state = state
        record.reason = reason if reason is not None else record.reason
        record.transitions.append({"state": state, "at": time.time(), "reason": reason})

    def transition(
        self,
        job_id: str,
        state: str,
        reason: str | None = None,
        result: dict[str, Any] | None = None,
    ) -> JobRecord:
        """Move a job to ``state``, validate, persist, and return it."""
        if state not in TRANSITIONS:
            raise InvalidTransitionError(f"unknown job state {state!r}")
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            if state not in TRANSITIONS[record.state]:
                raise InvalidTransitionError(
                    f"job {job_id!r} cannot move {record.state} -> {state}"
                )
            self._append_transition(record, state, reason)
            if result is not None:
                record.result = result
            self._persist(record)
        return record

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return record

    def list(
        self, tenant: str | None = None, state: str | None = None
    ) -> list[JobRecord]:
        """Records newest-first, optionally filtered by tenant and state."""
        with self._lock:
            records = list(self._jobs.values())
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        if state is not None:
            records = [r for r in records if r.state == state]
        return sorted(records, key=lambda r: (-r.created, r.job_id))

    def active(self, tenant: str | None = None) -> list[JobRecord]:
        """Jobs still holding (or about to hold) fleet resources."""
        with self._lock:
            records = [r for r in self._jobs.values() if r.active]
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def counts(self) -> dict[str, int]:
        """Job count per state (zero-filled), for /healthz and metrics."""
        out = {state: 0 for state in TRANSITIONS}
        with self._lock:
            for record in self._jobs.values():
                out[record.state] += 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __iter__(self) -> Iterator[JobRecord]:
        with self._lock:
            records = list(self._jobs.values())
        return iter(records)
