"""Configuration of the fleet control plane (the ``[fleet]`` TOML table)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for :class:`~repro.fleet.service.FleetService`.

    ``max_jobs_per_tenant``        concurrent (pending/admitted/running)
                                   jobs one tenant may hold.
    ``max_parallelism_per_tenant`` summed requested parallelism across one
                                   tenant's concurrent jobs.
    ``worker_budget``              total replica threads the scheduler
                                   fair-shares across all running jobs;
                                   also the hard cap on one job's request.
    ``min_share``                  the floor each running job is always
                                   lent, regardless of how crowded the
                                   fleet gets.
    ``tick_s``                     scheduler re-share period.
    ``host``/``port``              HTTP API bind address for ``serve``
                                   (port 0 picks an ephemeral port).
    ``default_tenant``             tenant assumed when a submission does
                                   not name one.
    """

    max_jobs_per_tenant: int = 2
    max_parallelism_per_tenant: int = 8
    worker_budget: int = 8
    min_share: int = 1
    tick_s: float = 0.25
    host: str = "127.0.0.1"
    port: int = 9500
    default_tenant: str = "default"

    def __post_init__(self) -> None:
        if self.max_jobs_per_tenant < 1:
            raise ValueError("fleet.max_jobs_per_tenant must be >= 1")
        if self.max_parallelism_per_tenant < 1:
            raise ValueError("fleet.max_parallelism_per_tenant must be >= 1")
        if self.worker_budget < 1:
            raise ValueError("fleet.worker_budget must be >= 1")
        if self.min_share < 1:
            raise ValueError("fleet.min_share must be >= 1")
        if self.min_share > self.worker_budget:
            raise ValueError("fleet.min_share cannot exceed fleet.worker_budget")
        if self.tick_s <= 0:
            raise ValueError("fleet.tick_s must be positive")
        if not (0 <= self.port <= 65535):
            raise ValueError("fleet.port must be a valid TCP port")
        if not self.default_tenant:
            raise ValueError("fleet.default_tenant must be non-empty")

    @classmethod
    def resolve(cls, fleet: "FleetConfig | bool | None") -> "FleetConfig | None":
        """Normalize the ``fleet=`` argument of user-facing APIs."""
        if fleet is None or fleet is False:
            return None
        if fleet is True:
            return cls()
        if isinstance(fleet, cls):
            return fleet
        raise TypeError(f"fleet must be bool, None or FleetConfig, got {fleet!r}")

    def describe(self) -> str:
        return (
            f"budget {self.worker_budget}, "
            f"{self.max_jobs_per_tenant} job(s)/"
            f"{self.max_parallelism_per_tenant} replicas per tenant"
        )
