"""Consumer client with consumer-group semantics.

A :class:`Consumer` subscribes to topics, polls records partition by
partition, and tracks per-partition positions. Consumers sharing a group id
share committed offsets through the broker, so a restarted consumer resumes
where its group left off. :class:`ConsumerGroup` splits a topic's
partitions across several consumers (static range assignment), giving the
scale-out path the paper gets from Kafka consumer groups.
"""

from __future__ import annotations

from typing import Iterator

from .broker import Broker
from .errors import InvalidOffsetError
from .message import Message


class Consumer:
    """Single consumer over one or more topics.

    ``auto_offset_reset`` selects the start position when the group has no
    committed offset: ``"earliest"`` replays the full retained log (used to
    reprocess historic printing jobs), ``"latest"`` starts at the live edge.
    """

    def __init__(
        self,
        broker: Broker,
        group: str,
        topics: list[str] | None = None,
        auto_offset_reset: str = "earliest",
        auto_commit: bool = True,
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValueError("auto_offset_reset must be 'earliest' or 'latest'")
        self._broker = broker
        self._group = group
        self._auto_offset_reset = auto_offset_reset
        self._auto_commit = auto_commit
        # (topic, partition) -> next offset to read; None = not resolved yet
        self._positions: dict[tuple[str, int], int] = {}
        self._assignment: list[tuple[str, int]] = []
        self._subscribed: list[str] = []
        if topics:
            self.subscribe(topics)

    @property
    def group(self) -> str:
        return self._group

    @property
    def assignment(self) -> list[tuple[str, int]]:
        return list(self._assignment)

    def subscribe(self, topics: list[str]) -> None:
        """Subscribe to all partitions of the given topics."""
        self._subscribed = list(topics)
        self._assignment = []
        for name in topics:
            topic = self._broker.topic(name)
            for partition in range(topic.num_partitions):
                self._assignment.append((name, partition))
        self._resolve_positions()

    def assign(self, partitions: list[tuple[str, int]]) -> None:
        """Manually assign specific (topic, partition) pairs."""
        self._assignment = list(partitions)
        self._resolve_positions()

    def _resolve_positions(self) -> None:
        for name, partition in self._assignment:
            if (name, partition) in self._positions:
                continue
            committed = self._broker.committed(self._group, name, partition)
            if committed is not None:
                self._positions[(name, partition)] = committed
                continue
            log = self._broker.topic(name).log(partition)
            if self._auto_offset_reset == "earliest":
                self._positions[(name, partition)] = log.start_offset
            else:
                self._positions[(name, partition)] = log.end_offset

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Set the next read position for one partition."""
        if (topic, partition) not in self._assignment:
            raise InvalidOffsetError(f"{topic}/{partition} is not assigned")
        self._positions[(topic, partition)] = offset

    def position(self, topic: str, partition: int) -> int:
        """Next offset this consumer will read for the partition."""
        return self._positions[(topic, partition)]

    def poll(self, max_records: int = 1024, timeout: float = 0.0) -> list[Message]:
        """Fetch available records across the assignment.

        With ``timeout > 0`` the first empty pass blocks on one partition
        waiting for data (sufficient for the single-partition connector
        topologies STRATA deploys).
        """
        out: list[Message] = []
        budget = max_records
        for name, partition in self._assignment:
            if budget <= 0:
                break
            log = self._broker.topic(name).log(partition)
            position = self._positions[(name, partition)]
            try:
                records = log.read(position, budget)
            except InvalidOffsetError:
                # Retention trimmed past our position: skip to the oldest
                # retained record, as Kafka's 'earliest' reset would.
                position = log.start_offset
                records = log.read(position, budget)
            if records:
                out.extend(records)
                budget -= len(records)
                self._positions[(name, partition)] = records[-1].offset + 1
        if not out and timeout > 0 and self._assignment:
            name, partition = self._assignment[0]
            log = self._broker.topic(name).log(partition)
            records = log.read_blocking(
                self._positions[(name, partition)], max_records, timeout
            )
            if records:
                out.extend(records)
                self._positions[(name, partition)] = records[-1].offset + 1
        if out and self._auto_commit:
            self.commit()
        return out

    def commit(
        self,
        topic: str | None = None,
        partition: int | None = None,
        offset: int | None = None,
    ) -> None:
        """Commit offsets to the broker.

        Without arguments, commits the current position of every assigned
        partition (the legacy whole-assignment behavior). With ``topic`` and
        ``partition``, commits just that partition — at ``offset`` when
        given, else at its current position. Per-partition commits let a
        checkpoint coordinator pin exactly the offsets captured at a
        barrier, independent of how far the consumer has read since.
        """
        if topic is None:
            if partition is not None or offset is not None:
                raise ValueError("partition/offset require a topic")
            for (name, part), position in self._positions.items():
                if (name, part) in self._assignment:
                    self._broker.commit(self._group, name, part, position)
            return
        if partition is None:
            raise ValueError("per-partition commit requires a partition")
        if offset is None:
            if (topic, partition) not in self._positions:
                raise InvalidOffsetError(f"{topic}/{partition} has no position")
            offset = self._positions[(topic, partition)]
        if offset < 0:
            raise InvalidOffsetError(f"cannot commit negative offset {offset}")
        self._broker.commit(self._group, topic, partition, offset)

    def committed(self, topic: str, partition: int) -> int | None:
        """Offset last committed for this group+partition (None if never)."""
        return self._broker.committed(self._group, topic, partition)

    def __iter__(self) -> Iterator[Message]:
        """Drain everything currently available (non-blocking)."""
        while True:
            batch = self.poll()
            if not batch:
                return
            yield from batch


class ConsumerGroup:
    """Static range assignment of a topic's partitions over N members."""

    def __init__(self, broker: Broker, group: str, topic: str, members: int) -> None:
        if members < 1:
            raise ValueError("a consumer group needs at least one member")
        topic_obj = broker.topic(topic)
        partitions = list(range(topic_obj.num_partitions))
        self._consumers: list[Consumer] = []
        for member in range(members):
            share = [
                (topic, p) for i, p in enumerate(partitions) if i % members == member
            ]
            consumer = Consumer(broker, group)
            consumer.assign(share)
            self._consumers.append(consumer)

    @property
    def members(self) -> list[Consumer]:
        return list(self._consumers)
