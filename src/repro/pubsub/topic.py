"""Topic: a named set of partition logs plus the key→partition mapping."""

from __future__ import annotations

import zlib
from typing import Any

from .log import PartitionLog


class Topic:
    """Named collection of partitions with Kafka-style key hashing.

    Records with the same key always land in the same partition, which
    preserves per-key ordering — STRATA relies on this to keep all tuples
    of one (job, layer) in order across the Raw Data / Event connectors.
    """

    def __init__(self, name: str, partitions: int = 1, retention: int | None = None) -> None:
        if partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self._name = name
        self._logs = [PartitionLog(name, p, retention) for p in range(partitions)]
        self._round_robin = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_partitions(self) -> int:
        return len(self._logs)

    def partition_for(self, key: str | None) -> int:
        """Deterministic partition choice; keyless records round-robin."""
        if key is None:
            partition = self._round_robin % len(self._logs)
            self._round_robin += 1
            return partition
        return zlib.crc32(key.encode("utf-8")) % len(self._logs)

    def log(self, partition: int) -> PartitionLog:
        """The append-only log backing one partition."""
        return self._logs[partition]

    def append(
        self,
        key: str | None,
        value: Any,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
        partition: int | None = None,
    ) -> tuple[int, int]:
        """Append a record, returning its ``(partition, offset)``."""
        if partition is None:
            partition = self.partition_for(key)
        offset = self._logs[partition].append(key, value, timestamp, headers)
        return partition, offset

    def end_offsets(self) -> dict[int, int]:
        """Next-offset-to-be-written for every partition."""
        return {log.partition: log.end_offset for log in self._logs}
