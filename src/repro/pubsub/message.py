"""Message record exchanged through the broker.

Mirrors the Kafka record model: an optional partitioning key, an opaque
value, a producer-assigned event timestamp, and broker-assigned position
(topic, partition, offset) filled in at append time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """One immutable record in a partition log."""

    topic: str
    partition: int
    offset: int
    key: str | None
    value: Any
    timestamp: float
    headers: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if self.partition < 0:
            raise ValueError("partition must be non-negative")
