"""In-process publish/subscribe subsystem (Apache Kafka substitute).

Implements topics, partitions, append-only offset logs, producers, and
consumer groups. STRATA's Raw Data Connector and Event Connector run on
this broker, decoupling the Raw Data Collector, Event Monitor, and Event
Aggregator modules exactly as in Figure 2 of the paper.
"""

from .broker import Broker
from .consumer import Consumer, ConsumerGroup
from .errors import (
    BrokerClosedError,
    InvalidOffsetError,
    PubSubError,
    TopicExistsError,
    UnknownTopicError,
)
from .log import PartitionLog
from .message import Message
from .producer import Producer
from .topic import Topic

__all__ = [
    "Broker",
    "Topic",
    "PartitionLog",
    "Message",
    "Producer",
    "Consumer",
    "ConsumerGroup",
    "PubSubError",
    "UnknownTopicError",
    "TopicExistsError",
    "InvalidOffsetError",
    "BrokerClosedError",
]
