"""Exception hierarchy for the pub/sub subsystem."""

from __future__ import annotations


class PubSubError(Exception):
    """Base class for all pub/sub errors."""


class UnknownTopicError(PubSubError):
    """Raised when producing to or consuming from a non-existent topic."""


class TopicExistsError(PubSubError):
    """Raised when creating a topic that already exists."""


class InvalidOffsetError(PubSubError):
    """Raised when seeking outside a partition log's retained range."""


class BrokerClosedError(PubSubError):
    """Raised when an operation is attempted on a closed broker."""
