"""Append-only partition log with offset-based reads and retention.

Each partition is an ordered sequence of :class:`Message` records addressed
by monotonically increasing offsets. Readers poll from an offset; a
condition variable lets blocking readers wake as soon as new records land.
Retention trims the head of the log (oldest records) while preserving
offset numbering, as Kafka does.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from .errors import InvalidOffsetError
from .message import Message


class PartitionLog:
    """Thread-safe append-only log for one (topic, partition)."""

    def __init__(self, topic: str, partition: int, retention: int | None = None) -> None:
        self._topic = topic
        self._partition = partition
        self._retention = retention
        self._records: list[Message] = []
        self._base_offset = 0  # offset of _records[0]
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    @property
    def topic(self) -> str:
        return self._topic

    @property
    def partition(self) -> int:
        return self._partition

    @property
    def start_offset(self) -> int:
        """Offset of the oldest retained record."""
        with self._lock:
            return self._base_offset

    @property
    def end_offset(self) -> int:
        """Offset that the *next* appended record will receive."""
        with self._lock:
            return self._base_offset + len(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def append(
        self,
        key: str | None,
        value: Any,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
    ) -> int:
        """Append one record and return its assigned offset."""
        if timestamp is None:
            timestamp = time.time()
        with self._not_empty:
            offset = self._base_offset + len(self._records)
            self._records.append(
                Message(
                    topic=self._topic,
                    partition=self._partition,
                    offset=offset,
                    key=key,
                    value=value,
                    timestamp=timestamp,
                    headers=dict(headers or {}),
                )
            )
            if self._retention is not None and len(self._records) > self._retention:
                excess = len(self._records) - self._retention
                del self._records[:excess]
                self._base_offset += excess
            self._not_empty.notify_all()
            return offset

    def read(self, offset: int, max_records: int = 1024) -> list[Message]:
        """Return up to ``max_records`` records starting at ``offset``.

        An offset before the retained range raises
        :class:`InvalidOffsetError`; an offset at or past the end returns an
        empty list (nothing new yet).
        """
        with self._lock:
            return self._read_locked(offset, max_records)

    def _read_locked(self, offset: int, max_records: int) -> list[Message]:
        if offset < self._base_offset:
            raise InvalidOffsetError(
                f"offset {offset} below retained start {self._base_offset} "
                f"for {self._topic}/{self._partition}"
            )
        index = offset - self._base_offset
        return self._records[index : index + max_records]

    def read_blocking(
        self, offset: int, max_records: int = 1024, timeout: float | None = None
    ) -> list[Message]:
        """Like :meth:`read` but waits up to ``timeout`` for new records."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                records = self._read_locked(offset, max_records)
                if records:
                    return records
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                self._not_empty.wait(remaining)
