"""Producer client: publishes records into broker topics."""

from __future__ import annotations

from typing import Any

from .broker import Broker


class Producer:
    """Publishes records to a broker, hashing keys to partitions.

    ``auto_create`` mirrors Kafka's ``auto.create.topics.enable``: STRATA's
    connectors rely on it so deploying a pipeline never races topic setup.
    """

    def __init__(
        self, broker: Broker, auto_create: bool = True, default_partitions: int = 1
    ) -> None:
        self._broker = broker
        self._auto_create = auto_create
        self._default_partitions = default_partitions
        self._sent = 0

    @property
    def records_sent(self) -> int:
        return self._sent

    def partitions_of(self, topic: str) -> int:
        """Partition count of ``topic`` (for per-partition broadcasts)."""
        if self._auto_create:
            return self._broker.ensure_topic(
                topic, self._default_partitions
            ).num_partitions
        return self._broker.topic(topic).num_partitions

    def send(
        self,
        topic: str,
        value: Any,
        key: str | None = None,
        timestamp: float | None = None,
        headers: dict[str, Any] | None = None,
        partition: int | None = None,
    ) -> tuple[int, int]:
        """Publish one record; returns its ``(partition, offset)``."""
        if self._auto_create:
            topic_obj = self._broker.ensure_topic(topic, self._default_partitions)
        else:
            topic_obj = self._broker.topic(topic)
        self._sent += 1
        return topic_obj.append(key, value, timestamp, headers, partition)
