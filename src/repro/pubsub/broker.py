"""In-process message broker (the Kafka substitute).

Owns topics and consumer-group offset state. Producers and consumers are
thin clients bound to one broker instance; everything runs in-process, but
the interaction model (topics, partitions, offsets, consumer groups,
commit/seek/replay) mirrors Kafka so STRATA's connector layer exercises the
same decoupling the paper's prototype gets from Kafka.
"""

from __future__ import annotations

import threading
from typing import Iterable

from .errors import BrokerClosedError, TopicExistsError, UnknownTopicError
from .topic import Topic


class Broker:
    """Registry of topics plus durable consumer-group offsets."""

    def __init__(self) -> None:
        self._topics: dict[str, Topic] = {}
        # committed offsets: (group, topic, partition) -> next offset to read
        self._commits: dict[tuple[str, str, int], int] = {}
        self._lock = threading.RLock()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BrokerClosedError("broker is closed")

    # -- topic management --------------------------------------------------

    def create_topic(
        self, name: str, partitions: int = 1, retention: int | None = None
    ) -> Topic:
        with self._lock:
            self._check_open()
            if name in self._topics:
                raise TopicExistsError(f"topic {name!r} already exists")
            topic = Topic(name, partitions, retention)
            self._topics[name] = topic
            return topic

    def ensure_topic(
        self, name: str, partitions: int = 1, retention: int | None = None
    ) -> Topic:
        """Create the topic if needed, otherwise return the existing one."""
        with self._lock:
            self._check_open()
            topic = self._topics.get(name)
            if topic is None:
                topic = Topic(name, partitions, retention)
                self._topics[name] = topic
            return topic

    def topic(self, name: str) -> Topic:
        """Look up an existing topic (raises UnknownTopicError)."""
        with self._lock:
            self._check_open()
            try:
                return self._topics[name]
            except KeyError:
                raise UnknownTopicError(f"unknown topic {name!r}") from None

    def topics(self) -> list[str]:
        """Sorted names of all topics."""
        with self._lock:
            return sorted(self._topics)

    def has_topic(self, name: str) -> bool:
        """True when ``name`` exists."""
        with self._lock:
            return name in self._topics

    # -- consumer-group offsets ---------------------------------------------

    def committed(self, group: str, topic: str, partition: int) -> int | None:
        """A group's committed next-read offset, or None."""
        with self._lock:
            return self._commits.get((group, topic, partition))

    def commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        """Durably record a group's next-read offset."""
        if offset < 0:
            raise ValueError("committed offset must be non-negative")
        with self._lock:
            self._check_open()
            self._commits[(group, topic, partition)] = offset

    def reset_group(self, group: str, topics: Iterable[str] | None = None) -> None:
        """Drop a group's committed offsets (forces a replay-from-policy)."""
        with self._lock:
            selected = None if topics is None else set(topics)
            self._commits = {
                key: value
                for key, value in self._commits.items()
                if not (key[0] == group and (selected is None or key[1] in selected))
            }

    def close(self) -> None:
        """Reject all further operations on this broker."""
        with self._lock:
            self._closed = True
