"""STRATA core: the paper's contribution.

The Table 1 API (:class:`Strata`), the Raw Data Collectors, the pub/sub
module connectors, the use-case user functions, and the Alg. 1 pipeline
builder.
"""

from .api import (
    MODULE_AGGREGATOR,
    MODULE_EXPERT,
    MODULE_MONITOR,
    MODULE_RAW,
    Strata,
)
from .collectors import LiveLayerFeed, OTImageCollector, PrintingParameterCollector
from .connectors import PubSubReaderSource, PubSubWriterSink, topic_for_stream
from .deploy import DeployConfig, RecoveryConfig
from .errors import (
    DeployConfigError,
    DeploymentError,
    PipelineDefinitionError,
    StrataError,
    UnknownStreamError,
)
from .functions import (
    DBSCANCorrelator,
    IsolateCells,
    IsolateSpecimens,
    LabelCell,
    LabelSpecimenCells,
    LabelSpecimenCellsAdaptive,
    make_correlator,
)
from .handles import SinkHandle, StreamHandle
from .operators import (
    CorrelateEventsOperator,
    DetectEventOperator,
    PartitionOperator,
    default_partition,
)
from .punctuation import is_punctuation, make_punctuation
from .streaks import (
    DetectStreakRows,
    StreakCorrelator,
    StreakPipeline,
    build_streak_use_case,
)
from .usecase import (
    UseCaseConfig,
    UseCasePipeline,
    build_use_case,
    calibrate_job,
    specimen_regions_px,
)

__all__ = [
    "Strata",
    "StreamHandle",
    "SinkHandle",
    "DeployConfig",
    "RecoveryConfig",
    "DeployConfigError",
    "MODULE_RAW",
    "MODULE_MONITOR",
    "MODULE_AGGREGATOR",
    "MODULE_EXPERT",
    "OTImageCollector",
    "PrintingParameterCollector",
    "LiveLayerFeed",
    "PubSubWriterSink",
    "PubSubReaderSource",
    "topic_for_stream",
    "IsolateSpecimens",
    "IsolateCells",
    "LabelCell",
    "LabelSpecimenCells",
    "LabelSpecimenCellsAdaptive",
    "DetectStreakRows",
    "StreakCorrelator",
    "StreakPipeline",
    "build_streak_use_case",
    "DBSCANCorrelator",
    "make_correlator",
    "PartitionOperator",
    "DetectEventOperator",
    "CorrelateEventsOperator",
    "default_partition",
    "is_punctuation",
    "make_punctuation",
    "UseCaseConfig",
    "UseCasePipeline",
    "build_use_case",
    "calibrate_job",
    "specimen_regions_px",
    "StrataError",
    "UnknownStreamError",
    "PipelineDefinitionError",
    "DeploymentError",
]
