"""Second use case: recoater-streak monitoring.

The paper's future work (§7) calls for extending the use-case portfolio
to other "type[s] of monitored defect". Recoater streaks are the natural
second target: a nicked blade starves a thin band of powder along the
recoating direction, under-melting *every* specimen it crosses and
persisting for layers until the blade is cleaned.

The pipeline differs instructively from the thermal use case — and needs
no new framework machinery, only different user functions on the same
Table 1 API:

* no ``isolateSpecimen`` partition: a streak is a *plate-wide* feature,
  so the whole layer is analyzed as one unit (the Table 1 partition
  default), and the Event Aggregator groups plate-level events;
* ``detectEvent`` scans melted-pixel row profiles for depressed bands;
* ``correlateEvents`` clusters the bands in (y, layer) space: a real
  streak is a y-stable band persisting over consecutive layers, which is
  exactly a DBSCAN cluster elongated along the layer axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ..am.dataset import LayerRecord
from ..clustering.dbscan import dbscan
from ..spe.sink import CollectingSink, Sink
from ..spe.source import Source
from ..spe.tuples import StreamTuple
from .api import Strata
from .collectors import OTImageCollector, PrintingParameterCollector


class DetectStreakRows:
    """detectEvent F: flag image rows whose melt emission is depressed.

    Per pixel row, the mean intensity over *melted* pixels is compared to
    a windowed median baseline of neighboring rows; rows depressed by more
    than ``depression_gray`` (chosen above the hatch-texture amplitude)
    form candidate bands. One event tuple is emitted per contiguous band.
    """

    def __init__(
        self,
        melt_floor: float = 32.0,
        depression_gray: float = 18.0,
        baseline_rows: int = 25,
        min_melted_px: int = 10,
    ) -> None:
        self._melt_floor = melt_floor
        self._depression = depression_gray
        self._baseline_rows = baseline_rows
        self._min_melted = min_melted_px
        self.rows_scanned = 0

    def __call__(self, t: StreamTuple) -> list[StreamTuple]:
        image = np.asarray(t.payload["image"], dtype=float)
        melted = image >= self._melt_floor
        counts = melted.sum(axis=1)
        valid = counts >= self._min_melted
        if not valid.any():
            return []
        sums = (image * melted).sum(axis=1)
        row_mean = np.zeros(len(counts))
        row_mean[valid] = sums[valid] / counts[valid]
        self.rows_scanned += int(valid.sum())

        baseline = _windowed_median(row_mean, valid, self._baseline_rows)
        depressed = valid & (baseline - row_mean > self._depression)
        outputs: list[StreamTuple] = []
        for band_start, band_end in _contiguous_bands(depressed):
            band = slice(band_start, band_end)
            depth = float((baseline[band] - row_mean[band])[valid[band]].mean())
            outputs.append(
                t.derive(
                    payload={
                        "y_px": (band_start + band_end - 1) / 2.0,
                        "band_rows": band_end - band_start,
                        "depression_gray": depth,
                        "melted_px": int(counts[band].sum()),
                    },
                    portion=f"rows:{band_start}-{band_end - 1}",
                )
            )
        return outputs


def _windowed_median(values: np.ndarray, valid: np.ndarray, window: int) -> np.ndarray:
    """Median of valid entries in a centered window, per position."""
    half = max(1, window // 2)
    n = len(values)
    baseline = np.zeros(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        segment = values[lo:hi][valid[lo:hi]]
        baseline[i] = np.median(segment) if len(segment) else 0.0
    return baseline


def _contiguous_bands(mask: np.ndarray) -> list[tuple[int, int]]:
    """[start, end) index ranges of True runs in a boolean vector."""
    bands: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(mask.tolist() + [False]):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            bands.append((start, i))
            start = None
    return bands


class StreakCorrelator:
    """correlateEvents F: persistent y-stable bands across layers.

    Band events are clustered in (y_mm, layer) space; a cluster spanning
    at least ``min_layers`` distinct layers is reported as a streak with
    its transverse position, layer span, and mean depression.
    """

    def __init__(
        self,
        px_per_mm: float,
        y_tolerance_mm: float = 1.5,
        min_layers: int = 2,
    ) -> None:
        self._px_per_mm = px_per_mm
        self._y_tol = y_tolerance_mm
        self._min_layers = min_layers

    def __call__(
        self, job: str, layer: int, specimen: str, events: list[StreamTuple]
    ) -> dict[str, Any]:
        if not events:
            return {"num_band_events": 0, "streaks": []}
        points = np.array(
            [
                (e.payload["y_px"] / self._px_per_mm, float(e.layer) * self._y_tol)
                for e in events
            ]
        )
        # eps spans one y-tolerance in both axes: adjacent layers at the
        # same y are neighbors, same-layer bands within tolerance merge.
        labels = dbscan(points, eps=self._y_tol * 1.5, min_samples=1)
        streaks: list[dict[str, Any]] = []
        for cluster_id in sorted(set(labels.tolist())):
            members = [e for e, label in zip(events, labels) if label == cluster_id]
            layers = sorted({e.layer for e in members})
            if len(layers) < self._min_layers:
                continue
            streaks.append(
                {
                    "y_mm": float(
                        np.mean([e.payload["y_px"] for e in members])
                        / self._px_per_mm
                    ),
                    "first_layer": layers[0],
                    "last_layer": layers[-1],
                    "layers_observed": len(layers),
                    "mean_depression_gray": float(
                        np.mean([e.payload["depression_gray"] for e in members])
                    ),
                }
            )
        streaks.sort(key=lambda s: s["y_mm"])
        return {"num_band_events": len(events), "streaks": streaks}


@dataclass
class StreakPipeline:
    """Composed recoater-monitoring pipeline."""

    strata: Strata
    sink: Sink
    detect_fn: DetectStreakRows


def build_streak_use_case(
    ot_records: Iterable[LayerRecord],
    pp_records: Iterable[LayerRecord],
    image_px: int,
    window_layers: int = 15,
    plate_mm: float = 250.0,
    strata: Strata | None = None,
    sink: Sink | None = None,
    ot_source: Source | None = None,
    detect: DetectStreakRows | None = None,
    min_layers: int = 2,
) -> StreakPipeline:
    """Compose the recoater-streak pipeline on a Strata instance.

    Note the absence of a partition step: the Table 1 default (the whole
    tuple as one specimen) is what plate-wide analysis wants.
    """
    if strata is None:
        strata = Strata()
    if sink is None:
        sink = CollectingSink("recoater-expert")
    detect_fn = detect or DetectStreakRows()
    strata.add_source(PrintingParameterCollector(pp_records), "pp")
    strata.add_source(ot_source or OTImageCollector(ot_records), "OT")
    strata.fuse("OT", "pp", "OT&pp")
    strata.detect_event("OT&pp", "bands", detect_fn)
    strata.correlate_events(
        "bands",
        "streaks",
        window_layers,
        StreakCorrelator(px_per_mm=image_px / plate_mm, min_layers=min_layers),
    )
    strata.deliver("streaks", sink)
    return StreakPipeline(strata=strata, sink=sink, detect_fn=detect_fn)
