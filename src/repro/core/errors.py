"""Exception hierarchy for the STRATA framework layer."""

from __future__ import annotations


class StrataError(Exception):
    """Base class for STRATA API errors."""


class UnknownStreamError(StrataError):
    """Raised when an API method references a stream never produced."""


class PipelineDefinitionError(StrataError):
    """Raised when API calls compose an invalid pipeline."""


class DeploymentError(StrataError):
    """Raised when deployment/start/stop is driven incorrectly."""


class DeployConfigError(DeploymentError):
    """Raised when a :class:`~repro.core.deploy.DeployConfig` is invalid.

    Subclasses :class:`DeploymentError` so code catching the broader
    deployment failures keeps working; every rejected knob combination
    across the deploy surface raises this one type.
    """
