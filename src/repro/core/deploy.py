"""The unified deployment surface: one config object for every subsystem.

:class:`DeployConfig` replaces the grown-over-time keyword soup of
``Strata.deploy(checkpointer=..., recover_from=..., optimize=...,
distributed=...)`` with one validated dataclass grouping each subsystem's
knobs::

    config = DeployConfig(
        plan=PlanConfig(parallelism=2),
        recovery=RecoveryConfig(interval_s=0.5, retain=3),
        elastic=ElasticConfig(max_parallelism=8),
    )
    report = strata.deploy(config)

Cross-field rules live in one place (``__post_init__``) and every
violation raises the same typed error,
:class:`~repro.core.errors.DeployConfigError`, so callers have exactly one
thing to catch. The legacy keywords still work on ``deploy``/``start``
but emit a :class:`DeprecationWarning` and are internally mapped onto a
``DeployConfig``.

``from_dict``/``to_dict`` round-trip the config through plain mappings
(minus live objects: coordinators, contexts, and scale policies are code,
not configuration), which is what the CLI's ``--config file.toml``
support builds on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any

from ..elastic.config import ElasticConfig
from ..elastic.replan import ReplanConfig
from ..obs.context import ObsConfig, ObsContext
from ..spe.plan import PlanConfig
from .errors import DeployConfigError


@dataclass(frozen=True)
class RecoveryConfig:
    """Checkpointing and recovery knobs for one deployment.

    Either hand over a live coordinator (``checkpointer=``) or describe
    one declaratively (``interval_s``/``retain``) and let ``Strata``
    build it against its own KV store — not both. ``recover_from``
    restores the newest committed checkpoint before execution starts:
    ``True`` for the instance's own store, or a store/coordinator object.
    """

    checkpointer: Any = None
    recover_from: Any = None
    interval_s: float | None = None
    retain: int | None = None

    def __post_init__(self) -> None:
        if self.interval_s is not None and self.interval_s <= 0:
            raise DeployConfigError("recovery.interval_s must be positive")
        if self.retain is not None and self.retain < 1:
            raise DeployConfigError("recovery.retain must keep at least one epoch")
        if self.checkpointer is not None and (
            self.interval_s is not None or self.retain is not None
        ):
            raise DeployConfigError(
                "recovery: pass either a live checkpointer or declarative "
                "interval_s/retain knobs, not both — the knobs configure a "
                "coordinator Strata builds for you"
            )

    @property
    def active(self) -> bool:
        """True when any field asks for checkpointing or recovery."""
        return (
            self.checkpointer is not None
            or self.recover_from is not None
            or self.interval_s is not None
            or self.retain is not None
        )


#: DeployConfig fields backed by a dataclass, for dict round-tripping.
_SUB_CONFIGS: dict[str, type] = {
    "plan": PlanConfig,
    "recovery": RecoveryConfig,
    "elastic": ElasticConfig,
    "obs": ObsConfig,
}

#: sub-config fields that hold live objects, not serializable data.
_LIVE_FIELDS: dict[str, tuple[str, ...]] = {
    "recovery": ("checkpointer", "recover_from"),
    "elastic": ("policy",),
}

#: sub-config fields that are themselves dataclass tables, one nesting
#: level down ([elastic.replan] in TOML).
_NESTED_CONFIGS: dict[str, dict[str, type]] = {
    "elastic": {"replan": ReplanConfig},
}


@dataclass(frozen=True)
class DeployConfig:
    """Everything a deployment needs, validated as a whole.

    ``plan``     plan-compiler knobs: ``True`` for defaults, a
                 :class:`~repro.spe.plan.PlanConfig` for explicit ones,
                 ``None``/``False`` to run the graph as declared.
    ``dist``     distributed execution: ``True``, a worker count, or a
                 :class:`~repro.dist.DistConfig`.
    ``recovery`` checkpointing/recovery, a :class:`RecoveryConfig`.
    ``obs``      observability: ``True``, an ``ObsConfig``/``ObsContext``;
                 ``None`` keeps whatever the ``Strata`` instance was
                 constructed with.
    ``elastic``  QoS-driven runtime rescaling: ``True`` for defaults or an
                 :class:`~repro.elastic.ElasticConfig`.
    ``fleet``    control-plane settings for ``strata-repro serve``:
                 ``True`` for defaults or a
                 :class:`~repro.fleet.FleetConfig`. Ignored by plain
                 ``deploy()``/``start()`` — it configures the service a
                 config file boots, not one pipeline.
    """

    plan: Any = None
    dist: Any = None
    recovery: RecoveryConfig | None = None
    obs: Any = None
    elastic: Any = None
    fleet: Any = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "plan", PlanConfig.resolve(self.plan))
            object.__setattr__(self, "elastic", ElasticConfig.resolve(self.elastic))
        except (TypeError, ValueError) as exc:
            raise DeployConfigError(str(exc)) from exc
        if self.fleet is not None:
            from ..fleet.config import FleetConfig

            try:
                object.__setattr__(self, "fleet", FleetConfig.resolve(self.fleet))
            except (TypeError, ValueError) as exc:
                raise DeployConfigError(str(exc)) from exc
        if self.dist is False:
            object.__setattr__(self, "dist", None)
        if self.recovery is not None and not isinstance(self.recovery, RecoveryConfig):
            raise DeployConfigError(
                f"recovery must be a RecoveryConfig, got {self.recovery!r}"
            )
        if self.dist is not None and self.recovery is not None and self.recovery.active:
            raise DeployConfigError(
                "distributed deployment has its own crash recovery (replay + "
                "dedup); recovery= does not apply — drop one of the two"
            )
        if self.elastic is not None and self.plan is None:
            raise DeployConfigError(
                "elastic rescaling drains and re-splices plan-compiled replica "
                "groups; set plan=True (or a PlanConfig) alongside elastic="
            )

    def resolved_dist(self):
        """The ``dist`` field as a ``DistConfig | None`` (lazy import)."""
        from ..dist import DistConfig

        try:
            return DistConfig.resolve(self.dist)
        except (TypeError, ValueError) as exc:
            raise DeployConfigError(str(exc)) from exc

    def resolved_obs(self, default: ObsContext | None = None) -> ObsContext | None:
        """The ``obs`` field as an ``ObsContext``; ``None`` keeps ``default``."""
        if self.obs is None:
            return default
        try:
            return ObsContext.resolve(self.obs)
        except TypeError as exc:
            raise DeployConfigError(str(exc)) from exc

    # -- dict / TOML round-trip ---------------------------------------------

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeployConfig":
        """Build a config from a plain mapping (e.g. a parsed TOML table).

        Sub-config tables become their dataclasses; booleans pass through
        (``elastic = true``). Unknown keys — top-level or nested — raise
        :class:`DeployConfigError` instead of being silently dropped, so a
        typo in a config file cannot masquerade as a default.
        """
        if not isinstance(data, dict):
            raise DeployConfigError(f"deploy config must be a mapping, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise DeployConfigError(
                f"unknown deploy config key(s): {', '.join(sorted(unknown))}; "
                f"expected {', '.join(sorted(known))}"
            )
        kwargs: dict[str, Any] = {}
        for key, value in data.items():
            if isinstance(value, dict):
                kwargs[key] = _sub_from_dict(key, value)
            else:
                kwargs[key] = value
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        """The inverse of :meth:`from_dict`; omits unset (None) fields.

        Live objects (a handed-over checkpointer, an ``ObsContext``, a
        custom scale policy) are code, not configuration — attempting to
        serialize a config holding one raises :class:`DeployConfigError`.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                out[f.name] = _sub_to_dict(f.name, value)
            elif isinstance(value, (bool, int, float, str)):
                out[f.name] = value
            else:
                raise DeployConfigError(
                    f"deploy config field {f.name!r} holds a live object "
                    f"({type(value).__name__}) and cannot be serialized"
                )
        return out

    def describe(self) -> str:
        """One line per configured subsystem, for logs and ``explain``."""
        parts = []
        if self.plan is not None:
            parts.append(f"plan({self.plan.describe()})")
        if self.dist is not None:
            parts.append("dist")
        if self.recovery is not None and self.recovery.active:
            parts.append("recovery")
        if self.obs is not None:
            parts.append("obs")
        if self.elastic is not None:
            parts.append(f"elastic({self.elastic.describe()})")
        if self.fleet is not None:
            parts.append(f"fleet({self.fleet.describe()})")
        return " + ".join(parts) if parts else "defaults"


def _sub_from_dict(key: str, table: dict[str, Any]) -> Any:
    if key == "dist":
        from ..dist import DistConfig

        sub_cls: type = DistConfig
    elif key == "fleet":
        from ..fleet.config import FleetConfig

        sub_cls = FleetConfig
    elif key in _SUB_CONFIGS:
        sub_cls = _SUB_CONFIGS[key]
    else:
        raise DeployConfigError(f"deploy config key {key!r} does not take a table")
    live = set(_LIVE_FIELDS.get(key, ()))
    names = {f.name for f in fields(sub_cls)}
    unknown = set(table) - names
    rejected = (set(table) & live) | unknown
    if rejected:
        # name offenders by their full dotted path (elastic.max_paralelism,
        # fleet.worker_budgt, ...) so a typo deep in a TOML file points at
        # the exact line to fix, not just the table it sits in
        paths = ", ".join(f"{key}.{name}" for name in sorted(rejected))
        raise DeployConfigError(
            f"unknown or non-serializable key(s) in [{key}]: {paths}"
        )
    nested = _NESTED_CONFIGS.get(key, {})
    coerced: dict[str, Any] = {}
    for name, value in table.items():
        if isinstance(value, dict):
            if name not in nested:
                raise DeployConfigError(
                    f"deploy config key {key}.{name} does not take a table"
                )
            coerced[name] = _nested_from_dict(key, name, nested[name], value)
        elif isinstance(value, list):
            coerced[name] = tuple(value)
        else:
            coerced[name] = value
    try:
        return sub_cls(**coerced)
    except (TypeError, ValueError) as exc:
        raise DeployConfigError(f"invalid [{key}] config: {exc}") from exc


def _nested_from_dict(
    key: str, name: str, nested_cls: type, table: dict[str, Any]
) -> Any:
    names = {f.name for f in fields(nested_cls)}
    unknown = set(table) - names
    if unknown:
        paths = ", ".join(f"{key}.{name}.{field}" for field in sorted(unknown))
        raise DeployConfigError(
            f"unknown key(s) in [{key}.{name}]: {paths}"
        )
    try:
        return nested_cls(**table)
    except (TypeError, ValueError) as exc:
        raise DeployConfigError(f"invalid [{key}.{name}] config: {exc}") from exc


def _sub_to_dict(key: str, value: Any) -> dict[str, Any]:
    live = set(_LIVE_FIELDS.get(key, ()))
    out: dict[str, Any] = {}
    for f in fields(value):
        item = getattr(value, f.name)
        if item is None:
            continue
        if f.name in live:
            raise DeployConfigError(
                f"deploy config field {key}.{f.name} holds a live object "
                f"({type(item).__name__}) and cannot be serialized"
            )
        if dataclasses.is_dataclass(item) and not isinstance(item, type):
            out[f.name] = _sub_to_dict(f"{key}.{f.name}", item)
        else:
            out[f.name] = list(item) if isinstance(item, tuple) else item
    return out
