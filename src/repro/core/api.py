"""The STRATA framework facade — the paper's Table 1 API.

One :class:`Strata` instance owns the three data-handling components of
Figure 2: a stream processing engine for analysis, a pub/sub broker for
the module connectors, and a key-value store for data-at-rest. Experts
compose pipelines by chaining the API methods over named streams::

    strata = Strata()
    strata.add_source(PrintingParameterCollector(records), "pp")
    strata.add_source(OTImageCollector(records), "OT")
    strata.fuse("OT", "pp", "OT&pp")
    strata.partition("OT&pp", "spec", IsolateSpecimens(image_px))
    strata.partition("spec", "cell", IsolateCells(edge))
    strata.detect_event("cell", "cellLabel", LabelCell(strata.kv))
    strata.correlate_events("cellLabel", "out", L, DBSCANCorrelator(...))
    strata.deliver("out", expert_sink)
    report = strata.deploy(DeployConfig(plan=True))

Every method compiles to native operators of the underlying SPE, so
pipelines inherit parallel execution (``parallelism=`` on the Event
Monitor methods shards work by ``(job, specimen)``) and stay portable
across engines. snake_case is the canonical method surface; the paper's
camelCase spellings (Table 1: ``addSource``, ``detectEvent``,
``correlateEvents``) are installed as exact aliases.

Deployment is driven by one validated config object
(:class:`~repro.core.deploy.DeployConfig` — plan compiler, distribution,
recovery, observability, and elastic rescaling knobs in one place); the
pre-config keyword arguments of ``deploy``/``start`` still work but emit
a ``DeprecationWarning``.
"""

from __future__ import annotations

import itertools
import math
import time
import warnings
from dataclasses import replace as _dc_replace
from typing import Any, Callable, Hashable

from ..kvstore.api import KVStore
from ..kvstore.memory import MemoryStore
from ..obs.context import ObsConfig, ObsContext
from ..obs.registry import MetricsSnapshot
from ..pubsub.broker import Broker
from ..recovery.source import CheckpointableSource
from ..spe.engine import RunReport, StreamEngine
from ..spe.operators.filter import FilterOperator
from ..spe.operators.join import JoinOperator
from ..spe.query import Query
from ..spe.sink import CollectingSink, Sink
from ..spe.source import Source
from ..spe.tuples import StreamTuple
from .connectors import PubSubReaderSource, PubSubWriterSink, topic_for_stream
from .deploy import DeployConfig, RecoveryConfig
from .errors import (
    DeployConfigError,
    DeploymentError,
    PipelineDefinitionError,
    UnknownStreamError,
)
from .handles import StreamHandle, install_camelcase_aliases
from .operators import (
    CorrelateEventsOperator,
    CorrelateFunction,
    DetectEventOperator,
    PartitionOperator,
    UserFunction,
)
from .punctuation import is_punctuation

#: module names, matching Figure 2
MODULE_RAW = "raw-data-collector"
MODULE_MONITOR = "event-monitor"
MODULE_AGGREGATOR = "event-aggregator"
MODULE_EXPERT = "expert"

#: per-verb output schema hints (Table 1), carried on stream handles
SCHEMA_SOURCE = "<tau, job, layer, [k1:v1, k2:v2, ...]>"
SCHEMA_FUSE = "<tau, job, layer, [payload1 ++ payload2]>"
SCHEMA_PARTITION = "<tau, job, layer, specimen, portion, [k1:v1, ...]>"
SCHEMA_DETECT = "<tau, job, layer, specimen, portion, [event attrs]>"
SCHEMA_CORRELATE = "<tau, job, layer, specimen, [result attrs]>"


def _specimen_key(t: StreamTuple) -> Hashable:
    """Shard key keeping a specimen's events and punctuation together."""
    return (t.job, t.specimen)


class Strata:
    """Entry point of the framework: API methods + deployment control."""

    def __init__(
        self,
        store: KVStore | None = None,
        broker: Broker | None = None,
        engine_mode: str = "threaded",
        connector_mode: str = "direct",
        capacity: int | None = 10_000,
        name: str = "strata",
        obs: ObsContext | ObsConfig | bool | None = None,
    ) -> None:
        if connector_mode not in ("direct", "pubsub"):
            raise ValueError("connector_mode must be 'direct' or 'pubsub'")
        if connector_mode == "pubsub" and engine_mode != "threaded":
            raise ValueError("pub/sub connectors require the threaded engine")
        self._store = store if store is not None else MemoryStore()
        self._broker = broker if broker is not None else Broker()
        self._engine = StreamEngine(mode=engine_mode, capacity=capacity)
        self._engine_mode = engine_mode
        self._connector_mode = connector_mode
        # observability: True for defaults, an ObsConfig/ObsContext for
        # explicit knobs, None/False to run unobserved (zero overhead)
        self._obs = ObsContext.resolve(obs)
        self._query = Query(name, default_capacity=capacity)
        self._capacity = capacity
        # stream name -> (producing node name, producing module)
        self._streams: dict[str, tuple[str, str]] = {}
        # streams whose tuples carry a specimen assignment: stages keyed by
        # (job, specimen) downstream of these are safe to replicate.
        self._keyed_streams: set[str] = set()
        self._uid = itertools.count()
        self._sinks: dict[str, Sink] = {}
        self._deployed = False
        # set by config-driven deployments: the live rescale controller and
        # a periodic checkpointer Strata itself materialized (and thus owns)
        self._elastic: Any | None = None
        self._ckpt_periodic: Any | None = None

    # -- Key-Value Store module (Table 1: store/get) -----------------------

    @property
    def kv(self) -> KVStore:
        """The shared key-value store, accessible by all modules."""
        return self._store

    @property
    def broker(self) -> Broker:
        """The pub/sub broker backing the connectors."""
        return self._broker

    @property
    def query(self) -> Query:
        """The logical query being composed (used by the distributed CLI)."""
        return self._query

    @property
    def capacity(self) -> int | None:
        """Default stream capacity passed to the engine."""
        return self._capacity

    def store(self, key: str, value: Any) -> None:
        """Persist data-at-rest (Table 1 ``store(k, v)``)."""
        self._store.put(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        """Retrieve data-at-rest (Table 1 ``get(k)``)."""
        return self._store.get(key, default)

    # -- Raw Data Collector module -----------------------------------------

    def add_source(
        self, src: Source, s_out: str, checkpointable: bool = False
    ) -> StreamHandle:
        """Register a collector whose stream ``s_out`` feeds pipelines.

        Output schema: ``<tau, job, layer, [k1:v1, k2:v2, ...]>``.
        ``checkpointable=True`` wraps the source so checkpoint barriers can
        be injected into its stream (required to ``deploy``/``start`` with
        a checkpoint coordinator); already-wrapped sources pass through.

        Returns a :class:`~repro.core.handles.StreamHandle` for ``s_out``
        (as every stream-producing verb does) — usable both as the plain
        stream name and as a fluent chaining/metrics handle.
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        if checkpointable and not hasattr(src, "request_barrier"):
            src = CheckpointableSource(src)
        node = f"source:{s_out}"
        self._query.add_source(node, src)
        self._streams[s_out] = (node, MODULE_RAW)
        return self._handle(s_out, SCHEMA_SOURCE)

    # -- Event Monitor module ----------------------------------------------

    def fuse(
        self,
        s_in1: str,
        s_in2: str,
        s_out: str,
        ws: float | None = None,
        wa: float | None = None,
        gb: list[str] | None = None,
    ) -> StreamHandle:
        """Fuse tuples of two streams sharing ``job`` and ``layer``.

        Without ``ws``/``wa`` only tuples that also share ``tau`` fuse;
        with them, tuples falling in the same window fuse (tumbling
        windows match by window index; for sliding windows tuples within
        ``ws`` of each other match). ``gb`` adds payload sub-attributes to
        the matching key. Output payload concatenates both inputs' payloads
        (keys must be disjoint — Table 1).
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        if (ws is None) != (wa is None):
            raise PipelineDefinitionError("ws and wa must be given together")
        gb_keys = tuple(gb or ())

        if ws is None:
            join_ws = 0.0

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer) + tuple(t.payload.get(k) for k in gb_keys)

        elif ws == wa:  # tumbling: same window <=> same window index
            join_ws = float(ws)
            window = float(ws)

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer, math.floor(t.tau / window)) + tuple(
                    t.payload.get(k) for k in gb_keys
                )

        else:  # sliding approximation: within ws of each other
            join_ws = float(ws)

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer) + tuple(t.payload.get(k) for k in gb_keys)

        node = f"fuse:{s_out}"
        join = JoinOperator(node, ws=join_ws, group_by=group_by)
        upstream1 = self._resolve_upstream(s_in1, MODULE_MONITOR)
        upstream2 = self._resolve_upstream(s_in2, MODULE_MONITOR)
        self._query.add_operator(node, join, [upstream1, upstream2])
        self._streams[s_out] = (node, MODULE_MONITOR)
        if s_in1 in self._keyed_streams or s_in2 in self._keyed_streams:
            self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_FUSE)

    def partition(
        self,
        s_in: str,
        s_out: str,
        f: UserFunction | None = None,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> StreamHandle:
        """Split tuples into independently processable specimen portions.

        ``f`` maps each input tuple to output tuples tagged with
        ``specimen`` and ``portion``; without it, STRATA processes each
        tuple as a whole (Table 1 defaults). ``replicable`` overrides the
        automatic keyed-replication eligibility (``False`` keeps the
        stage standalone so the compiler may fuse it into an adaptable
        chain instead).
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"partition:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_MONITOR)
        # Always a factory: the plan compiler may clone replicas behind a
        # hash router. Replication is only sound once tuples carry specimen
        # keys, i.e. downstream of the first partition stage.
        self._query.add_operator(
            node,
            lambda: PartitionOperator(node, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=(
                s_in in self._keyed_streams if replicable is None else replicable
            ),
        )
        self._streams[s_out] = (node, MODULE_MONITOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_PARTITION)

    def detect_event(
        self,
        s_in: str,
        s_out: str,
        f: UserFunction,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> StreamHandle:
        """Transform tuples into event tuples via the user function ``f``.

        ``replicable=False`` keeps the stage out of keyed replica groups
        (it stays fusable into a runtime-adaptable chain).
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"detect:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_MONITOR)
        self._query.add_operator(
            node,
            lambda: DetectEventOperator(node, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=(
                s_in in self._keyed_streams if replicable is None else replicable
            ),
        )
        self._streams[s_out] = (node, MODULE_MONITOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_DETECT)

    # -- Event Aggregator module --------------------------------------------

    def correlate_events(
        self,
        s_in: str,
        s_out: str,
        l: int,
        f: CorrelateFunction,
        parallelism: int = 1,
        replicable: bool | None = None,
    ) -> StreamHandle:
        """Aggregate events per (layer, specimen) plus the previous ``l-1``
        layers; events are grouped by specimen automatically (§4).
        ``replicable=False`` keeps the stage out of keyed replica groups."""
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"correlate:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_AGGREGATOR)
        self._query.add_operator(
            node,
            lambda: CorrelateEventsOperator(node, l, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=(
                s_in in self._keyed_streams if replicable is None else replicable
            ),
        )
        self._streams[s_out] = (node, MODULE_AGGREGATOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_CORRELATE)

    # -- delivery & deployment ----------------------------------------------

    def deliver(self, s_in: str, sink: Sink | None = None) -> Sink:
        """Deliver a stream's results to the expert; returns the sink.

        Layer-completeness punctuation is framework-internal and is
        filtered out here, so the expert sees data tuples only.
        """
        self._check_mutable()
        if sink is None:
            sink = CollectingSink(f"expert:{s_in}")
        uid = next(self._uid)
        upstream = self._resolve_upstream(s_in, MODULE_EXPERT)
        guard = f"depunct:{s_in}:{uid}"
        self._query.add_operator(
            guard,
            FilterOperator(guard, lambda t: not is_punctuation(t)),
            [upstream],
        )
        node = f"sink:{sink.name}:{uid}"
        self._query.add_sink(node, sink, [guard])
        self._sinks[node] = sink
        return sink

    #: legacy deploy/start keywords, mapped onto DeployConfig fields
    _LEGACY_KEYS = ("checkpointer", "recover_from", "optimize", "distributed")

    def _coerce_config(self, config: Any, legacy: dict[str, Any]) -> DeployConfig:
        """Normalize ``deploy``/``start`` arguments into one DeployConfig."""
        if config is not None and legacy:
            raise DeployConfigError(
                "pass either a DeployConfig or the legacy keyword arguments, "
                f"not both (got config= and {', '.join(sorted(legacy))})"
            )
        if config is not None:
            if isinstance(config, DeployConfig):
                return config
            # convenience: the optimize= shorthand values in positional use
            if isinstance(config, bool) or config.__class__.__name__ == "PlanConfig":
                return DeployConfig(plan=config)
            raise DeployConfigError(
                f"config must be a DeployConfig (or a plan shorthand), "
                f"got {config!r}"
            )
        if not legacy:
            return DeployConfig()
        unknown = set(legacy) - set(self._LEGACY_KEYS)
        if unknown:
            raise TypeError(
                f"unexpected keyword argument(s): {', '.join(sorted(unknown))}"
            )
        warnings.warn(
            "the checkpointer=/recover_from=/optimize=/distributed= keywords "
            "are deprecated; pass a DeployConfig instead, e.g. "
            "deploy(DeployConfig(plan=..., recovery=RecoveryConfig(...)))",
            DeprecationWarning,
            stacklevel=3,
        )
        recovery = None
        if legacy.get("checkpointer") is not None or legacy.get("recover_from") is not None:
            recovery = RecoveryConfig(
                checkpointer=legacy.get("checkpointer"),
                recover_from=legacy.get("recover_from"),
            )
        return DeployConfig(
            plan=legacy.get("optimize"),
            dist=legacy.get("distributed"),
            recovery=recovery,
        )

    def _materialize_recovery(
        self, recovery: RecoveryConfig | None
    ) -> tuple[Any | None, Callable | None]:
        """Turn a RecoveryConfig into a live (checkpointer, on_built hook).

        Declarative knobs build a coordinator against this instance's own
        KV store; ``interval_s`` arms periodic mode, started from the
        ``on_built`` hook (after the coordinator is bound to the graph)
        and owned — i.e. stopped — by this Strata instance.
        """
        if recovery is None or not recovery.active:
            return None, None
        checkpointer = recovery.checkpointer
        periodic = False
        if checkpointer is None and (
            recovery.interval_s is not None or recovery.retain is not None
        ):
            from ..recovery.coordinator import CheckpointCoordinator

            checkpointer = CheckpointCoordinator(
                self._store, interval=recovery.interval_s, retain=recovery.retain
            )
            periodic = recovery.interval_s is not None
        restore = self._recovery_hook(recovery.recover_from)
        if not periodic:
            return checkpointer, restore
        owned = checkpointer

        def hook(nodes: list) -> None:
            if restore is not None:
                restore(nodes)
            owned.start_periodic()

        self._ckpt_periodic = owned
        return checkpointer, hook

    def deploy(self, config: DeployConfig | None = None, **legacy: Any) -> RunReport:
        """Run the composed pipeline to completion (finite sources).

        ``config`` is a :class:`~repro.core.deploy.DeployConfig` grouping
        every subsystem's knobs — plan compiler, distribution, recovery,
        observability override, and elastic rescaling — validated as a
        whole; invalid combinations raise
        :class:`~repro.core.errors.DeployConfigError`.

        The pre-config keywords (``checkpointer=``, ``recover_from=``,
        ``optimize=``, ``distributed=``) still work, are mapped onto an
        equivalent config, and emit a ``DeprecationWarning``.

        With observability enabled, the run's final metrics snapshot lands
        in ``report.extra["metrics"]``; with elastic rescaling enabled,
        the controller's decision history lands in
        ``report.extra["elastic"]``.
        """
        cfg = self._coerce_config(config, legacy)
        self._obs = cfg.resolved_obs(self._obs)
        dist_config = cfg.resolved_dist()
        if dist_config is not None:
            from ..dist import run_distributed

            if self._connector_mode != "pubsub":
                raise DeployConfigError(
                    "distributed deployment requires connector_mode='pubsub' "
                    "(stages are cut at the pub/sub connector edges)"
                )
            self._deployed = True
            return run_distributed(
                self._query,
                self._broker,
                dist_config,
                obs=self._obs,
                capacity=self._capacity,
                plan=cfg.plan,
                elastic=cfg.elastic,
            )
        checkpointer, on_built = self._materialize_recovery(cfg.recovery)
        self._deployed = True
        self._attach_checkpoint_metrics(checkpointer)
        if cfg.elastic is not None:
            started = time.monotonic()
            self._launch_elastic(cfg, checkpointer, on_built)
            scheduler, nodes = self._engine.runtime()
            controller = self._elastic
            try:
                self._engine.wait()
            finally:
                self._teardown_config_runtime()
            report = RunReport(
                query_name=self._query.name,
                operator_stats={ex.node.name: ex.stats for ex in scheduler.executors},
                sinks=StreamEngine.sinks_of(nodes),
                wall_seconds=time.monotonic() - started,
            )
            report.extra["plan"] = cfg.plan.describe()
            report.extra["elastic"] = controller.summary()
            if self._obs is not None:
                report.extra["metrics"] = self._obs.snapshot()
            return report
        try:
            return self._engine.run(
                self._query,
                checkpointer=checkpointer,
                on_built=on_built,
                plan=cfg.plan,
                obs=self._obs,
            )
        finally:
            self._teardown_config_runtime()

    def start(
        self, config: DeployConfig | None = None, **legacy: Any
    ) -> dict[str, Sink]:
        """Deploy in the background (threaded engine); returns the sinks.

        Same ``config``/legacy-keyword semantics as :meth:`deploy`, except
        distributed execution is ``deploy()``-only. With observability
        enabled, :meth:`metrics` can be polled while the deployment runs —
        this is what the ``top`` CLI verb and ``--metrics-out`` build on.
        """
        cfg = self._coerce_config(config, legacy)
        self._obs = cfg.resolved_obs(self._obs)
        if cfg.dist is not None:
            raise DeployConfigError(
                "distributed deployment runs to completion and is deploy()-"
                "only; start() backgrounds the in-process engine"
            )
        checkpointer, on_built = self._materialize_recovery(cfg.recovery)
        self._deployed = True
        self._attach_checkpoint_metrics(checkpointer)
        if cfg.elastic is not None:
            return self._launch_elastic(cfg, checkpointer, on_built)
        return self._engine.start(
            self._query,
            checkpointer=checkpointer,
            on_built=on_built,
            plan=cfg.plan,
            obs=self._obs,
        )

    def _launch_elastic(
        self, cfg: DeployConfig, checkpointer: Any | None, on_built: Callable | None
    ) -> dict[str, Sink]:
        """Start the engine with rescalable groups plus the controller.

        The plan's static ``parallelism`` is replaced by the elastic
        config's starting point and replication is forced even at
        parallelism 1, so every replicable keyed stage materializes behind
        its hash router and stays rescalable at runtime.
        """
        from ..elastic import ElasticController

        if self._engine_mode != "threaded":
            raise DeployConfigError(
                "elastic rescaling drains and re-splices live node threads; "
                "it requires engine_mode='threaded'"
            )
        ec = cfg.elastic
        effective_plan = _dc_replace(cfg.plan, parallelism=ec.start_parallelism)
        sinks = self._engine.start(
            self._query,
            checkpointer=checkpointer,
            on_built=on_built,
            plan=effective_plan,
            obs=self._obs,
            force_replication=True,
        )
        scheduler, nodes = self._engine.runtime()
        try:
            controller = ElasticController(
                scheduler,
                nodes,
                ec,
                plan=effective_plan,
                obs=self._obs,
                checkpointer=checkpointer,
            )
        except Exception:
            self._engine.stop()
            self._teardown_config_runtime()
            raise
        controller.start()
        self._elastic = controller
        return sinks

    def _teardown_config_runtime(self) -> None:
        """Stop runtime helpers owned by a config-driven deployment."""
        if self._elastic is not None:
            self._elastic.stop()
            self._elastic = None
        if self._ckpt_periodic is not None:
            self._ckpt_periodic.stop()
            self._ckpt_periodic = None

    def explain(self, optimize: Any | None = True) -> str:
        """Render the physical plan ``deploy(optimize=...)`` would run.

        Builds (but does not execute) the pipeline, applies the compiler
        passes, and returns a plan listing — fused chains, routers, and
        replica fan-out included. Accepts a :class:`DeployConfig` too, in
        which case its ``plan`` field is used.
        """
        if isinstance(optimize, DeployConfig):
            optimize = optimize.plan
        return self._engine.explain(self._query, plan=optimize)

    def _recovery_hook(self, recover_from: Any | None):
        if recover_from is None:
            return None
        if callable(recover_from):  # a RecoveryCoordinator (or compatible)
            return recover_from
        from ..recovery.recover import RecoveryCoordinator

        store = self._store if recover_from is True else recover_from
        return RecoveryCoordinator(store)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop a background deployment.

        The elastic controller (if any) is stopped first — waiting out an
        in-flight rescale so the graph is never torn down mid-splice —
        then the engine's node threads.
        """
        self._teardown_config_runtime()
        self._engine.stop(timeout=timeout)

    def running(self) -> bool:
        """True while a background deployment still has live node threads."""
        return self._engine.running()

    def wait(self, timeout: float | None = None) -> None:
        """Wait for a background deployment to finish naturally."""
        try:
            self._engine.wait(timeout=timeout)
        finally:
            self._teardown_config_runtime()

    @property
    def elastic(self) -> Any | None:
        """The live rescale controller of an elastic deployment, if any."""
        return self._elastic

    # -- observability -------------------------------------------------------

    @property
    def obs(self) -> ObsContext | None:
        """The observability context, or None when running unobserved."""
        return self._obs

    def metrics(self) -> MetricsSnapshot:
        """A point-in-time snapshot of every pipeline metric.

        Live during a background deployment (each call re-scrapes), final
        after :meth:`deploy` returns. Without ``obs=`` enabled, returns an
        empty snapshot rather than raising, so reporting code can run
        unconditionally.
        """
        if self._obs is None:
            return MetricsSnapshot(wall_time=time.time(), samples=[])
        return self._obs.snapshot()

    def _attach_checkpoint_metrics(self, checkpointer: Any | None) -> None:
        """Feed checkpoint duration/size metrics into the obs registry."""
        if (
            self._obs is not None
            and checkpointer is not None
            and hasattr(checkpointer, "attach_metrics")
        ):
            checkpointer.attach_metrics(self._obs.registry)

    # -- internals -------------------------------------------------------------

    def _handle(self, stream: str, schema: str | None = None) -> StreamHandle:
        node, module = self._streams[stream]
        return StreamHandle(stream, strata=self, node=node, module=module, schema=schema)

    def _check_mutable(self) -> None:
        if self._deployed:
            raise DeploymentError("pipeline already deployed; create a new Strata")

    def _check_new_stream(self, name: str) -> None:
        if name in self._streams:
            raise PipelineDefinitionError(f"stream {name!r} already defined")

    def _resolve_upstream(self, stream: str, consumer_module: str) -> str:
        """Producing node for ``stream``, bridging modules via pub/sub.

        In ``pubsub`` connector mode, a stream crossing a module boundary
        (raw -> monitor, monitor -> aggregator, any -> expert consumes
        directly) is routed through a broker topic: the producing branch
        ends in a writer sink and a reader source re-injects the stream
        into the consuming module.
        """
        try:
            node, module = self._streams[stream]
        except KeyError:
            raise UnknownStreamError(
                f"stream {stream!r} is not produced by any API call"
            ) from None
        crossing = module != consumer_module and consumer_module != MODULE_EXPERT
        if self._connector_mode != "pubsub" or not crossing:
            return node
        bridged = f"bridge:{stream}:{consumer_module}"
        if (bridged, consumer_module) in self._streams.values():
            return bridged
        topic = topic_for_stream(stream)
        writer = PubSubWriterSink(f"writer:{stream}", self._broker, topic)
        # Bridge readers are always barrier-capable: checkpointing a pubsub
        # topology must capture the reader's broker offsets, and the wrap
        # costs nothing when no checkpointer is attached.
        reader = CheckpointableSource(
            PubSubReaderSource(f"reader:{stream}", self._broker, topic)
        )
        self._query.add_sink(f"sink:{writer.name}", writer, [node])
        self._query.add_source(bridged, reader)
        self._streams[f"{stream}@{consumer_module}"] = (bridged, consumer_module)
        return bridged


# Paper-parity aliases (addSource, detectEvent, correlateEvents): installed
# as the same function objects, so identity checks and overrides stay exact.
install_camelcase_aliases(Strata, ("add_source", "detect_event", "correlate_events"))
