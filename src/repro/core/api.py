"""The STRATA framework facade — the paper's Table 1 API.

One :class:`Strata` instance owns the three data-handling components of
Figure 2: a stream processing engine for analysis, a pub/sub broker for
the module connectors, and a key-value store for data-at-rest. Experts
compose pipelines by chaining the API methods over named streams::

    strata = Strata()
    strata.addSource(PrintingParameterCollector(records), "pp")
    strata.addSource(OTImageCollector(records), "OT")
    strata.fuse("OT", "pp", "OT&pp")
    strata.partition("OT&pp", "spec", IsolateSpecimens(image_px))
    strata.partition("spec", "cell", IsolateCells(edge))
    strata.detectEvent("cell", "cellLabel", LabelCell(strata.kv))
    strata.correlateEvents("cellLabel", "out", L, DBSCANCorrelator(...))
    strata.deliver("out", expert_sink)
    report = strata.deploy()

Every method compiles to native operators of the underlying SPE, so
pipelines inherit parallel execution (``parallelism=`` on the Event
Monitor methods shards work by ``(job, specimen)``) and stay portable
across engines. Methods keep the paper's camelCase names; snake_case
aliases are provided for PEP 8 style.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Any, Callable, Hashable

from ..kvstore.api import KVStore
from ..kvstore.memory import MemoryStore
from ..obs.context import ObsConfig, ObsContext
from ..obs.registry import MetricsSnapshot
from ..pubsub.broker import Broker
from ..recovery.source import CheckpointableSource
from ..spe.engine import RunReport, StreamEngine
from ..spe.operators.filter import FilterOperator
from ..spe.operators.join import JoinOperator
from ..spe.query import Query
from ..spe.sink import CollectingSink, Sink
from ..spe.source import Source
from ..spe.tuples import StreamTuple
from .connectors import PubSubReaderSource, PubSubWriterSink, topic_for_stream
from .errors import DeploymentError, PipelineDefinitionError, UnknownStreamError
from .handles import StreamHandle, install_snake_case_aliases
from .operators import (
    CorrelateEventsOperator,
    CorrelateFunction,
    DetectEventOperator,
    PartitionOperator,
    UserFunction,
)
from .punctuation import is_punctuation

#: module names, matching Figure 2
MODULE_RAW = "raw-data-collector"
MODULE_MONITOR = "event-monitor"
MODULE_AGGREGATOR = "event-aggregator"
MODULE_EXPERT = "expert"

#: per-verb output schema hints (Table 1), carried on stream handles
SCHEMA_SOURCE = "<tau, job, layer, [k1:v1, k2:v2, ...]>"
SCHEMA_FUSE = "<tau, job, layer, [payload1 ++ payload2]>"
SCHEMA_PARTITION = "<tau, job, layer, specimen, portion, [k1:v1, ...]>"
SCHEMA_DETECT = "<tau, job, layer, specimen, portion, [event attrs]>"
SCHEMA_CORRELATE = "<tau, job, layer, specimen, [result attrs]>"


def _specimen_key(t: StreamTuple) -> Hashable:
    """Shard key keeping a specimen's events and punctuation together."""
    return (t.job, t.specimen)


class Strata:
    """Entry point of the framework: API methods + deployment control."""

    def __init__(
        self,
        store: KVStore | None = None,
        broker: Broker | None = None,
        engine_mode: str = "threaded",
        connector_mode: str = "direct",
        capacity: int | None = 10_000,
        name: str = "strata",
        obs: ObsContext | ObsConfig | bool | None = None,
    ) -> None:
        if connector_mode not in ("direct", "pubsub"):
            raise ValueError("connector_mode must be 'direct' or 'pubsub'")
        if connector_mode == "pubsub" and engine_mode != "threaded":
            raise ValueError("pub/sub connectors require the threaded engine")
        self._store = store if store is not None else MemoryStore()
        self._broker = broker if broker is not None else Broker()
        self._engine = StreamEngine(mode=engine_mode, capacity=capacity)
        self._connector_mode = connector_mode
        # observability: True for defaults, an ObsConfig/ObsContext for
        # explicit knobs, None/False to run unobserved (zero overhead)
        self._obs = ObsContext.resolve(obs)
        self._query = Query(name, default_capacity=capacity)
        self._capacity = capacity
        # stream name -> (producing node name, producing module)
        self._streams: dict[str, tuple[str, str]] = {}
        # streams whose tuples carry a specimen assignment: stages keyed by
        # (job, specimen) downstream of these are safe to replicate.
        self._keyed_streams: set[str] = set()
        self._uid = itertools.count()
        self._sinks: dict[str, Sink] = {}
        self._deployed = False

    # -- Key-Value Store module (Table 1: store/get) -----------------------

    @property
    def kv(self) -> KVStore:
        """The shared key-value store, accessible by all modules."""
        return self._store

    @property
    def broker(self) -> Broker:
        """The pub/sub broker backing the connectors."""
        return self._broker

    @property
    def query(self) -> Query:
        """The logical query being composed (used by the distributed CLI)."""
        return self._query

    @property
    def capacity(self) -> int | None:
        """Default stream capacity passed to the engine."""
        return self._capacity

    def store(self, key: str, value: Any) -> None:
        """Persist data-at-rest (Table 1 ``store(k, v)``)."""
        self._store.put(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        """Retrieve data-at-rest (Table 1 ``get(k)``)."""
        return self._store.get(key, default)

    # -- Raw Data Collector module -----------------------------------------

    def addSource(
        self, src: Source, s_out: str, checkpointable: bool = False
    ) -> StreamHandle:
        """Register a collector whose stream ``s_out`` feeds pipelines.

        Output schema: ``<tau, job, layer, [k1:v1, k2:v2, ...]>``.
        ``checkpointable=True`` wraps the source so checkpoint barriers can
        be injected into its stream (required to ``deploy``/``start`` with
        a checkpoint coordinator); already-wrapped sources pass through.

        Returns a :class:`~repro.core.handles.StreamHandle` for ``s_out``
        (as every stream-producing verb does) — usable both as the plain
        stream name and as a fluent chaining/metrics handle.
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        if checkpointable and not hasattr(src, "request_barrier"):
            src = CheckpointableSource(src)
        node = f"source:{s_out}"
        self._query.add_source(node, src)
        self._streams[s_out] = (node, MODULE_RAW)
        return self._handle(s_out, SCHEMA_SOURCE)

    # -- Event Monitor module ----------------------------------------------

    def fuse(
        self,
        s_in1: str,
        s_in2: str,
        s_out: str,
        ws: float | None = None,
        wa: float | None = None,
        gb: list[str] | None = None,
    ) -> StreamHandle:
        """Fuse tuples of two streams sharing ``job`` and ``layer``.

        Without ``ws``/``wa`` only tuples that also share ``tau`` fuse;
        with them, tuples falling in the same window fuse (tumbling
        windows match by window index; for sliding windows tuples within
        ``ws`` of each other match). ``gb`` adds payload sub-attributes to
        the matching key. Output payload concatenates both inputs' payloads
        (keys must be disjoint — Table 1).
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        if (ws is None) != (wa is None):
            raise PipelineDefinitionError("ws and wa must be given together")
        gb_keys = tuple(gb or ())

        if ws is None:
            join_ws = 0.0

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer) + tuple(t.payload.get(k) for k in gb_keys)

        elif ws == wa:  # tumbling: same window <=> same window index
            join_ws = float(ws)
            window = float(ws)

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer, math.floor(t.tau / window)) + tuple(
                    t.payload.get(k) for k in gb_keys
                )

        else:  # sliding approximation: within ws of each other
            join_ws = float(ws)

            def group_by(t: StreamTuple) -> Hashable:
                return (t.job, t.layer) + tuple(t.payload.get(k) for k in gb_keys)

        node = f"fuse:{s_out}"
        join = JoinOperator(node, ws=join_ws, group_by=group_by)
        upstream1 = self._resolve_upstream(s_in1, MODULE_MONITOR)
        upstream2 = self._resolve_upstream(s_in2, MODULE_MONITOR)
        self._query.add_operator(node, join, [upstream1, upstream2])
        self._streams[s_out] = (node, MODULE_MONITOR)
        if s_in1 in self._keyed_streams or s_in2 in self._keyed_streams:
            self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_FUSE)

    def partition(
        self,
        s_in: str,
        s_out: str,
        f: UserFunction | None = None,
        parallelism: int = 1,
    ) -> StreamHandle:
        """Split tuples into independently processable specimen portions.

        ``f`` maps each input tuple to output tuples tagged with
        ``specimen`` and ``portion``; without it, STRATA processes each
        tuple as a whole (Table 1 defaults).
        """
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"partition:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_MONITOR)
        # Always a factory: the plan compiler may clone replicas behind a
        # hash router. Replication is only sound once tuples carry specimen
        # keys, i.e. downstream of the first partition stage.
        self._query.add_operator(
            node,
            lambda: PartitionOperator(node, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=s_in in self._keyed_streams,
        )
        self._streams[s_out] = (node, MODULE_MONITOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_PARTITION)

    def detectEvent(
        self,
        s_in: str,
        s_out: str,
        f: UserFunction,
        parallelism: int = 1,
    ) -> StreamHandle:
        """Transform tuples into event tuples via the user function ``f``."""
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"detect:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_MONITOR)
        self._query.add_operator(
            node,
            lambda: DetectEventOperator(node, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=s_in in self._keyed_streams,
        )
        self._streams[s_out] = (node, MODULE_MONITOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_DETECT)

    # -- Event Aggregator module --------------------------------------------

    def correlateEvents(
        self,
        s_in: str,
        s_out: str,
        l: int,
        f: CorrelateFunction,
        parallelism: int = 1,
    ) -> StreamHandle:
        """Aggregate events per (layer, specimen) plus the previous ``l-1``
        layers; events are grouped by specimen automatically (§4)."""
        self._check_mutable()
        self._check_new_stream(s_out)
        node = f"correlate:{s_out}"
        upstream = self._resolve_upstream(s_in, MODULE_AGGREGATOR)
        self._query.add_operator(
            node,
            lambda: CorrelateEventsOperator(node, l, f),
            [upstream],
            parallelism=parallelism,
            key_fn=_specimen_key,
            replicable=s_in in self._keyed_streams,
        )
        self._streams[s_out] = (node, MODULE_AGGREGATOR)
        self._keyed_streams.add(s_out)
        return self._handle(s_out, SCHEMA_CORRELATE)

    # -- delivery & deployment ----------------------------------------------

    def deliver(self, s_in: str, sink: Sink | None = None) -> Sink:
        """Deliver a stream's results to the expert; returns the sink.

        Layer-completeness punctuation is framework-internal and is
        filtered out here, so the expert sees data tuples only.
        """
        self._check_mutable()
        if sink is None:
            sink = CollectingSink(f"expert:{s_in}")
        uid = next(self._uid)
        upstream = self._resolve_upstream(s_in, MODULE_EXPERT)
        guard = f"depunct:{s_in}:{uid}"
        self._query.add_operator(
            guard,
            FilterOperator(guard, lambda t: not is_punctuation(t)),
            [upstream],
        )
        node = f"sink:{sink.name}:{uid}"
        self._query.add_sink(node, sink, [guard])
        self._sinks[node] = sink
        return sink

    def deploy(
        self,
        checkpointer: Any | None = None,
        recover_from: Any | None = None,
        optimize: Any | None = None,
        distributed: Any | None = None,
    ) -> RunReport:
        """Run the composed pipeline to completion (finite sources).

        ``checkpointer`` (a ``repro.recovery.CheckpointCoordinator``) takes
        aligned snapshots while the pipeline runs; ``recover_from`` (a
        ``RecoveryCoordinator``, a KV store, or ``True`` for this
        instance's own store) restores the newest committed checkpoint
        into the freshly built pipeline before execution starts.

        ``optimize`` engages the plan compiler (:mod:`repro.spe.plan`):
        ``True`` for default fusion + batched transport, a
        :class:`~repro.spe.plan.PlanConfig` for explicit knobs (including
        ``parallelism`` for keyed replication), ``None``/``False`` to run
        the graph exactly as declared. Checkpoints stay portable between
        optimized and unoptimized deployments.

        ``distributed`` runs the deployment across worker *processes*
        instead of threads: ``True`` forks one worker per pub/sub stage,
        an int caps the worker count, a :class:`~repro.dist.DistConfig`
        sets every knob. Requires ``connector_mode='pubsub'`` — the stage
        cuts *are* the connector edges. Worker crash recovery is built in
        (replay + dedup); the checkpointer/recovery subsystem is for the
        in-process engine and cannot be combined with ``distributed``.

        With observability enabled (``Strata(obs=...)``), the run's final
        metrics snapshot lands in ``report.extra["metrics"]`` and stays
        queryable via :meth:`metrics` afterwards.
        """
        from ..dist import DistConfig, run_distributed

        dist_config = DistConfig.resolve(distributed)
        if dist_config is not None:
            if self._connector_mode != "pubsub":
                raise DeploymentError(
                    "distributed deployment requires connector_mode='pubsub' "
                    "(stages are cut at the pub/sub connector edges)"
                )
            if checkpointer is not None or recover_from is not None:
                raise DeploymentError(
                    "distributed deployment has its own crash recovery "
                    "(replay + dedup); checkpointer/recover_from do not apply"
                )
            self._deployed = True
            return run_distributed(
                self._query,
                self._broker,
                dist_config,
                obs=self._obs,
                capacity=self._capacity,
                plan=optimize,
            )
        self._deployed = True
        self._attach_checkpoint_metrics(checkpointer)
        return self._engine.run(
            self._query,
            checkpointer=checkpointer,
            on_built=self._recovery_hook(recover_from),
            plan=optimize,
            obs=self._obs,
        )

    def start(
        self,
        checkpointer: Any | None = None,
        recover_from: Any | None = None,
        optimize: Any | None = None,
    ) -> dict[str, Sink]:
        """Deploy in the background (threaded engine); returns the sinks.

        Same ``checkpointer``/``recover_from``/``optimize`` semantics as
        :meth:`deploy`. With observability enabled, :meth:`metrics` can be
        polled while the deployment runs — this is what the ``top`` CLI
        verb and ``--metrics-out`` build on.
        """
        self._deployed = True
        self._attach_checkpoint_metrics(checkpointer)
        return self._engine.start(
            self._query,
            checkpointer=checkpointer,
            on_built=self._recovery_hook(recover_from),
            plan=optimize,
            obs=self._obs,
        )

    def explain(self, optimize: Any | None = True) -> str:
        """Render the physical plan ``deploy(optimize=...)`` would run.

        Builds (but does not execute) the pipeline, applies the compiler
        passes, and returns a plan listing — fused chains, routers, and
        replica fan-out included.
        """
        return self._engine.explain(self._query, plan=optimize)

    def _recovery_hook(self, recover_from: Any | None):
        if recover_from is None:
            return None
        if callable(recover_from):  # a RecoveryCoordinator (or compatible)
            return recover_from
        from ..recovery.recover import RecoveryCoordinator

        store = self._store if recover_from is True else recover_from
        return RecoveryCoordinator(store)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop a background deployment."""
        self._engine.stop(timeout=timeout)

    def running(self) -> bool:
        """True while a background deployment still has live node threads."""
        return self._engine.running()

    def wait(self, timeout: float | None = None) -> None:
        """Wait for a background deployment to finish naturally."""
        self._engine.wait(timeout=timeout)

    # -- observability -------------------------------------------------------

    @property
    def obs(self) -> ObsContext | None:
        """The observability context, or None when running unobserved."""
        return self._obs

    def metrics(self) -> MetricsSnapshot:
        """A point-in-time snapshot of every pipeline metric.

        Live during a background deployment (each call re-scrapes), final
        after :meth:`deploy` returns. Without ``obs=`` enabled, returns an
        empty snapshot rather than raising, so reporting code can run
        unconditionally.
        """
        if self._obs is None:
            return MetricsSnapshot(wall_time=time.time(), samples=[])
        return self._obs.snapshot()

    def _attach_checkpoint_metrics(self, checkpointer: Any | None) -> None:
        """Feed checkpoint duration/size metrics into the obs registry."""
        if (
            self._obs is not None
            and checkpointer is not None
            and hasattr(checkpointer, "attach_metrics")
        ):
            checkpointer.attach_metrics(self._obs.registry)

    # -- internals -------------------------------------------------------------

    def _handle(self, stream: str, schema: str | None = None) -> StreamHandle:
        node, module = self._streams[stream]
        return StreamHandle(stream, strata=self, node=node, module=module, schema=schema)

    def _check_mutable(self) -> None:
        if self._deployed:
            raise DeploymentError("pipeline already deployed; create a new Strata")

    def _check_new_stream(self, name: str) -> None:
        if name in self._streams:
            raise PipelineDefinitionError(f"stream {name!r} already defined")

    def _resolve_upstream(self, stream: str, consumer_module: str) -> str:
        """Producing node for ``stream``, bridging modules via pub/sub.

        In ``pubsub`` connector mode, a stream crossing a module boundary
        (raw -> monitor, monitor -> aggregator, any -> expert consumes
        directly) is routed through a broker topic: the producing branch
        ends in a writer sink and a reader source re-injects the stream
        into the consuming module.
        """
        try:
            node, module = self._streams[stream]
        except KeyError:
            raise UnknownStreamError(
                f"stream {stream!r} is not produced by any API call"
            ) from None
        crossing = module != consumer_module and consumer_module != MODULE_EXPERT
        if self._connector_mode != "pubsub" or not crossing:
            return node
        bridged = f"bridge:{stream}:{consumer_module}"
        if (bridged, consumer_module) in self._streams.values():
            return bridged
        topic = topic_for_stream(stream)
        writer = PubSubWriterSink(f"writer:{stream}", self._broker, topic)
        # Bridge readers are always barrier-capable: checkpointing a pubsub
        # topology must capture the reader's broker offsets, and the wrap
        # costs nothing when no checkpointer is attached.
        reader = CheckpointableSource(
            PubSubReaderSource(f"reader:{stream}", self._broker, topic)
        )
        self._query.add_sink(f"sink:{writer.name}", writer, [node])
        self._query.add_source(bridged, reader)
        self._streams[f"{stream}@{consumer_module}"] = (bridged, consumer_module)
        return bridged


# PEP 8 aliases (add_source, detect_event, correlate_events): installed as
# the same function objects, so identity checks and overrides stay exact.
install_snake_case_aliases(Strata, ("addSource", "detectEvent", "correlateEvents"))
