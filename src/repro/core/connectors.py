"""Pub/sub connectors between STRATA modules.

Figure 2 separates the Raw Data Collector, Event Monitor, and Event
Aggregator with publish/subscribe connectors so detection methods can be
"continuously deployed, run, and decommissioned" independently. These
adapters bridge SPE streams over broker topics: a :class:`PubSubWriterSink`
publishes every tuple of a stream to a topic (plus an end-of-stream
sentinel when the query side closes), and a :class:`PubSubReaderSource`
replays a topic into another query until it sees that sentinel.

Connectors require the threaded engine (a reader blocks waiting for
records); the direct fast path wires modules with plain streams instead.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..pubsub.broker import Broker
from ..pubsub.consumer import Consumer
from ..pubsub.producer import Producer
from ..spe.sink import Sink
from ..spe.source import Source
from ..spe.tuples import StreamTuple

#: value published when the writing query side has no more tuples
EOS_SENTINEL = "__strata_topic_eos__"

_uid = itertools.count()


def topic_for_stream(stream_name: str) -> str:
    """Naming convention for connector topics."""
    return f"strata.{stream_name}"


class PubSubWriterSink(Sink):
    """Terminates a query branch by publishing its tuples to a topic."""

    def __init__(self, name: str, broker: Broker, topic: str) -> None:
        super().__init__(name)
        self._producer = Producer(broker)
        self._topic = topic

    @property
    def topic(self) -> str:
        return self._topic

    def consume(self, t: StreamTuple) -> None:
        self._producer.send(self._topic, t, key=f"{t.job}/{t.layer}", timestamp=t.tau)

    def on_close(self) -> None:
        """Publish the end-of-stream sentinel once the branch closes."""
        self._producer.send(self._topic, EOS_SENTINEL)
        super().on_close()


class PubSubReaderSource(Source):
    """Feeds a query from a topic until the EOS sentinel arrives."""

    def __init__(
        self,
        name: str,
        broker: Broker,
        topic: str,
        group: str | None = None,
        poll_timeout: float = 0.05,
    ) -> None:
        super().__init__(name)
        broker.ensure_topic(topic)
        self._consumer = Consumer(
            broker,
            group or f"strata-reader-{next(_uid)}",
            [topic],
            auto_offset_reset="earliest",
        )
        self._poll_timeout = poll_timeout

    @property
    def consumer(self) -> Consumer:
        return self._consumer

    def offsets(self) -> list[list]:
        """Replay positions as ``[topic, partition, next_offset]`` triples."""
        return [
            [topic, partition, self._consumer.position(topic, partition)]
            for topic, partition in self._consumer.assignment
        ]

    def seek(self, offsets: list[list]) -> None:
        """Rewind to positions previously captured by :meth:`offsets`."""
        for topic, partition, offset in offsets:
            self._consumer.seek(topic, int(partition), int(offset))

    def commit_offsets(self, offsets: list[list]) -> None:
        """Pin captured positions on the broker (per-partition commits)."""
        for topic, partition, offset in offsets:
            self._consumer.commit(topic, int(partition), int(offset))

    def __iter__(self) -> Iterator[StreamTuple]:
        while True:
            for message in self._consumer.poll(timeout=self._poll_timeout):
                if message.value == EOS_SENTINEL:
                    return
                # Do NOT restamp ingest_time: latency spans the connector
                # hop too (data was available when the writer received it).
                yield message.value
