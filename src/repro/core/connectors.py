"""Pub/sub connectors between STRATA modules.

Figure 2 separates the Raw Data Collector, Event Monitor, and Event
Aggregator with publish/subscribe connectors so detection methods can be
"continuously deployed, run, and decommissioned" independently. These
adapters bridge SPE streams over broker topics: a :class:`PubSubWriterSink`
publishes every tuple of a stream to a topic (plus an end-of-stream
sentinel per partition when the query side closes), and a
:class:`PubSubReaderSource` replays a topic into another query until every
partition has delivered its sentinel.

The ``broker`` argument is duck-typed: an in-process
:class:`~repro.pubsub.broker.Broker` yields local clients, while anything
exposing ``producer()``/``consumer()`` factories (a
:class:`~repro.net.client.BrokerClient`) yields remote ones — the same
connector graph runs in one process or across machines unchanged.

Connectors require the threaded engine (a reader blocks waiting for
records); the direct fast path wires modules with plain streams instead.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from ..pubsub.broker import Broker
from ..pubsub.consumer import Consumer
from ..pubsub.producer import Producer
from ..spe.sink import Sink
from ..spe.source import Source
from ..spe.tuples import StreamTuple

#: value published when the writing query side has no more tuples
EOS_SENTINEL = "__strata_topic_eos__"

_uid = itertools.count()


def topic_for_stream(stream_name: str) -> str:
    """Naming convention for connector topics."""
    return f"strata.{stream_name}"


def _producer_for(broker: Any) -> Any:
    """A producer client for an in-process broker or a network endpoint."""
    if isinstance(broker, Broker):
        return Producer(broker)
    if hasattr(broker, "producer"):
        return broker.producer()
    raise TypeError(
        f"broker must be a Broker or expose producer(), got {type(broker).__name__}"
    )


def _consumer_for(
    broker: Any,
    group: str,
    topics: list[str],
    auto_offset_reset: str,
    auto_commit: bool,
) -> Any:
    """A consumer client for an in-process broker or a network endpoint."""
    if isinstance(broker, Broker):
        return Consumer(
            broker,
            group,
            topics,
            auto_offset_reset=auto_offset_reset,
            auto_commit=auto_commit,
        )
    if hasattr(broker, "consumer"):
        return broker.consumer(
            group,
            topics,
            auto_offset_reset=auto_offset_reset,
            auto_commit=auto_commit,
        )
    raise TypeError(
        f"broker must be a Broker or expose consumer(), got {type(broker).__name__}"
    )


def _content_key(t: StreamTuple) -> tuple:
    """Identity of one logical record, stable across replays."""
    return (t.tau, t.job, t.layer, t.specimen, t.portion)


class PubSubWriterSink(Sink):
    """Terminates a query branch by publishing its tuples to a topic.

    ``batch_size > 1`` buffers tuples and publishes them through the
    producer's ``send_batch`` (one wire round trip for the whole batch,
    written with vectored I/O) when the producer supports it — the
    distributed runtime turns this on via ``DistConfig.produce_batch``.
    The buffer is always flushed before the EOS broadcast and before a
    rebind, so batching never reorders a record after its sentinel.
    """

    def __init__(
        self, name: str, broker: Any, topic: str, batch_size: int = 1
    ) -> None:
        super().__init__(name)
        self._producer = _producer_for(broker)
        self._topic = topic
        self._batch_size = max(1, int(batch_size))
        self._buffer: list[StreamTuple] = []

    @property
    def topic(self) -> str:
        return self._topic

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def rebind(self, broker: Any, batch_size: int | None = None) -> None:
        """Point this sink at a different broker (same topic).

        The distributed runtime uses this after forking a worker: the
        inherited producer references the coordinator's in-process broker,
        which is unreachable from the child — rebinding swaps in a network
        client without touching the rest of the node graph.
        """
        self._flush()
        if batch_size is not None:
            self._batch_size = max(1, int(batch_size))
        self._producer = _producer_for(broker)

    def _flush(self) -> None:
        if not self._buffer:
            return
        records = [
            {"value": t, "key": f"{t.job}/{t.layer}", "timestamp": t.tau}
            for t in self._buffer
        ]
        self._buffer.clear()
        self._producer.send_batch(self._topic, records)

    def consume(self, t: StreamTuple) -> None:
        if self._batch_size > 1 and hasattr(self._producer, "send_batch"):
            self._buffer.append(t)
            if len(self._buffer) >= self._batch_size:
                self._flush()
            return
        self._producer.send(self._topic, t, key=f"{t.job}/{t.layer}", timestamp=t.tau)

    def on_close(self) -> None:
        """Publish one end-of-stream sentinel to *every* partition.

        A keyed send would land the sentinel in a single partition, and a
        reader consuming a multi-partition topic would hang waiting on the
        others — so the sentinel is broadcast per partition explicitly.
        Buffered records flush first: a sentinel must never overtake data.
        """
        self._flush()
        for partition in range(self._producer.partitions_of(self._topic)):
            self._producer.send(self._topic, EOS_SENTINEL, partition=partition)
        super().on_close()


class PubSubReaderSource(Source):
    """Feeds a query from a topic until every partition reaches EOS.

    ``dedup=True`` suppresses records whose content key
    ``(tau, job, layer, specimen, portion)`` was already delivered — the
    at-least-once replay filter the distributed runtime relies on when a
    restarted upstream worker republishes its output.
    """

    def __init__(
        self,
        name: str,
        broker: Any,
        topic: str,
        group: str | None = None,
        poll_timeout: float = 0.05,
        auto_commit: bool = True,
        dedup: bool = False,
    ) -> None:
        super().__init__(name)
        self._broker = broker
        self._topic = topic
        self._group = group or f"strata-reader-{next(_uid)}"
        self._poll_timeout = poll_timeout
        self._auto_commit = auto_commit
        self._dedup = dedup
        self._duplicates = 0
        self._consumer = None
        self._connect()

    def _connect(self) -> None:
        self._broker.ensure_topic(self._topic)
        self._consumer = _consumer_for(
            self._broker,
            self._group,
            [self._topic],
            auto_offset_reset="earliest",
            auto_commit=self._auto_commit,
        )

    @property
    def consumer(self):
        return self._consumer

    @property
    def topic(self) -> str:
        return self._topic

    @property
    def group(self) -> str:
        return self._group

    @property
    def duplicates_suppressed(self) -> int:
        """Replayed records dropped by the dedup filter so far."""
        return self._duplicates

    def rebind(
        self,
        broker: Any,
        auto_commit: bool | None = None,
        dedup: bool | None = None,
    ) -> None:
        """Reconnect to a different broker, keeping topic and group.

        Used by the distributed runtime after a fork (see
        :meth:`PubSubWriterSink.rebind`); ``auto_commit``/``dedup``
        override the stored settings when given.
        """
        self._broker = broker
        if auto_commit is not None:
            self._auto_commit = auto_commit
        if dedup is not None:
            self._dedup = dedup
        self._connect()

    def offsets(self) -> list[list]:
        """Replay positions as ``[topic, partition, next_offset]`` triples."""
        return [
            [topic, partition, self._consumer.position(topic, partition)]
            for topic, partition in self._consumer.assignment
        ]

    def seek(self, offsets: list[list]) -> None:
        """Rewind to positions previously captured by :meth:`offsets`."""
        for topic, partition, offset in offsets:
            self._consumer.seek(topic, int(partition), int(offset))

    def commit_offsets(self, offsets: list[list]) -> None:
        """Pin captured positions on the broker (per-partition commits)."""
        for topic, partition, offset in offsets:
            self._consumer.commit(topic, int(partition), int(offset))

    def __iter__(self) -> Iterator[StreamTuple]:
        pending = set(self._consumer.assignment)
        seen: set[tuple] = set()
        while pending:
            for message in self._consumer.poll(timeout=self._poll_timeout):
                if isinstance(message.value, str) and message.value == EOS_SENTINEL:
                    pending.discard((message.topic, message.partition))
                    continue
                if self._dedup and isinstance(message.value, StreamTuple):
                    key = _content_key(message.value)
                    if key in seen:
                        self._duplicates += 1
                        continue
                    seen.add(key)
                # Do NOT restamp ingest_time: latency spans the connector
                # hop too (data was available when the writer received it).
                yield message.value
